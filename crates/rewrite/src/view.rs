//! View registries.

use std::collections::BTreeMap;

use citesys_cq::{ConjunctiveQuery, Symbol};

use crate::error::RewriteError;

/// A set of named view definitions with unique head predicates.
///
/// Each view is a conjunctive query over the base schema; its head
/// predicate acts as the view's name and may be used as a body predicate in
/// rewritings. λ-parameters are carried along but — per the paper —
/// **ignored during rewriting**; the citation engine re-attaches them when
/// instantiating citations per binding.
#[derive(Clone, Debug, Default)]
pub struct ViewSet {
    views: Vec<ConjunctiveQuery>,
    by_name: BTreeMap<Symbol, usize>,
}

impl ViewSet {
    /// Builds a view set, rejecting duplicate names.
    pub fn new(views: Vec<ConjunctiveQuery>) -> Result<Self, RewriteError> {
        let mut set = ViewSet::default();
        for v in views {
            set.add(v)?;
        }
        Ok(set)
    }

    /// Adds one view.
    pub fn add(&mut self, v: ConjunctiveQuery) -> Result<(), RewriteError> {
        let name = v.name().clone();
        if self.by_name.contains_key(&name) {
            return Err(RewriteError::DuplicateView {
                name: name.to_string(),
            });
        }
        self.by_name.insert(name, self.views.len());
        self.views.push(v);
        Ok(())
    }

    /// Number of views.
    pub fn len(&self) -> usize {
        self.views.len()
    }

    /// True when no views are registered.
    pub fn is_empty(&self) -> bool {
        self.views.is_empty()
    }

    /// Looks up a view by name.
    pub fn get(&self, name: &str) -> Option<&ConjunctiveQuery> {
        self.by_name.get(name).map(|&i| &self.views[i])
    }

    /// Like [`get`](Self::get) but returns an error for unknown names.
    pub fn require(&self, name: &str) -> Result<&ConjunctiveQuery, RewriteError> {
        self.get(name).ok_or_else(|| RewriteError::UnknownView {
            name: name.to_string(),
        })
    }

    /// Iterates over the views in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &ConjunctiveQuery> {
        self.views.iter()
    }

    /// View at a positional index.
    pub fn at(&self, i: usize) -> &ConjunctiveQuery {
        &self.views[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use citesys_cq::parse_query;

    #[test]
    fn registration_and_lookup() {
        let vs = ViewSet::new(vec![
            parse_query("λ FID. V1(FID, N, D) :- Family(FID, N, D)").unwrap(),
            parse_query("V3(FID, T) :- FamilyIntro(FID, T)").unwrap(),
        ])
        .unwrap();
        assert_eq!(vs.len(), 2);
        assert!(vs.get("V1").is_some());
        assert!(vs.get("V3").is_some());
        assert!(vs.get("V9").is_none());
        assert!(vs.require("V9").is_err());
        assert_eq!(vs.at(0).name().as_str(), "V1");
    }

    #[test]
    fn duplicate_names_rejected() {
        let e = ViewSet::new(vec![
            parse_query("V(X) :- R(X)").unwrap(),
            parse_query("V(Y) :- S(Y)").unwrap(),
        ])
        .unwrap_err();
        assert!(matches!(e, RewriteError::DuplicateView { .. }));
    }
}

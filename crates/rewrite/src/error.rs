//! Error types for the rewriting layer.

use std::fmt;

/// Errors produced while registering views or rewriting queries.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RewriteError {
    /// Two views share a head predicate name.
    DuplicateView {
        /// The duplicated view name.
        name: String,
    },
    /// A rewriting referenced a view that is not registered.
    UnknownView {
        /// The missing view name.
        name: String,
    },
    /// The candidate search exceeded the configured budget.
    BudgetExceeded {
        /// Number of candidates generated before giving up.
        generated: usize,
        /// The configured cap.
        cap: usize,
    },
}

impl fmt::Display for RewriteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RewriteError::DuplicateView { name } => {
                write!(f, "duplicate view name: {name}")
            }
            RewriteError::UnknownView { name } => write!(f, "unknown view: {name}"),
            RewriteError::BudgetExceeded { generated, cap } => write!(
                f,
                "candidate budget exceeded: generated {generated}, cap {cap}"
            ),
        }
    }
}

impl std::error::Error for RewriteError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert_eq!(
            RewriteError::UnknownView { name: "V9".into() }.to_string(),
            "unknown view: V9"
        );
        assert!(RewriteError::BudgetExceeded {
            generated: 10,
            cap: 5
        }
        .to_string()
        .contains("cap 5"));
    }
}

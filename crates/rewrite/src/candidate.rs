//! Shared helpers for building candidate rewriting atoms.

use std::collections::BTreeSet;

use citesys_cq::{Atom, ConjunctiveQuery, Substitution, Symbol, Term};

/// One-directional matching of a (renamed-apart) view atom **onto** a query
/// subgoal: only view variables may be bound; query variables and constants
/// are frozen targets.
///
/// This is the correct matching discipline for bucket/MiniCon candidate
/// generation — full unification would happily equate two distinct query
/// variables, which silently *specializes* the query. A view constant
/// facing a query variable fails the match: such a view could only yield a
/// contained (not equivalent) rewriting.
pub fn match_onto(view_atom: &Atom, g: &Atom, subst: &mut Substitution) -> bool {
    if view_atom.predicate != g.predicate || view_atom.arity() != g.arity() {
        return false;
    }
    for (v, t) in view_atom.terms.iter().zip(&g.terms) {
        match v {
            Term::Const(c) => match t {
                Term::Const(d) if c == d => {}
                _ => return false,
            },
            Term::Var(var) => match subst.get(var) {
                Some(bound) => {
                    if bound != t {
                        return false;
                    }
                }
                None => subst.bind(var.clone(), t.clone()),
            },
        }
    }
    true
}

/// Builds the rewriting atom for a (renamed-apart) view instance under the
/// unification `subst` computed against query subgoals.
///
/// Each head term of the view is resolved through `subst`; the result is
/// * a constant — kept as-is,
/// * a query variable — kept (this is how join variables align across
///   view atoms),
/// * a still-unbound view variable — kept as a fresh existential variable
///   of the rewriting (its renamed-apart name is globally unique).
///
/// When a query variable was bound *to* a view variable (the unifier can
/// orient either way), the reverse map puts the query variable back.
pub fn rewriting_atom(
    fresh_view: &ConjunctiveQuery,
    subst: &Substitution,
    query_vars: &BTreeSet<Symbol>,
) -> Atom {
    // Reverse index: view var -> query var bound to it.
    let mut reverse: Vec<(Term, Symbol)> = Vec::new();
    for (v, t) in subst.iter() {
        if query_vars.contains(v) {
            if let Term::Var(_) = t {
                reverse.push((t.clone(), v.clone()));
            }
        }
    }
    let terms = fresh_view
        .head
        .terms
        .iter()
        .map(|h| {
            let resolved = subst.apply_term(h);
            match &resolved {
                Term::Const(_) => resolved,
                Term::Var(v) if query_vars.contains(v) => resolved,
                Term::Var(_) => reverse
                    .iter()
                    .find(|(t, _)| t == &resolved)
                    .map(|(_, q)| Term::Var(q.clone()))
                    .unwrap_or(resolved),
            }
        })
        .collect();
    Atom::new(fresh_view.head.predicate.clone(), terms)
}

/// Generates merge variants of a candidate: whenever two body atoms share a
/// predicate and can be unified by binding only *fresh* (non-query)
/// variables, the merged candidate — with the two atoms collapsed into one —
/// is emitted too.
///
/// This is the atom-merging part of the bucket algorithm's checking step:
/// one view instance may cover several query subgoals (e.g. the candidate
/// `P(A,F1), P(F2,C)` merges to `P(A,C)` when `F1`, `F2` are fresh). All
/// variants are still validated downstream by expansion + equivalence, so
/// over-generation is harmless.
pub fn merge_variants(
    cand: ConjunctiveQuery,
    q_vars: &BTreeSet<Symbol>,
    cap: usize,
) -> Vec<ConjunctiveQuery> {
    let mut seen: BTreeSet<String> = BTreeSet::new();
    let mut queue = vec![cand];
    let mut out = Vec::new();
    while let Some(c) = queue.pop() {
        if !seen.insert(c.canonical().to_string()) {
            continue;
        }
        for i in 0..c.body.len() {
            for j in (i + 1)..c.body.len() {
                if let Some(s) = merge_atoms(&c.body[i], &c.body[j], q_vars) {
                    let mut body: Vec<Atom> = c.body.iter().map(|a| a.apply(&s)).collect();
                    body.remove(j); // i and j are now identical; drop one
                    body.dedup();
                    queue.push(ConjunctiveQuery {
                        head: c.head.apply(&s),
                        body,
                        params: c.params.clone(),
                    });
                }
            }
        }
        out.push(c);
        if out.len() >= cap {
            break;
        }
    }
    out
}

/// Position-wise unification of two atoms where only fresh (non-query)
/// variables may be bound. Returns the merging substitution on success.
fn merge_atoms(a: &Atom, b: &Atom, q_vars: &BTreeSet<Symbol>) -> Option<Substitution> {
    if a.predicate != b.predicate || a.arity() != b.arity() {
        return None;
    }
    let mut s = Substitution::new();
    for (ta, tb) in a.terms.iter().zip(&b.terms) {
        let ra = s.apply_term(ta);
        let rb = s.apply_term(tb);
        if ra == rb {
            continue;
        }
        match (&ra, &rb) {
            (Term::Var(v), _) if !q_vars.contains(v) => {
                s.bind(v.clone(), rb.clone());
                s.resolve();
            }
            (_, Term::Var(v)) if !q_vars.contains(v) => {
                s.bind(v.clone(), ra.clone());
                s.resolve();
            }
            _ => return None,
        }
    }
    Some(s)
}

/// Sorts, dedupes and alpha-compares candidate rewritings so the final
/// list is deterministic and free of syntactic duplicates.
pub fn dedupe_rewritings(mut rewritings: Vec<ConjunctiveQuery>) -> Vec<ConjunctiveQuery> {
    let mut seen: BTreeSet<String> = BTreeSet::new();
    rewritings.retain(|r| seen.insert(r.canonical().to_string()));
    rewritings.sort_by_key(|r| (r.body.len(), r.canonical().to_string()));
    rewritings
}

#[cfg(test)]
mod tests {
    use super::*;
    use citesys_cq::{mgu, parse_query};

    #[test]
    fn atom_uses_query_vars_for_joins() {
        let q = parse_query("Q(N) :- Family(F, N, D), FamilyIntro(F, T)").unwrap();
        let view = parse_query("V1(FID, FName, Desc) :- Family(FID, FName, Desc)").unwrap();
        let fresh = view.rename_apart(3);
        let theta = mgu(&fresh.body[0], &q.body[0]).unwrap();
        let qvars: BTreeSet<Symbol> = q.vars().into_iter().collect();
        let atom = rewriting_atom(&fresh, &theta, &qvars);
        assert_eq!(atom.to_string(), "V1(F, N, D)");
    }

    #[test]
    fn unbound_view_head_vars_stay_fresh() {
        // View projects an extra column the query does not constrain.
        let q = parse_query("Q(X) :- R(X)").unwrap();
        let view = parse_query("V(A, B) :- R(A), S(B)").unwrap();
        let fresh = view.rename_apart(5);
        let theta = mgu(&fresh.body[0], &q.body[0]).unwrap();
        let qvars: BTreeSet<Symbol> = q.vars().into_iter().collect();
        let atom = rewriting_atom(&fresh, &theta, &qvars);
        assert_eq!(atom.terms[0], Term::var("X"));
        // Second head var is the renamed fresh B.
        assert_eq!(atom.terms[1], Term::var("B_5"));
    }

    #[test]
    fn constants_propagate() {
        let q = parse_query("Q(N) :- Family(11, N, D)").unwrap();
        let view = parse_query("V1(FID, FName, Desc) :- Family(FID, FName, Desc)").unwrap();
        let fresh = view.rename_apart(0);
        let theta = mgu(&fresh.body[0], &q.body[0]).unwrap();
        let qvars: BTreeSet<Symbol> = q.vars().into_iter().collect();
        let atom = rewriting_atom(&fresh, &theta, &qvars);
        assert_eq!(atom.terms[0], Term::constant(11));
    }

    #[test]
    fn dedupe_removes_alpha_duplicates() {
        let r1 = parse_query("Q(X) :- V(X, Y)").unwrap();
        let r2 = parse_query("Q(X) :- V(X, Z)").unwrap();
        let r3 = parse_query("Q(X) :- W(X)").unwrap();
        let out = dedupe_rewritings(vec![r1, r2, r3]);
        assert_eq!(out.len(), 2);
        let preds: BTreeSet<&str> = out.iter().map(|r| r.body[0].predicate.as_str()).collect();
        assert_eq!(preds, BTreeSet::from(["V", "W"]));
    }

    #[test]
    fn match_onto_freezes_query_vars() {
        use citesys_cq::Substitution;
        // View atom E(Xc, Xc) onto E(A, B): must fail (would equate A, B).
        let va = Atom::new("E", vec![Term::var("Xc"), Term::var("Xc")]);
        let g = Atom::new("E", vec![Term::var("A"), Term::var("B")]);
        let mut s = Substitution::new();
        assert!(!match_onto(&va, &g, &mut s));
        // Onto E(A, A): fine.
        let g2 = Atom::new("E", vec![Term::var("A"), Term::var("A")]);
        let mut s = Substitution::new();
        assert!(match_onto(&va, &g2, &mut s));
        // View constant facing a query variable: fail.
        let vc = Atom::new("E", vec![Term::constant(5), Term::var("Yc")]);
        let mut s = Substitution::new();
        assert!(!match_onto(&vc, &g, &mut s));
        // View constant facing the same constant: fine.
        let g3 = Atom::new("E", vec![Term::constant(5), Term::var("B")]);
        let mut s = Substitution::new();
        assert!(match_onto(&vc, &g3, &mut s));
    }
}

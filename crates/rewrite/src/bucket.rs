//! The bucket algorithm (Levy et al.; survey in Halevy 2001, the paper's
//! reference [9]) adapted to *equivalent* rewritings.
//!
//! Phase 1 builds, per query subgoal, a *bucket* of view atoms that could
//! cover it. Phase 2 enumerates the cross product of buckets; every
//! combination is later validated by expansion + equivalence in
//! [`crate::rewrite`]. The cross product is the measured baseline of
//! experiment E2 — MiniCon exists precisely because this blows up.

use std::collections::BTreeSet;

use citesys_cq::{Atom, ConjunctiveQuery, Substitution, Term};

use crate::candidate::{match_onto, rewriting_atom};
use crate::error::RewriteError;
use crate::stats::RewriteStats;
use crate::view::ViewSet;

/// Generates candidate rewritings via buckets.
///
/// `view_indices` selects which views participate (after pruning);
/// `max_candidates` bounds the cross product.
pub(crate) fn generate(
    q: &ConjunctiveQuery,
    views: &ViewSet,
    view_indices: &[usize],
    max_candidates: usize,
    stats: &mut RewriteStats,
) -> Result<Vec<ConjunctiveQuery>, RewriteError> {
    let q_vars: BTreeSet<_> = q.vars().into_iter().collect();
    let distinguished = q.head_var_set();

    // Phase 1: one bucket per subgoal.
    let mut counter = 0usize;
    let mut buckets: Vec<Vec<Atom>> = Vec::with_capacity(q.body.len());
    for g in &q.body {
        let mut bucket = Vec::new();
        for &vi in view_indices {
            let view = views.at(vi);
            for (ai, a) in view.body.iter().enumerate() {
                if a.predicate != g.predicate || a.arity() != g.arity() {
                    continue;
                }
                let fresh = view.rename_apart(counter);
                counter += 1;
                let mut theta = Substitution::new();
                if !match_onto(&fresh.body[ai], g, &mut theta) {
                    continue;
                }
                let ratom = rewriting_atom(&fresh, &theta, &q_vars);
                // Bucket condition: every distinguished variable of Q in
                // this subgoal must be retrievable from the view head.
                let ok = g
                    .vars()
                    .filter(|v| distinguished.contains(*v))
                    .all(|v| ratom.terms.contains(&Term::Var(v.clone())));
                if ok {
                    bucket.push(ratom);
                }
            }
        }
        stats.bucket_entries += bucket.len();
        if bucket.is_empty() {
            // Some subgoal is uncoverable: no equivalent rewriting exists.
            return Ok(Vec::new());
        }
        buckets.push(bucket);
    }

    // Phase 2: cross product.
    let mut out = Vec::new();
    let mut choice = vec![0usize; buckets.len()];
    'outer: loop {
        // Build the candidate for the current choice vector.
        let mut body: Vec<Atom> = Vec::new();
        for (b, &c) in buckets.iter().zip(&choice) {
            let atom = b[c].clone();
            if !body.contains(&atom) {
                body.push(atom);
            }
        }
        stats.candidates_generated += 1;
        if stats.candidates_generated > max_candidates {
            return Err(RewriteError::BudgetExceeded {
                generated: stats.candidates_generated,
                cap: max_candidates,
            });
        }
        out.push(ConjunctiveQuery {
            head: q.head.clone(),
            body,
            params: Vec::new(),
        });

        // Advance the mixed-radix counter.
        for i in (0..choice.len()).rev() {
            choice[i] += 1;
            if choice[i] < buckets[i].len() {
                continue 'outer;
            }
            choice[i] = 0;
            if i == 0 {
                break 'outer;
            }
        }
        if choice.is_empty() {
            break; // zero subgoals: single (empty) candidate already pushed
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use citesys_cq::parse_query;

    fn run(q: &str, views: Vec<&str>) -> Vec<ConjunctiveQuery> {
        let q = parse_query(q).unwrap();
        let vs =
            ViewSet::new(views.into_iter().map(|v| parse_query(v).unwrap()).collect()).unwrap();
        let idx: Vec<usize> = (0..vs.len()).collect();
        let mut stats = RewriteStats::default();
        generate(&q, &vs, &idx, 10_000, &mut stats).unwrap()
    }

    #[test]
    fn paper_example_two_candidates() {
        let cands = run(
            "Q(FName) :- Family(FID, FName, Desc), FamilyIntro(FID, Text)",
            vec![
                "λ FID. V1(FID, FName, Desc) :- Family(FID, FName, Desc)",
                "V2(FID, FName, Desc) :- Family(FID, FName, Desc)",
                "V3(FID, Text) :- FamilyIntro(FID, Text)",
            ],
        );
        // Buckets: Family → {V1, V2}, FamilyIntro → {V3} ⇒ 2 candidates.
        assert_eq!(cands.len(), 2);
        for c in &cands {
            assert_eq!(c.body.len(), 2);
            assert_eq!(c.body[1].predicate.as_str(), "V3");
        }
    }

    #[test]
    fn empty_bucket_short_circuits() {
        let cands = run(
            "Q(N) :- Family(F, N, D), Committee(F, P)",
            vec!["V1(FID, FName, Desc) :- Family(FID, FName, Desc)"],
        );
        assert!(cands.is_empty(), "Committee subgoal has no covering view");
    }

    #[test]
    fn distinguished_var_requirement_filters() {
        // View hides the name (existential in view) — cannot provide N.
        let cands = run(
            "Q(N) :- Family(F, N, D)",
            vec!["V(FID) :- Family(FID, FName, Desc)"],
        );
        assert!(cands.is_empty());
    }

    #[test]
    fn cross_product_counts() {
        let cands = run(
            "Q(X, Z) :- E(X, Y), E(Y, Z)",
            vec!["VA(A, B) :- E(A, B)", "VB(A, B) :- E(A, B)"],
        );
        // 2 choices per subgoal ⇒ 4 candidates.
        assert_eq!(cands.len(), 4);
    }

    #[test]
    fn budget_enforced() {
        let q = parse_query("Q(X, Z) :- E(X, Y), E(Y, Z)").unwrap();
        let vs = ViewSet::new(vec![
            parse_query("VA(A, B) :- E(A, B)").unwrap(),
            parse_query("VB(A, B) :- E(A, B)").unwrap(),
        ])
        .unwrap();
        let mut stats = RewriteStats::default();
        let e = generate(&q, &vs, &[0, 1], 2, &mut stats).unwrap_err();
        assert!(matches!(e, RewriteError::BudgetExceeded { .. }));
    }

    #[test]
    fn repeated_atom_deduped_within_candidate() {
        // One view atom covers both subgoals identically.
        let cands = run("Q(X) :- R(X, Y), R(X, Y)", vec!["V(A, B) :- R(A, B)"]);
        // Parsed body keeps both atoms (syntactic duplicates are legal);
        // the candidate collapses the identical view atoms.
        assert!(cands.iter().all(|c| c.body.len() <= 2));
    }
}

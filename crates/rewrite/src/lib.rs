//! # citesys-rewrite — answering queries using views
//!
//! The paper's §2: *"Our approach to constructing the citation to a general
//! query is to rewrite it to a set of equivalent queries using the views"*.
//! This crate finds the **set of minimal equivalent rewritings**
//! `{Q1, …, Qn}` of a conjunctive query over a set of citation views:
//!
//! * candidate generation via the **bucket algorithm** (baseline) or
//!   **MiniCon** (default),
//! * validation via **expansion** + Chandra–Merlin **equivalence**,
//! * per-rewriting **minimization** and global deduplication,
//! * **schema-level pruning** of irrelevant views (§3 "reasoning at the
//!   schema level"), measured against no-pruning in experiment E5.
//!
//! ## Quick example (the paper's §2 worked example)
//!
//! ```
//! use citesys_cq::parse_query;
//! use citesys_rewrite::{rewrite, RewriteOptions, ViewSet};
//!
//! let views = ViewSet::new(vec![
//!     parse_query("λ FID. V1(FID, FName, Desc) :- Family(FID, FName, Desc)").unwrap(),
//!     parse_query("V2(FID, FName, Desc) :- Family(FID, FName, Desc)").unwrap(),
//!     parse_query("V3(FID, Text) :- FamilyIntro(FID, Text)").unwrap(),
//! ]).unwrap();
//! let q = parse_query(
//!     "Q(FName) :- Family(FID, FName, Desc), FamilyIntro(FID, Text)").unwrap();
//!
//! let out = rewrite(&q, &views, &RewriteOptions::default()).unwrap();
//! // The paper's Q1 (via V1,V3) and Q2 (via V2,V3):
//! assert_eq!(out.rewritings.len(), 2);
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

mod bucket;
mod candidate;
mod minicon;

pub mod error;
pub mod expand;
pub mod plan;
pub mod prune;
pub mod stats;
pub mod view;

pub use error::RewriteError;
pub use expand::{expand, view_binding};
pub use plan::{trim_cr, PlanParseError, RewritePlan};
pub use prune::{classify_view, relevant_views, ViewRelevance};
pub use stats::RewriteStats;
pub use view::ViewSet;

use citesys_cq::{are_equivalent, is_contained_in, ConjunctiveQuery};

use candidate::dedupe_rewritings;

/// Candidate-generation algorithm.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Algorithm {
    /// Per-subgoal buckets + cross product (the measured baseline).
    Bucket,
    /// MiniCon descriptions + exact cover (default).
    #[default]
    MiniCon,
}

/// What counts as a valid rewriting.
///
/// The paper's Definition 2.1 speaks of a "(partial) rewriting": the main
/// development uses **equivalent** rewritings, but a *contained* rewriting
/// still yields citations for the subset of the answer it produces — the
/// engine's partial-citation fallback uses exactly that.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum RewriteGoal {
    /// `expand(Q') ≡ Q` — every answer tuple is covered (default).
    #[default]
    Equivalent,
    /// `expand(Q') ⊆ Q` — sound but possibly incomplete; only *maximal*
    /// contained rewritings are kept (none strictly contained in another).
    Contained,
}

/// Options controlling the rewriting search.
#[derive(Clone, Copy, Debug)]
pub struct RewriteOptions {
    /// Which candidate generator to run.
    pub algorithm: Algorithm,
    /// Equivalent or (maximally) contained rewritings.
    pub goal: RewriteGoal,
    /// Apply schema-level view pruning before generation.
    pub prune: bool,
    /// Minimize each rewriting (drop redundant view atoms).
    pub minimize: bool,
    /// Upper bound on generated candidates (guards the cross product).
    pub max_candidates: usize,
}

impl Default for RewriteOptions {
    fn default() -> Self {
        RewriteOptions {
            algorithm: Algorithm::MiniCon,
            goal: RewriteGoal::Equivalent,
            prune: true,
            minimize: true,
            max_candidates: 1_000_000,
        }
    }
}

/// One validated rewriting: the query over views plus its expansion over
/// the base schema (always equivalent to the original query).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Rewriting {
    /// The rewriting itself — body atoms are view heads.
    pub query: ConjunctiveQuery,
    /// The unfolded form over base relations.
    pub expansion: ConjunctiveQuery,
}

/// Result of [`rewrite`]: the rewritings and the search statistics.
#[derive(Clone, Debug)]
pub struct RewriteOutcome {
    /// Minimal equivalent rewritings, deduplicated, deterministic order.
    pub rewritings: Vec<Rewriting>,
    /// Search-effort counters.
    pub stats: RewriteStats,
}

/// Computes the set of minimal equivalent rewritings of `q` using `views`.
pub fn rewrite(
    q: &ConjunctiveQuery,
    views: &ViewSet,
    opts: &RewriteOptions,
) -> Result<RewriteOutcome, RewriteError> {
    let mut stats = RewriteStats {
        views_total: views.len(),
        ..Default::default()
    };

    let view_indices: Vec<usize> = if opts.prune {
        let (keep, pruned) = match opts.goal {
            RewriteGoal::Equivalent => relevant_views(q, views),
            RewriteGoal::Contained => prune::relevant_views_contained(q, views),
        };
        stats.views_pruned = pruned;
        keep
    } else {
        (0..views.len()).collect()
    };

    let candidates = match opts.algorithm {
        Algorithm::Bucket => {
            bucket::generate(q, views, &view_indices, opts.max_candidates, &mut stats)?
        }
        Algorithm::MiniCon => {
            minicon::generate(q, views, &view_indices, opts.max_candidates, &mut stats)?
        }
    };

    let q_vars: std::collections::BTreeSet<_> = q.vars().into_iter().collect();
    let mut valid: Vec<ConjunctiveQuery> = Vec::new();
    for cand in candidates {
        for cand in candidate::merge_variants(cand, &q_vars, 64) {
            for cand in repair_head_vars(cand, q) {
                let Some(exp) = expand(&cand, views)? else {
                    continue;
                };
                stats.candidates_expanded += 1;
                stats.equivalence_checks += 1;
                let keep = match opts.goal {
                    RewriteGoal::Equivalent => are_equivalent(&exp, q),
                    RewriteGoal::Contained => is_contained_in(&exp, q),
                };
                if keep {
                    valid.push(cand);
                }
            }
        }
    }

    if opts.minimize && opts.goal == RewriteGoal::Equivalent {
        valid = valid
            .into_iter()
            .map(|r| minimize_rewriting(&r, q, views, &mut stats))
            .collect::<Result<Vec<_>, _>>()?;
    }

    let deduped = dedupe_rewritings(valid);
    let mut rewritings = Vec::with_capacity(deduped.len());
    for query in deduped {
        let expansion = expand(&query, views)?.expect("validated rewriting expands");
        rewritings.push(Rewriting { query, expansion });
    }
    if opts.goal == RewriteGoal::Contained {
        rewritings = retain_maximal(rewritings, &mut stats);
    }
    stats.rewritings_found = rewritings.len();
    Ok(RewriteOutcome { rewritings, stats })
}

/// Keeps only maximally-contained rewritings: drops any rewriting whose
/// expansion is *strictly* contained in another's (it contributes a subset
/// of the answers while citing at least as restrictively).
fn retain_maximal(rewritings: Vec<Rewriting>, stats: &mut RewriteStats) -> Vec<Rewriting> {
    let mut keep = vec![true; rewritings.len()];
    for i in 0..rewritings.len() {
        if !keep[i] {
            continue;
        }
        for j in 0..rewritings.len() {
            if i == j || !keep[j] {
                continue;
            }
            stats.equivalence_checks += 2;
            let i_in_j = is_contained_in(&rewritings[i].expansion, &rewritings[j].expansion);
            let j_in_i = is_contained_in(&rewritings[j].expansion, &rewritings[i].expansion);
            if i_in_j && !j_in_i {
                keep[i] = false;
                break;
            }
        }
    }
    rewritings
        .into_iter()
        .zip(keep)
        .filter_map(|(r, k)| k.then_some(r))
        .collect()
}

/// The classical bucket algorithm's "checking step with unification": a
/// candidate whose body is missing some head variables of `q` may still
/// yield an equivalent rewriting after equating those head variables with
/// fresh (non-query) variables of the candidate. Emits every such repair
/// (bounded; all results are still validated by expansion + equivalence).
///
/// Example: for `Q(A,C) :- E(A,B), E(B,C)` and view `P(X,Z) :- E(X,Y),
/// E(Y,Z)`, the bucket candidate `P(A,F1), P(B,F2)` lacks `C`; binding
/// `F1 ↦ C` repairs it to the valid rewriting (later minimized to
/// `P(A,C)`).
fn repair_head_vars(cand: ConjunctiveQuery, q: &ConjunctiveQuery) -> Vec<ConjunctiveQuery> {
    use citesys_cq::{Substitution, Term};

    let body_vars = cand.body_var_set();
    let missing: Vec<_> = q
        .head_var_set()
        .into_iter()
        .filter(|v| !body_vars.contains(v))
        .collect();
    if missing.is_empty() {
        return vec![cand];
    }
    // Fresh variables of the candidate = body vars that are not query vars.
    let q_vars: std::collections::BTreeSet<_> = q.vars().into_iter().collect();
    let fresh: Vec<_> = body_vars
        .into_iter()
        .filter(|v| !q_vars.contains(v))
        .collect();
    if fresh.is_empty() {
        return Vec::new();
    }
    // Enumerate assignments missing-var → fresh-var (bounded).
    const MAX_REPAIRS: usize = 256;
    let mut out = Vec::new();
    let mut choice = vec![0usize; missing.len()];
    loop {
        let mut s = Substitution::new();
        for (m, &c) in missing.iter().zip(&choice) {
            // Orient the binding fresh → head var so the head var becomes
            // the surviving name in the rewriting body.
            s.bind(fresh[c].clone(), Term::Var(m.clone()));
        }
        out.push(cand.apply(&s));
        if out.len() >= MAX_REPAIRS {
            break;
        }
        let mut i = 0;
        loop {
            if i == choice.len() {
                return out;
            }
            choice[i] += 1;
            if choice[i] < fresh.len() {
                break;
            }
            choice[i] = 0;
            i += 1;
        }
    }
    out
}

/// Greedily removes view atoms whose removal keeps the expansion
/// equivalent to `q` — the paper asks for *minimal* rewritings.
fn minimize_rewriting(
    r: &ConjunctiveQuery,
    q: &ConjunctiveQuery,
    views: &ViewSet,
    stats: &mut RewriteStats,
) -> Result<ConjunctiveQuery, RewriteError> {
    let mut current = r.clone();
    loop {
        let mut reduced = None;
        for i in 0..current.body.len() {
            let mut body = current.body.clone();
            body.remove(i);
            let cand = ConjunctiveQuery {
                head: current.head.clone(),
                body,
                params: Vec::new(),
            };
            if let Some(exp) = expand(&cand, views)? {
                stats.equivalence_checks += 1;
                if are_equivalent(&exp, q) {
                    reduced = Some(cand);
                    break;
                }
            }
        }
        match reduced {
            Some(c) => current = c,
            None => return Ok(current),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use citesys_cq::parse_query;

    fn paper_views() -> ViewSet {
        ViewSet::new(vec![
            parse_query("λ FID. V1(FID, FName, Desc) :- Family(FID, FName, Desc)").unwrap(),
            parse_query("V2(FID, FName, Desc) :- Family(FID, FName, Desc)").unwrap(),
            parse_query("V3(FID, Text) :- FamilyIntro(FID, Text)").unwrap(),
        ])
        .unwrap()
    }

    fn paper_query() -> ConjunctiveQuery {
        parse_query("Q(FName) :- Family(FID, FName, Desc), FamilyIntro(FID, Text)").unwrap()
    }

    #[test]
    fn paper_example_both_algorithms() {
        for alg in [Algorithm::Bucket, Algorithm::MiniCon] {
            let out = rewrite(
                &paper_query(),
                &paper_views(),
                &RewriteOptions {
                    algorithm: alg,
                    ..Default::default()
                },
            )
            .unwrap();
            assert_eq!(out.rewritings.len(), 2, "{alg:?}");
            let names: Vec<String> = out
                .rewritings
                .iter()
                .map(|r| {
                    let mut preds: Vec<_> = r
                        .query
                        .body
                        .iter()
                        .map(|a| a.predicate.to_string())
                        .collect();
                    preds.sort();
                    preds.join("+")
                })
                .collect();
            assert!(names.contains(&"V1+V3".to_string()), "{alg:?}: {names:?}");
            assert!(names.contains(&"V2+V3".to_string()), "{alg:?}: {names:?}");
            // Every rewriting's expansion is equivalent to Q.
            for r in &out.rewritings {
                assert!(are_equivalent(&r.expansion, &paper_query()));
            }
        }
    }

    #[test]
    fn no_views_no_rewritings() {
        let out = rewrite(
            &paper_query(),
            &ViewSet::default(),
            &RewriteOptions::default(),
        )
        .unwrap();
        assert!(out.rewritings.is_empty());
    }

    #[test]
    fn identity_view_gives_identity_rewriting() {
        let views = ViewSet::new(vec![
            parse_query("VF(F, N, D) :- Family(F, N, D)").unwrap(),
            parse_query("VI(F, T) :- FamilyIntro(F, T)").unwrap(),
        ])
        .unwrap();
        let out = rewrite(&paper_query(), &views, &RewriteOptions::default()).unwrap();
        assert_eq!(out.rewritings.len(), 1);
        assert_eq!(out.rewritings[0].query.body.len(), 2);
    }

    #[test]
    fn pruning_reduces_work_same_answers() {
        let mut views_vec = vec![
            parse_query("λ FID. V1(FID, FName, Desc) :- Family(FID, FName, Desc)").unwrap(),
            parse_query("V3(FID, Text) :- FamilyIntro(FID, Text)").unwrap(),
        ];
        // Noise views over unrelated predicates.
        for i in 0..10 {
            views_vec.push(parse_query(&format!("N{i}(X, Y) :- Unrelated{i}(X, Y)")).unwrap());
        }
        let views = ViewSet::new(views_vec).unwrap();
        let pruned = rewrite(&paper_query(), &views, &RewriteOptions::default()).unwrap();
        let unpruned = rewrite(
            &paper_query(),
            &views,
            &RewriteOptions {
                prune: false,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(pruned.rewritings.len(), unpruned.rewritings.len());
        assert_eq!(pruned.stats.views_pruned, 10);
        assert_eq!(unpruned.stats.views_pruned, 0);
    }

    #[test]
    fn minimization_drops_redundant_atoms() {
        // Bucket produces V(X,Y) twice for the two near-identical subgoals;
        // minimization and dedupe collapse them.
        let views = ViewSet::new(vec![parse_query("V(A, B) :- R(A, B)").unwrap()]).unwrap();
        let q = parse_query("Q(X) :- R(X, Y), R(X, Z)").unwrap();
        let out = rewrite(&q, &views, &RewriteOptions::default()).unwrap();
        assert_eq!(out.rewritings.len(), 1);
        assert_eq!(out.rewritings[0].query.body.len(), 1);
    }

    #[test]
    fn view_with_extra_join_not_equivalent() {
        // View is strictly more restrictive than the query: usable only for
        // contained, not equivalent, rewritings — must be rejected.
        let views = ViewSet::new(vec![parse_query(
            "V(F, N) :- Family(F, N, D), FamilyIntro(F, T)",
        )
        .unwrap()])
        .unwrap();
        let q = parse_query("Q(N) :- Family(F, N, D)").unwrap();
        let out = rewrite(&q, &views, &RewriteOptions::default()).unwrap();
        assert!(out.rewritings.is_empty());
    }

    #[test]
    fn chain_query_with_pair_view() {
        let views = ViewSet::new(vec![
            parse_query("P(X, Z) :- E(X, Y), E(Y, Z)").unwrap(),
            parse_query("S(X, Y) :- E(X, Y)").unwrap(),
        ])
        .unwrap();
        let q = parse_query("Q(A, D) :- E(A, B), E(B, C), E(C, D)").unwrap();
        let out = rewrite(&q, &views, &RewriteOptions::default()).unwrap();
        // P∘S, S∘P, S∘S∘S are all equivalent rewritings.
        assert_eq!(out.rewritings.len(), 3);
        for r in &out.rewritings {
            assert!(are_equivalent(&r.expansion, &q));
        }
    }

    #[test]
    fn bucket_and_minicon_agree() {
        let views = ViewSet::new(vec![
            parse_query("P(X, Z) :- E(X, Y), E(Y, Z)").unwrap(),
            parse_query("S(X, Y) :- E(X, Y)").unwrap(),
        ])
        .unwrap();
        let q = parse_query("Q(A, C) :- E(A, B), E(B, C)").unwrap();
        let b = rewrite(
            &q,
            &views,
            &RewriteOptions {
                algorithm: Algorithm::Bucket,
                ..Default::default()
            },
        )
        .unwrap();
        let m = rewrite(
            &q,
            &views,
            &RewriteOptions {
                algorithm: Algorithm::MiniCon,
                ..Default::default()
            },
        )
        .unwrap();
        let key = |rs: &[Rewriting]| -> Vec<String> {
            rs.iter().map(|r| r.query.canonical().to_string()).collect()
        };
        assert_eq!(key(&b.rewritings), key(&m.rewritings));
    }

    #[test]
    fn constant_query_rewrites_trivially() {
        let q = parse_query("C('x') :- true").unwrap();
        let out = rewrite(&q, &paper_views(), &RewriteOptions::default()).unwrap();
        assert_eq!(out.rewritings.len(), 1);
        assert!(out.rewritings[0].query.body.is_empty());
    }

    #[test]
    fn contained_goal_finds_partial_rewritings() {
        // The view is strictly narrower than the query (extra join), so no
        // equivalent rewriting exists — but a contained one does.
        let views = ViewSet::new(vec![parse_query(
            "V(F, N) :- Family(F, N, D), FamilyIntro(F, T)",
        )
        .unwrap()])
        .unwrap();
        let q = parse_query("Q(N) :- Family(F, N, D)").unwrap();
        let eq = rewrite(&q, &views, &RewriteOptions::default()).unwrap();
        assert!(eq.rewritings.is_empty());
        let contained = rewrite(
            &q,
            &views,
            &RewriteOptions {
                goal: RewriteGoal::Contained,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(contained.rewritings.len(), 1);
        let r = &contained.rewritings[0];
        assert!(citesys_cq::is_contained_in(&r.expansion, &q));
        assert!(!are_equivalent(&r.expansion, &q));
    }

    #[test]
    fn contained_goal_keeps_only_maximal() {
        // VWide produces strictly more of Q's answers than VNarrow; only
        // the maximal one survives.
        let views = ViewSet::new(vec![
            parse_query("VWide(N) :- Family(F, N, D), FamilyIntro(F, T)").unwrap(),
            parse_query("VNarrow(N) :- Family(F, N, D), FamilyIntro(F, T), Committee(F, P)")
                .unwrap(),
        ])
        .unwrap();
        let q = parse_query("Q(N) :- Family(F, N, D)").unwrap();
        let contained = rewrite(
            &q,
            &views,
            &RewriteOptions {
                goal: RewriteGoal::Contained,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(contained.rewritings.len(), 1);
        assert_eq!(
            contained.rewritings[0].query.body[0].predicate.as_str(),
            "VWide"
        );
    }

    #[test]
    fn equivalent_rewritings_also_satisfy_contained_goal() {
        let out = rewrite(
            &paper_query(),
            &paper_views(),
            &RewriteOptions {
                goal: RewriteGoal::Contained,
                ..Default::default()
            },
        )
        .unwrap();
        // Both equivalent rewritings are mutually contained — maximality
        // keeps them both.
        assert_eq!(out.rewritings.len(), 2);
    }

    #[test]
    fn stats_populated() {
        let out = rewrite(&paper_query(), &paper_views(), &RewriteOptions::default()).unwrap();
        assert_eq!(out.stats.views_total, 3);
        assert!(out.stats.equivalence_checks >= 2);
        assert_eq!(out.stats.rewritings_found, 2);
        assert!(!out.stats.to_string().is_empty());
    }
}

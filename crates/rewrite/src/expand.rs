//! View unfolding: expanding a rewriting back to the base schema.
//!
//! A candidate rewriting `Q'(x̄) :- V1(…), …, Vn(…)` is validated by
//! *expansion*: each view atom is replaced by the view's body, with the
//! view's head unified against the atom's arguments and the view's
//! existential variables renamed fresh. The rewriting is **equivalent** to
//! `Q` iff `expand(Q') ≡ Q` (checked with containment mappings).

use citesys_cq::{mgu, unify_atoms, Atom, ConjunctiveQuery, Substitution};

use crate::error::RewriteError;
use crate::view::ViewSet;

/// Suffix base for fresh renaming during expansion; large enough that
/// rewriting variables (which use small MCD/bucket indices) never collide.
const EXPANSION_SUFFIX_BASE: usize = 10_000;

/// Expands a rewriting (a CQ whose body atoms are view heads) into a CQ
/// over the base schema.
///
/// Returns `None` when some view atom cannot be unified with its view's
/// head (e.g. the atom pins a constant where the view head has a
/// conflicting constant) — such candidates are simply invalid.
pub fn expand(
    rewriting: &ConjunctiveQuery,
    views: &ViewSet,
) -> Result<Option<ConjunctiveQuery>, RewriteError> {
    let mut body: Vec<Atom> = Vec::new();
    for (i, atom) in rewriting.body.iter().enumerate() {
        let view = views.require(atom.predicate.as_str())?;
        // Fresh copy of the view so existential variables never collide
        // across instances or with the rewriting's own variables.
        let fresh = view.rename_apart(EXPANSION_SUFFIX_BASE + i);
        let Some(theta) = mgu(&fresh.head, atom) else {
            return Ok(None);
        };
        for b in &fresh.body {
            body.push(b.apply(&theta));
        }
    }
    // The head keeps the rewriting's head; no parameters (ignored during
    // rewriting, per the paper).
    let candidate = ConjunctiveQuery {
        head: rewriting.head.clone(),
        body,
        params: Vec::new(),
    };
    // An expansion can be unsafe when a head variable never reached the
    // base atoms (bad candidate) — reject rather than error.
    if candidate.validate().is_err() {
        return Ok(None);
    }
    Ok(Some(candidate))
}

/// Unifies `atom` (a view atom in a rewriting) against `view`'s head,
/// returning the substitution over the *renamed* view copy used.
/// Exposed for the citation engine, which needs the correspondence between
/// view λ-parameters and rewriting variables.
pub fn view_binding(
    atom: &Atom,
    view: &ConjunctiveQuery,
    instance: usize,
) -> Option<(ConjunctiveQuery, Substitution)> {
    let fresh = view.rename_apart(EXPANSION_SUFFIX_BASE + instance);
    let mut s = Substitution::new();
    if !unify_atoms(&fresh.head, atom, &mut s) {
        return None;
    }
    s.resolve();
    Some((fresh, s))
}

#[cfg(test)]
mod tests {
    use super::*;
    use citesys_cq::{are_equivalent, parse_query};

    fn paper_views() -> ViewSet {
        ViewSet::new(vec![
            parse_query("λ FID. V1(FID, FName, Desc) :- Family(FID, FName, Desc)").unwrap(),
            parse_query("V2(FID, FName, Desc) :- Family(FID, FName, Desc)").unwrap(),
            parse_query("V3(FID, Text) :- FamilyIntro(FID, Text)").unwrap(),
        ])
        .unwrap()
    }

    #[test]
    fn paper_rewriting_q1_expands_to_q() {
        // Q1(FName) :- V1(FID,FName,Desc), V3(FID,Text)
        let views = paper_views();
        let q =
            parse_query("Q(FName) :- Family(FID, FName, Desc), FamilyIntro(FID, Text)").unwrap();
        let rw = parse_query("Q(FName) :- V1(FID, FName, Desc), V3(FID, Text)").unwrap();
        let exp = expand(&rw, &views).unwrap().unwrap();
        assert!(are_equivalent(&exp, &q));
    }

    #[test]
    fn paper_rewriting_q2_expands_to_q() {
        let views = paper_views();
        let q =
            parse_query("Q(FName) :- Family(FID, FName, Desc), FamilyIntro(FID, Text)").unwrap();
        let rw = parse_query("Q(FName) :- V2(FID, FName, Desc), V3(FID, Text)").unwrap();
        let exp = expand(&rw, &views).unwrap().unwrap();
        assert!(are_equivalent(&exp, &q));
    }

    #[test]
    fn existential_view_vars_renamed_fresh() {
        // V(X) :- R(X, Y): expanding V(A), V(B) must give distinct Ys.
        let views = ViewSet::new(vec![parse_query("V(X) :- R(X, Y)").unwrap()]).unwrap();
        let rw = parse_query("Q(A, B) :- V(A), V(B)").unwrap();
        let exp = expand(&rw, &views).unwrap().unwrap();
        assert_eq!(exp.body.len(), 2);
        let y1 = exp.body[0].terms[1].clone();
        let y2 = exp.body[1].terms[1].clone();
        assert_ne!(y1, y2, "existential variables must not be shared");
    }

    #[test]
    fn constant_conflict_invalidates() {
        // View head pins 1; using the view with constant 2 cannot unify.
        let views = ViewSet::new(vec![parse_query("V(1, Y) :- R(1, Y)").unwrap()]).unwrap();
        let rw = parse_query("Q(Y) :- V(2, Y)").unwrap();
        assert_eq!(expand(&rw, &views).unwrap(), None);
    }

    #[test]
    fn constant_in_rewriting_propagates() {
        let views = ViewSet::new(vec![parse_query("V(X, Y) :- R(X, Y)").unwrap()]).unwrap();
        let rw = parse_query("Q(Y) :- V(7, Y)").unwrap();
        let exp = expand(&rw, &views).unwrap().unwrap();
        let q = parse_query("Q(Y) :- R(7, Y)").unwrap();
        assert!(are_equivalent(&exp, &q));
    }

    #[test]
    fn unknown_view_is_error() {
        let views = paper_views();
        let rw = parse_query("Q(X) :- V9(X)").unwrap();
        assert!(matches!(
            expand(&rw, &views),
            Err(RewriteError::UnknownView { .. })
        ));
    }

    #[test]
    fn unsafe_expansion_rejected() {
        // View with constant head: V('k') :- R(Z). Expanding Q(X) :- V(X)
        // binds X='k'... actually unification binds X to 'k', producing a
        // ground head — safe. Instead test a view that drops the variable:
        // no unification failure, but head var X of the rewriting never
        // appears in base atoms.
        let views = ViewSet::new(vec![parse_query("V(X) :- R(X)").unwrap()]).unwrap();
        // Rewriting head uses a variable not bound by any view atom.
        let rw = ConjunctiveQuery {
            head: citesys_cq::Atom::new("Q", vec![citesys_cq::Term::var("Unbound")]),
            body: vec![citesys_cq::Atom::new("V", vec![citesys_cq::Term::var("X")])],
            params: vec![],
        };
        assert_eq!(expand(&rw, &views).unwrap(), None);
    }

    #[test]
    fn repeated_view_atom_shares_joins() {
        // Join through a shared rewriting variable is preserved.
        let views = ViewSet::new(vec![parse_query("V(X, Y) :- E(X, Y)").unwrap()]).unwrap();
        let rw = parse_query("Q(A, C) :- V(A, B), V(B, C)").unwrap();
        let exp = expand(&rw, &views).unwrap().unwrap();
        let q = parse_query("Q(A, C) :- E(A, B), E(B, C)").unwrap();
        assert!(are_equivalent(&exp, &q));
    }

    #[test]
    fn view_binding_exposes_param_mapping() {
        let view = parse_query("λ FID. V1(FID, FName, Desc) :- Family(FID, FName, Desc)").unwrap();
        let atom = parse_query("Q(N) :- V1(F, N, D)").unwrap().body[0].clone();
        let (fresh, s) = view_binding(&atom, &view, 0).unwrap();
        // The renamed parameter maps (possibly via an alias chain) to the
        // rewriting's variable F.
        let p = &fresh.params[0];
        let image = s.apply_term(&citesys_cq::Term::Var(p.clone()));
        assert_eq!(image, citesys_cq::Term::var("F"));
    }
}

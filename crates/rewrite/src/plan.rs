//! Reusable rewriting plans.
//!
//! A [`RewritePlan`] is the cacheable product of one rewriting search: the
//! validated rewritings, the search statistics, and whether the search fell
//! back to contained (partial) rewritings. Plans are cheap to clone, can be
//! serialized to a line-oriented text form for persistence, and — because
//! citation views carry no constants in the common case — can be
//! *instantiated* at new λ-parameter constants without re-running the
//! search (the engine-side plan cache relies on this).

use std::collections::BTreeMap;
use std::fmt;

use citesys_cq::{parse_query, Term, Value};

use crate::stats::RewriteStats;
use crate::Rewriting;

/// The cached result of one rewriting search.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RewritePlan {
    /// The validated rewritings (equivalent, or maximally contained when
    /// `partial` is set).
    pub rewritings: Vec<Rewriting>,
    /// Search-effort counters from the run that produced the plan.
    pub stats: RewriteStats,
    /// True when the rewritings are *contained* (partial citations) rather
    /// than equivalent.
    pub partial: bool,
}

/// Errors from [`RewritePlan::from_text`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PlanParseError {
    /// Human-readable description of the malformed input.
    pub message: String,
}

impl fmt::Display for PlanParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed rewrite plan: {}", self.message)
    }
}

impl std::error::Error for PlanParseError {}

fn err(message: impl Into<String>) -> PlanParseError {
    PlanParseError {
        message: message.into(),
    }
}

/// Trims one trailing carriage return from a line of a persisted plan
/// (or plan-cache) file. `str::lines` already splits `\r\n`, but a final
/// line without a terminating newline (or a file whose `\r` placement an
/// editor mangled) can still carry one, which would corrupt the field it
/// ends. Shared with `citesys-core`'s plan-cache parser so both text
/// formats apply the identical CRLF tolerance.
pub fn trim_cr(line: &str) -> &str {
    line.strip_suffix('\r').unwrap_or(line)
}

impl RewritePlan {
    /// A plan with no rewritings (used as a negative-cache sentinel).
    pub fn empty() -> Self {
        RewritePlan {
            rewritings: Vec::new(),
            stats: RewriteStats::default(),
            partial: false,
        }
    }

    /// Re-targets the plan at new constants: every occurrence of a key of
    /// `mapping` (in rewriting bodies, heads and expansions) is replaced by
    /// its value.
    ///
    /// This is sound for plan reuse when the registered views mention no
    /// constants themselves: the rewriting search treats all query
    /// constants uniformly, so a plan computed at one constant vector
    /// transfers to any other with the same equality pattern (the caller's
    /// cache key encodes that pattern).
    pub fn instantiate(&self, mapping: &BTreeMap<Value, Value>) -> RewritePlan {
        if mapping.is_empty() {
            return self.clone();
        }
        let map_term = |t: &Term| -> Term {
            match t {
                Term::Const(c) => match mapping.get(c) {
                    Some(d) => Term::Const(d.clone()),
                    None => t.clone(),
                },
                Term::Var(_) => t.clone(),
            }
        };
        let map_query = |q: &citesys_cq::ConjunctiveQuery| {
            let mut out = q.clone();
            out.head.terms = out.head.terms.iter().map(&map_term).collect();
            for atom in &mut out.body {
                atom.terms = atom.terms.iter().map(&map_term).collect();
            }
            out
        };
        RewritePlan {
            rewritings: self
                .rewritings
                .iter()
                .map(|r| Rewriting {
                    query: map_query(&r.query),
                    expansion: map_query(&r.expansion),
                })
                .collect(),
            stats: self.stats,
            partial: self.partial,
        }
    }

    /// Serializes the plan to a line-oriented text form.
    ///
    /// Limitations: text constants containing newlines do not round-trip
    /// (they cannot be produced by the surface parser either).
    pub fn to_text(&self) -> String {
        let mut out = String::from("citesys-rewrite-plan v1\n");
        out.push_str(&format!("partial {}\n", self.partial));
        let s = &self.stats;
        out.push_str(&format!(
            "stats {} {} {} {} {} {} {} {} {}\n",
            s.views_total,
            s.views_pruned,
            s.bucket_entries,
            s.mcds_formed,
            s.candidates_generated,
            s.candidates_expanded,
            s.equivalence_checks,
            s.rewritings_found,
            s.plan_cache_hits,
        ));
        for r in &self.rewritings {
            out.push_str(&format!("q {}\n", r.query));
            out.push_str(&format!("e {}\n", r.expansion));
        }
        out
    }

    /// Parses a plan serialized by [`RewritePlan::to_text`].
    ///
    /// Tolerant of Windows line endings and trailing blank lines: a
    /// carriage return left at the end of any line (a plans file saved or
    /// edited with CRLF endings, including a final line missing its
    /// newline) is trimmed before parsing, so no `\r` ever leaks into a
    /// query or stats field.
    pub fn from_text(text: &str) -> Result<RewritePlan, PlanParseError> {
        let mut lines = text.lines().map(trim_cr);
        match lines.next() {
            Some("citesys-rewrite-plan v1") => {}
            other => return Err(err(format!("bad header: {other:?}"))),
        }
        let partial = match lines.next().and_then(|l| l.strip_prefix("partial ")) {
            Some("true") => true,
            Some("false") => false,
            other => return Err(err(format!("bad partial line: {other:?}"))),
        };
        let stats_line = lines
            .next()
            .and_then(|l| l.strip_prefix("stats "))
            .ok_or_else(|| err("missing stats line"))?;
        let nums: Vec<usize> = stats_line
            .split_whitespace()
            .map(|n| {
                n.parse()
                    .map_err(|_| err(format!("bad stats number '{n}'")))
            })
            .collect::<Result<_, _>>()?;
        let [views_total, views_pruned, bucket_entries, mcds_formed, candidates_generated, candidates_expanded, equivalence_checks, rewritings_found, plan_cache_hits] =
            nums.as_slice()
        else {
            return Err(err(format!(
                "expected 9 stats counters, got {}",
                nums.len()
            )));
        };
        let stats = RewriteStats {
            views_total: *views_total,
            views_pruned: *views_pruned,
            bucket_entries: *bucket_entries,
            mcds_formed: *mcds_formed,
            candidates_generated: *candidates_generated,
            candidates_expanded: *candidates_expanded,
            equivalence_checks: *equivalence_checks,
            rewritings_found: *rewritings_found,
            plan_cache_hits: *plan_cache_hits,
            // The serving shard is a property of one in-process cache, not
            // of the plan; it is not persisted.
            plan_cache_shard: 0,
        };
        let mut rewritings = Vec::new();
        let mut pending_q: Option<String> = None;
        for line in lines {
            if let Some(q) = line.strip_prefix("q ") {
                if pending_q.is_some() {
                    return Err(err("q line without matching e line"));
                }
                pending_q = Some(q.to_string());
            } else if let Some(e) = line.strip_prefix("e ") {
                let q = pending_q
                    .take()
                    .ok_or_else(|| err("e line without q line"))?;
                let query = parse_query(&q).map_err(|pe| err(format!("bad query '{q}': {pe}")))?;
                let expansion =
                    parse_query(e).map_err(|pe| err(format!("bad expansion '{e}': {pe}")))?;
                rewritings.push(Rewriting { query, expansion });
            } else if !line.trim().is_empty() {
                return Err(err(format!("unexpected line '{line}'")));
            }
        }
        if pending_q.is_some() {
            return Err(err("trailing q line without e line"));
        }
        Ok(RewritePlan {
            rewritings,
            stats,
            partial,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{rewrite, RewriteOptions, ViewSet};

    fn sample_plan() -> RewritePlan {
        let views = ViewSet::new(vec![
            parse_query("λ FID. V1(FID, FName, Desc) :- Family(FID, FName, Desc)").unwrap(),
            parse_query("V2(FID, FName, Desc) :- Family(FID, FName, Desc)").unwrap(),
            parse_query("V3(FID, Text) :- FamilyIntro(FID, Text)").unwrap(),
        ])
        .unwrap();
        let q =
            parse_query("Q(FName) :- Family(FID, FName, Desc), FamilyIntro(FID, Text)").unwrap();
        let out = rewrite(&q, &views, &RewriteOptions::default()).unwrap();
        RewritePlan {
            rewritings: out.rewritings,
            stats: out.stats,
            partial: false,
        }
    }

    #[test]
    fn text_round_trip() {
        let plan = sample_plan();
        let text = plan.to_text();
        let back = RewritePlan::from_text(&text).unwrap();
        assert_eq!(plan, back);
    }

    #[test]
    fn round_trip_preserves_constants_and_params() {
        let views = ViewSet::new(vec![parse_query("V(F, N) :- Family(F, N, D)").unwrap()]).unwrap();
        let q = parse_query("Q(N) :- Family(11, N, D)").unwrap();
        let out = rewrite(&q, &views, &RewriteOptions::default()).unwrap();
        let plan = RewritePlan {
            rewritings: out.rewritings,
            stats: out.stats,
            partial: true,
        };
        let back = RewritePlan::from_text(&plan.to_text()).unwrap();
        assert_eq!(plan, back);
        assert!(back.partial);
    }

    #[test]
    fn crlf_round_trip() {
        // A plans file saved on Windows: every line ending becomes \r\n
        // (including one left dangling at EOF without a final newline)
        // and editors append trailing blank lines. Parsing must yield the
        // identical plan — no \r leaking into queries or stats.
        let plan = sample_plan();
        let crlf = plan.to_text().replace('\n', "\r\n");
        assert_eq!(RewritePlan::from_text(&crlf).unwrap(), plan);
        let trailing = format!("{}\r\n\r\n", crlf.trim_end());
        assert_eq!(RewritePlan::from_text(&trailing).unwrap(), plan);
        let no_final_newline = crlf.trim_end_matches('\n').to_string();
        assert!(no_final_newline.ends_with('\r'));
        assert_eq!(RewritePlan::from_text(&no_final_newline).unwrap(), plan);
    }

    #[test]
    fn malformed_inputs_rejected() {
        assert!(RewritePlan::from_text("").is_err());
        assert!(RewritePlan::from_text("citesys-rewrite-plan v1\npartial maybe\n").is_err());
        assert!(
            RewritePlan::from_text("citesys-rewrite-plan v1\npartial false\nstats 1 2\n").is_err()
        );
        assert!(RewritePlan::from_text(
            "citesys-rewrite-plan v1\npartial false\nstats 0 0 0 0 0 0 0 0 0\nq Q(X) :- R(X)\n"
        )
        .is_err());
        assert!(RewritePlan::from_text(
            "citesys-rewrite-plan v1\npartial false\nstats 0 0 0 0 0 0 0 0 0\nbogus\n"
        )
        .is_err());
    }

    #[test]
    fn instantiate_rewrites_constants() {
        let views = ViewSet::new(vec![parse_query("V(F, N) :- Family(F, N, D)").unwrap()]).unwrap();
        let q = parse_query("Q(N) :- Family(11, N, D)").unwrap();
        let out = rewrite(&q, &views, &RewriteOptions::default()).unwrap();
        let plan = RewritePlan {
            rewritings: out.rewritings,
            stats: out.stats,
            partial: false,
        };
        let mapping: BTreeMap<Value, Value> =
            [(Value::Int(11), Value::Int(42))].into_iter().collect();
        let moved = plan.instantiate(&mapping);
        let printed = moved.rewritings[0].query.to_string();
        assert!(printed.contains("42"), "{printed}");
        assert!(!printed.contains("11"), "{printed}");
        let exp = moved.rewritings[0].expansion.to_string();
        assert!(exp.contains("42"), "{exp}");
        // Empty mapping is the identity.
        assert_eq!(plan.instantiate(&BTreeMap::new()), plan);
    }
}

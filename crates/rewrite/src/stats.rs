//! Search statistics, reported alongside rewriting results.
//!
//! These counters are what the E2/E5 experiments plot: how much work each
//! algorithm and pruning level performs for the same query.

use std::fmt;

/// Counters accumulated during one rewriting run.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct RewriteStats {
    /// Views given to the algorithm before pruning.
    pub views_total: usize,
    /// Views discarded by schema-level pruning.
    pub views_pruned: usize,
    /// Total bucket entries across subgoals (bucket algorithm only).
    pub bucket_entries: usize,
    /// MiniCon descriptions formed (MiniCon only).
    pub mcds_formed: usize,
    /// Candidate rewritings generated before validation.
    pub candidates_generated: usize,
    /// Candidates that survived expansion (were well-formed).
    pub candidates_expanded: usize,
    /// Equivalence checks performed (the expensive step).
    pub equivalence_checks: usize,
    /// Final equivalent, minimized, deduplicated rewritings.
    pub rewritings_found: usize,
    /// Times this result was served from a prepared-plan cache instead of
    /// a fresh search (0 for a fresh search; 1 on a cache hit, where all
    /// search-effort counters above are 0 by construction).
    pub plan_cache_hits: usize,
    /// Index of the plan-cache shard that served (or stored) this query's
    /// plan. Meaningful only when the result went through a sharded plan
    /// cache; 0 otherwise. Together with the per-shard
    /// hit/miss/eviction counters the cache itself exposes, this ties an
    /// individual citation back to the shard that answered it.
    pub plan_cache_shard: usize,
}

impl RewriteStats {
    /// Total search effort: candidate generation plus validation work.
    /// Zero if and only if the result came from a cached plan (or there
    /// was trivially nothing to search).
    pub fn search_effort(&self) -> usize {
        self.bucket_entries
            + self.mcds_formed
            + self.candidates_generated
            + self.candidates_expanded
            + self.equivalence_checks
    }
}

impl fmt::Display for RewriteStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "views {}/{} kept, {} bucket entries, {} MCDs, {} candidates, \
             {} expanded, {} equivalence checks, {} rewritings{}",
            self.views_total - self.views_pruned,
            self.views_total,
            self.bucket_entries,
            self.mcds_formed,
            self.candidates_generated,
            self.candidates_expanded,
            self.equivalence_checks,
            self.rewritings_found,
            if self.plan_cache_hits > 0 {
                " (from plan cache)"
            } else {
                ""
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_summarizes() {
        let s = RewriteStats {
            views_total: 10,
            views_pruned: 4,
            candidates_generated: 12,
            ..Default::default()
        };
        let text = s.to_string();
        assert!(text.contains("views 6/10 kept"));
        assert!(text.contains("12 candidates"));
    }
}

//! Schema-level pruning of the rewriting search space.
//!
//! §3 of the paper ("Calculating citations"): it is infeasible to go
//! through all rewritings, "pointing to the need for cost functions to
//! reduce the search space. It may also be possible to do some of the
//! reasoning at the schema level." This module implements that reasoning:
//! views are filtered before candidate generation using only the schema
//! (predicate sets and arities), never the data.

use std::collections::BTreeSet;

use citesys_cq::{ConjunctiveQuery, Symbol};

use crate::view::ViewSet;

/// Why a view survived or was pruned (for diagnostics and the E5 bench).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ViewRelevance {
    /// The view can participate in an equivalent rewriting.
    Relevant,
    /// The view's body mentions a predicate the query does not — its
    /// expansion could never fold back onto the query.
    ExtraPredicate,
    /// The view shares no predicate with the query.
    NoSharedPredicate,
    /// The view uses a shared predicate only at a different arity.
    ArityMismatch,
}

/// Classifies one view against a query, schema-level only.
///
/// Soundness argument for `ExtraPredicate`: an *equivalent* rewriting `Q'`
/// satisfies `expand(Q') ⊆ Q`, which requires a containment mapping from
/// `expand(Q')` into … wait — requires a homomorphism from `Q` into
/// `expand(Q')` *and* one from `expand(Q')` into `Q`; the latter maps every
/// base atom of the expansion onto a query atom with the same predicate.
/// A view whose body mentions a predicate absent from `Q` therefore cannot
/// appear in any equivalent rewriting.
pub fn classify_view(q: &ConjunctiveQuery, view: &ConjunctiveQuery) -> ViewRelevance {
    let q_preds: BTreeSet<&Symbol> = q.body.iter().map(|a| &a.predicate).collect();
    let v_preds: BTreeSet<&Symbol> = view.body.iter().map(|a| &a.predicate).collect();
    if v_preds.is_empty() || v_preds.intersection(&q_preds).next().is_none() {
        return ViewRelevance::NoSharedPredicate;
    }
    if !v_preds.is_subset(&q_preds) {
        return ViewRelevance::ExtraPredicate;
    }
    // Every view atom must be unifiable-in-principle with some query atom:
    // same predicate at the same arity.
    let ok = view.body.iter().all(|va| {
        q.body
            .iter()
            .any(|qa| qa.predicate == va.predicate && qa.arity() == va.arity())
    });
    if ok {
        ViewRelevance::Relevant
    } else {
        ViewRelevance::ArityMismatch
    }
}

/// Indices of views that survive schema-level pruning for **equivalent**
/// rewritings, plus the number pruned.
pub fn relevant_views(q: &ConjunctiveQuery, views: &ViewSet) -> (Vec<usize>, usize) {
    let mut keep = Vec::new();
    let mut pruned = 0;
    for (i, v) in views.iter().enumerate() {
        if classify_view(q, v) == ViewRelevance::Relevant {
            keep.push(i);
        } else {
            pruned += 1;
        }
    }
    (keep, pruned)
}

/// Pruning for **contained** rewritings: only the `ExtraPredicate` rule is
/// unsound there (a view with extra joins restricts, which containment
/// allows), so a view survives when it shares at least one predicate with
/// the query at a matching arity.
pub fn relevant_views_contained(q: &ConjunctiveQuery, views: &ViewSet) -> (Vec<usize>, usize) {
    let mut keep = Vec::new();
    let mut pruned = 0;
    for (i, v) in views.iter().enumerate() {
        let usable = v.body.iter().any(|va| {
            q.body
                .iter()
                .any(|qa| qa.predicate == va.predicate && qa.arity() == va.arity())
        });
        if usable {
            keep.push(i);
        } else {
            pruned += 1;
        }
    }
    (keep, pruned)
}

#[cfg(test)]
mod tests {
    use super::*;
    use citesys_cq::parse_query;

    fn q() -> ConjunctiveQuery {
        parse_query("Q(N) :- Family(F, N, D), FamilyIntro(F, T)").unwrap()
    }

    #[test]
    fn relevant_view_kept() {
        let v = parse_query("V(F, N, D) :- Family(F, N, D)").unwrap();
        assert_eq!(classify_view(&q(), &v), ViewRelevance::Relevant);
    }

    #[test]
    fn extra_predicate_pruned() {
        let v = parse_query("V(F, N) :- Family(F, N, D), Committee(F, P)").unwrap();
        assert_eq!(classify_view(&q(), &v), ViewRelevance::ExtraPredicate);
    }

    #[test]
    fn unrelated_view_pruned() {
        let v = parse_query("V(F, P) :- Committee(F, P)").unwrap();
        assert_eq!(classify_view(&q(), &v), ViewRelevance::NoSharedPredicate);
    }

    #[test]
    fn arity_mismatch_pruned() {
        let v = parse_query("V(F) :- Family(F)").unwrap();
        assert_eq!(classify_view(&q(), &v), ViewRelevance::ArityMismatch);
    }

    #[test]
    fn relevant_views_counts() {
        let views = ViewSet::new(vec![
            parse_query("V1(F, N, D) :- Family(F, N, D)").unwrap(),
            parse_query("V2(F, T) :- FamilyIntro(F, T)").unwrap(),
            parse_query("V3(F, P) :- Committee(F, P)").unwrap(),
        ])
        .unwrap();
        let (keep, pruned) = relevant_views(&q(), &views);
        assert_eq!(keep, vec![0, 1]);
        assert_eq!(pruned, 1);
    }
}

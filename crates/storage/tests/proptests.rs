//! Property-based tests for the storage layer.

use citesys_cq::{parse_query, Value, ValueType};
use citesys_storage::{
    digest_database, evaluate, sha256, Database, RelationSchema, Sha256, Tuple, VersionedDatabase,
};
use proptest::prelude::*;

fn r_schema() -> RelationSchema {
    RelationSchema::from_parts("R", &[("A", ValueType::Int), ("B", ValueType::Int)], &[])
}

fn small_tuple() -> impl Strategy<Value = Tuple> {
    (0i64..8, 0i64..8).prop_map(|(a, b)| Tuple::new(vec![Value::Int(a), Value::Int(b)]))
}

/// A mutation script: true = insert, false = delete.
fn script() -> impl Strategy<Value = Vec<(bool, Tuple)>> {
    prop::collection::vec((any::<bool>(), small_tuple()), 0..60)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The relation behaves like a set under arbitrary insert/delete
    /// scripts: `contains`, `len` and `scan` all agree with a model
    /// `BTreeSet`.
    #[test]
    fn relation_matches_set_model(ops in script()) {
        let mut db = Database::new();
        db.create_relation(r_schema()).unwrap();
        let mut model = std::collections::BTreeSet::new();
        for (is_insert, t) in ops {
            if is_insert {
                db.insert("R", t.clone()).unwrap();
                model.insert(t);
            } else {
                db.delete("R", &t).unwrap();
                model.remove(&t);
            }
        }
        let rel = db.relation("R").unwrap();
        prop_assert_eq!(rel.len(), model.len());
        let mut scanned: Vec<Tuple> = rel.scan().cloned().collect();
        scanned.sort();
        let expected: Vec<Tuple> = model.iter().cloned().collect();
        prop_assert_eq!(scanned, expected);
        for t in &model {
            prop_assert!(rel.contains(t));
        }
    }

    /// Index lookups agree with filtered scans on every column.
    #[test]
    fn index_agrees_with_scan(ops in script(), col in 0usize..2, key in 0i64..8) {
        let mut db = Database::new();
        db.create_relation(r_schema()).unwrap();
        for (is_insert, t) in ops {
            if is_insert {
                db.insert("R", t).unwrap();
            } else {
                db.delete("R", &t).unwrap();
            }
        }
        let rel = db.relation("R").unwrap();
        let v = Value::Int(key);
        let mut via_index: Vec<Tuple> = rel.lookup(col, &v).cloned().collect();
        let mut via_scan: Vec<Tuple> =
            rel.scan().filter(|t| t.get(col) == Some(&v)).cloned().collect();
        via_index.sort();
        via_scan.sort();
        prop_assert_eq!(via_index, via_scan);
    }

    /// A full single-atom query returns exactly the stored tuples.
    #[test]
    fn single_atom_query_is_scan(ops in script()) {
        let mut db = Database::new();
        db.create_relation(r_schema()).unwrap();
        for (is_insert, t) in ops {
            if is_insert { db.insert("R", t).unwrap(); } else { db.delete("R", &t).unwrap(); }
        }
        let q = parse_query("Q(A, B) :- R(A, B)").unwrap();
        let a = evaluate(&db, &q).unwrap();
        let mut expected: Vec<Tuple> = db.relation("R").unwrap().scan().cloned().collect();
        expected.sort();
        let got: Vec<Tuple> = a.tuples().cloned().collect();
        prop_assert_eq!(got, expected);
        // Exactly one binding per tuple for a full projection.
        prop_assert!(a.rows.iter().all(|r| r.bindings.len() == 1));
    }

    /// Join results match a nested-loop reference implementation.
    #[test]
    fn join_matches_nested_loops(ops1 in script(), ops2 in script()) {
        let mut db = Database::new();
        db.create_relation(r_schema()).unwrap();
        db.create_relation(RelationSchema::from_parts(
            "S", &[("A", ValueType::Int), ("B", ValueType::Int)], &[])).unwrap();
        for (is_insert, t) in ops1 {
            if is_insert { db.insert("R", t).unwrap(); } else { db.delete("R", &t).unwrap(); }
        }
        for (is_insert, t) in ops2 {
            if is_insert { db.insert("S", t).unwrap(); } else { db.delete("S", &t).unwrap(); }
        }
        let q = parse_query("Q(X, Z) :- R(X, Y), S(Y, Z)").unwrap();
        let a = evaluate(&db, &q).unwrap();
        // Reference: nested loops with dedup.
        let mut expected = std::collections::BTreeSet::new();
        for r in db.relation("R").unwrap().scan() {
            for s in db.relation("S").unwrap().scan() {
                if r.get(1) == s.get(0) {
                    expected.insert(Tuple::new(vec![
                        r.get(0).unwrap().clone(),
                        s.get(1).unwrap().clone(),
                    ]));
                }
            }
        }
        let got: std::collections::BTreeSet<Tuple> = a.tuples().cloned().collect();
        prop_assert_eq!(got, expected);
    }

    /// Snapshot at the latest version equals the committed working state.
    #[test]
    fn snapshot_latest_equals_current(ops in script()) {
        let mut v = VersionedDatabase::new(vec![r_schema()]).unwrap();
        for (is_insert, t) in ops {
            if is_insert { v.insert("R", t).unwrap(); } else { v.delete("R", &t).unwrap(); }
        }
        let ver = v.commit();
        let snap = v.snapshot(ver).unwrap();
        prop_assert_eq!(digest_database(snap.as_ref()), digest_database(v.current()));
    }

    /// Historical snapshots are immutable: later commits never change an
    /// earlier version's digest.
    #[test]
    fn snapshots_immutable(ops1 in script(), ops2 in script()) {
        let mut v = VersionedDatabase::new(vec![r_schema()]).unwrap();
        for (is_insert, t) in ops1 {
            if is_insert { v.insert("R", t).unwrap(); } else { v.delete("R", &t).unwrap(); }
        }
        let v1 = v.commit();
        let d1 = v.digest_at(v1).unwrap();
        for (is_insert, t) in ops2 {
            if is_insert { v.insert("R", t).unwrap(); } else { v.delete("R", &t).unwrap(); }
        }
        v.commit();
        prop_assert_eq!(v.digest_at(v1).unwrap(), d1);
    }

    /// SHA-256 over arbitrary chunkings equals the one-shot hash.
    #[test]
    fn sha256_chunking_invariant(data in prop::collection::vec(any::<u8>(), 0..300),
                                 cuts in prop::collection::vec(any::<prop::sample::Index>(), 0..6)) {
        let mut points: Vec<usize> = cuts.iter().map(|i| i.index(data.len() + 1)).collect();
        points.push(0);
        points.push(data.len());
        points.sort_unstable();
        let mut h = Sha256::new();
        for w in points.windows(2) {
            h.update(&data[w[0]..w[1]]);
        }
        prop_assert_eq!(h.finalize(), sha256(&data));
    }

    /// Delta-maintained materializations equal from-scratch recomputation
    /// after every step of an arbitrary insert/delete script, for a panel
    /// of view shapes (projection, self-join, repeated variable, pinned
    /// constant — including a view that never mentions the updated
    /// relation and must stay byte-identical without recomputation).
    #[test]
    fn delta_maintenance_matches_recompute(ops in script()) {
        use citesys_storage::delta;
        let views = [
            parse_query("V1(A, B) :- R(A, B)").unwrap(),
            parse_query("V2(A) :- R(A, B)").unwrap(),
            parse_query("V3(A, C) :- R(A, B), R(B, C)").unwrap(),
            parse_query("V4(A) :- R(A, A)").unwrap(),
            parse_query("V5(B) :- R(3, B)").unwrap(),
            parse_query("V6(X) :- S(X)").unwrap(),
        ];
        let mut db = Database::new();
        db.create_relation(r_schema()).unwrap();
        db.create_relation(RelationSchema::from_parts("S", &[("X", ValueType::Int)], &[]))
            .unwrap();
        db.insert("S", Tuple::new(vec![Value::Int(7)])).unwrap();

        let materialize = |db: &Database, v: &citesys_cq::ConjunctiveQuery| {
            evaluate(db, v)
                .unwrap()
                .rows
                .into_iter()
                .map(|r| r.tuple)
                .collect::<std::collections::BTreeSet<Tuple>>()
        };
        let mut mats: Vec<std::collections::BTreeSet<Tuple>> =
            views.iter().map(|v| materialize(&db, v)).collect();

        for (is_insert, t) in ops {
            if is_insert {
                // Candidates need nothing for inserts; mutate, then delta.
                db.insert("R", t.clone()).unwrap();
                for (v, mat) in views.iter().zip(mats.iter_mut()) {
                    for row in delta::insert_delta(&db, v, "R", &t).unwrap() {
                        mat.insert(row);
                    }
                }
            } else {
                let candidates: Vec<Vec<Tuple>> = views
                    .iter()
                    .map(|v| delta::delete_candidates(&db, v, "R", &t).unwrap())
                    .collect();
                db.delete("R", &t).unwrap();
                for ((v, mat), cands) in views.iter().zip(mats.iter_mut()).zip(candidates) {
                    for row in cands {
                        if !delta::still_derivable(&db, v, &row).unwrap() {
                            mat.remove(&row);
                        }
                    }
                }
            }
            for (v, mat) in views.iter().zip(mats.iter()) {
                prop_assert_eq!(mat, &materialize(&db, v), "view {} diverged", v.name());
            }
        }
    }

    /// Batch delta maintenance equals recomputation: the same arbitrary
    /// scripts, chopped into transactions of mixed inserts and deletes and
    /// applied as one `Changeset` each — net normalization, one
    /// `delete_candidates_batch` over the pre-batch database, one
    /// `insert_delta_batch` + recheck over the single post-batch database.
    #[test]
    fn batch_delta_maintenance_matches_recompute(
        (ops, chunk) in (script(), 1usize..9)
    ) {
        use citesys_storage::{delta, Changeset};
        let views = [
            parse_query("V1(A, B) :- R(A, B)").unwrap(),
            parse_query("V2(A) :- R(A, B)").unwrap(),
            parse_query("V3(A, C) :- R(A, B), R(B, C)").unwrap(),
            parse_query("V4(A) :- R(A, A)").unwrap(),
            parse_query("V5(B) :- R(3, B)").unwrap(),
            parse_query("V6(X) :- S(X)").unwrap(),
        ];
        let mut db = Database::new();
        db.create_relation(r_schema()).unwrap();
        db.create_relation(RelationSchema::from_parts("S", &[("X", ValueType::Int)], &[]))
            .unwrap();
        db.insert("S", Tuple::new(vec![Value::Int(7)])).unwrap();

        let materialize = |db: &Database, v: &citesys_cq::ConjunctiveQuery| {
            evaluate(db, v)
                .unwrap()
                .rows
                .into_iter()
                .map(|r| r.tuple)
                .collect::<std::collections::BTreeSet<Tuple>>()
        };
        let mut mats: Vec<std::collections::BTreeSet<Tuple>> =
            views.iter().map(|v| materialize(&db, v)).collect();

        for batch in ops.chunks(chunk) {
            let mut changes = Changeset::new();
            for (is_insert, t) in batch {
                if *is_insert {
                    changes.insert("R", t.clone());
                } else {
                    changes.delete("R", t.clone());
                }
            }
            let net = changes.net(&db);
            let candidates: Vec<Vec<Tuple>> = views
                .iter()
                .map(|v| delta::delete_candidates_batch(&db, v, &net.deletes).unwrap())
                .collect();
            changes.apply(&mut db).unwrap();
            for ((v, mat), cands) in views.iter().zip(mats.iter_mut()).zip(candidates) {
                for row in cands {
                    if !delta::still_derivable(&db, v, &row).unwrap() {
                        mat.remove(&row);
                    }
                }
                for row in delta::insert_delta_batch(&db, v, &net.inserts).unwrap() {
                    mat.insert(row);
                }
            }
            for (v, mat) in views.iter().zip(mats.iter()) {
                prop_assert_eq!(mat, &materialize(&db, v), "view {} diverged", v.name());
            }
        }
    }
}

//! The database: a catalog of relations.

use std::collections::BTreeMap;

use citesys_cq::Symbol;

use crate::error::StorageError;
use crate::relation::Relation;
use crate::schema::RelationSchema;
use crate::tuple::Tuple;

/// A cheaply clonable, thread-safe handle to an immutable database
/// snapshot — what the owned citation service and version snapshots hand
/// around.
pub type SharedDatabase = std::sync::Arc<Database>;

/// An in-memory relational database.
///
/// A `BTreeMap` catalog keeps relation iteration deterministic, which keeps
/// digests (fixity) and test expectations stable.
#[derive(Clone, Debug, Default)]
pub struct Database {
    relations: BTreeMap<Symbol, Relation>,
}

impl Database {
    /// Creates an empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a new relation.
    pub fn create_relation(&mut self, schema: RelationSchema) -> Result<(), StorageError> {
        if self.relations.contains_key(&schema.name) {
            return Err(StorageError::DuplicateRelation {
                name: schema.name.to_string(),
            });
        }
        self.relations
            .insert(schema.name.clone(), Relation::new(schema));
        Ok(())
    }

    /// Looks up a relation by name.
    pub fn relation(&self, name: &str) -> Result<&Relation, StorageError> {
        self.relations
            .get(name)
            .ok_or_else(|| StorageError::UnknownRelation {
                name: name.to_string(),
            })
    }

    /// True when the catalog contains `name`.
    pub fn has_relation(&self, name: &str) -> bool {
        self.relations.contains_key(name)
    }

    /// Inserts a tuple into `rel`. Returns whether the database changed.
    pub fn insert(&mut self, rel: &str, t: Tuple) -> Result<bool, StorageError> {
        self.relations
            .get_mut(rel)
            .ok_or_else(|| StorageError::UnknownRelation {
                name: rel.to_string(),
            })?
            .insert(t)
    }

    /// Inserts many tuples into `rel`.
    pub fn insert_all<I>(&mut self, rel: &str, tuples: I) -> Result<usize, StorageError>
    where
        I: IntoIterator<Item = Tuple>,
    {
        let r = self
            .relations
            .get_mut(rel)
            .ok_or_else(|| StorageError::UnknownRelation {
                name: rel.to_string(),
            })?;
        let mut n = 0;
        for t in tuples {
            if r.insert(t)? {
                n += 1;
            }
        }
        Ok(n)
    }

    /// Deletes a tuple from `rel`. Returns whether a tuple was removed.
    pub fn delete(&mut self, rel: &str, t: &Tuple) -> Result<bool, StorageError> {
        Ok(self
            .relations
            .get_mut(rel)
            .ok_or_else(|| StorageError::UnknownRelation {
                name: rel.to_string(),
            })?
            .delete(t))
    }

    /// Wraps the database in an [`Arc`](std::sync::Arc) — the
    /// [`SharedDatabase`] handle an owned citation service holds.
    /// Snapshots from [`VersionedDatabase`](crate::VersionedDatabase) are
    /// already shared; this is the equivalent entry point for databases
    /// built directly.
    pub fn into_shared(self) -> SharedDatabase {
        std::sync::Arc::new(self)
    }

    /// Iterates over `(name, relation)` pairs in name order.
    pub fn relations(&self) -> impl Iterator<Item = (&Symbol, &Relation)> {
        self.relations.iter()
    }

    /// Names of all relations, in order.
    pub fn relation_names(&self) -> Vec<Symbol> {
        self.relations.keys().cloned().collect()
    }

    /// Total number of live tuples across all relations.
    pub fn total_tuples(&self) -> usize {
        self.relations.values().map(Relation::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;
    use citesys_cq::ValueType;

    fn db() -> Database {
        let mut d = Database::new();
        d.create_relation(RelationSchema::from_parts(
            "Family",
            &[
                ("FID", ValueType::Int),
                ("FName", ValueType::Text),
                ("Desc", ValueType::Text),
            ],
            &[0],
        ))
        .unwrap();
        d.create_relation(RelationSchema::from_parts(
            "Committee",
            &[("FID", ValueType::Int), ("PName", ValueType::Text)],
            &[0, 1],
        ))
        .unwrap();
        d
    }

    #[test]
    fn create_and_insert() {
        let mut d = db();
        assert!(d.insert("Family", tuple![11, "Calcitonin", "C1"]).unwrap());
        assert_eq!(d.relation("Family").unwrap().len(), 1);
        assert_eq!(d.total_tuples(), 1);
    }

    #[test]
    fn duplicate_relation_rejected() {
        let mut d = db();
        let e = d
            .create_relation(RelationSchema::from_parts(
                "Family",
                &[("X", ValueType::Int)],
                &[],
            ))
            .unwrap_err();
        assert!(matches!(e, StorageError::DuplicateRelation { .. }));
    }

    #[test]
    fn unknown_relation_errors() {
        let mut d = db();
        assert!(matches!(
            d.insert("Nope", tuple![1]),
            Err(StorageError::UnknownRelation { .. })
        ));
        assert!(d.relation("Nope").is_err());
        assert!(!d.has_relation("Nope"));
    }

    #[test]
    fn insert_all_counts_changes() {
        let mut d = db();
        let n = d
            .insert_all(
                "Committee",
                vec![tuple![11, "Alice"], tuple![11, "Bob"], tuple![11, "Alice"]],
            )
            .unwrap();
        assert_eq!(n, 2, "duplicate not counted");
    }

    #[test]
    fn delete_roundtrip() {
        let mut d = db();
        d.insert("Family", tuple![11, "Calcitonin", "C1"]).unwrap();
        assert!(d.delete("Family", &tuple![11, "Calcitonin", "C1"]).unwrap());
        assert_eq!(d.total_tuples(), 0);
    }

    #[test]
    fn relation_names_sorted() {
        let d = db();
        let names: Vec<String> = d.relation_names().iter().map(ToString::to_string).collect();
        assert_eq!(names, ["Committee", "Family"]);
    }
}

//! CSV import/export for relations — the interchange format curated
//! databases actually publish dumps in.
//!
//! Dialect: comma-separated, `"`-quoted fields with `""` escaping, one
//! header row with `name:type` columns. Implemented in-tree (no csv crate
//! in the allowed dependency set); round-trip safety is property-tested.

use citesys_cq::{Value, ValueType};

use crate::database::Database;
use crate::error::StorageError;
use crate::relation::Relation;
use crate::schema::{Attribute, RelationSchema};
use crate::tuple::Tuple;

/// Serializes a relation to CSV (header row of `name:type`, then data).
pub fn to_csv(rel: &Relation) -> String {
    let mut out = String::new();
    out.push_str(&csv_header(rel.schema()));
    out.push('\n');
    let mut rows: Vec<&Tuple> = rel.scan().collect();
    rows.sort();
    for t in rows {
        let cells: Vec<String> = t.values().iter().map(render_csv_value).collect();
        out.push_str(&cells.join(","));
        out.push('\n');
    }
    out
}

/// Renders one value as a CSV cell (text is quoted, scalars are bare).
pub fn render_csv_value(v: &Value) -> String {
    match v {
        Value::Int(i) => i.to_string(),
        Value::Bool(b) => b.to_string(),
        Value::Text(s) => csv_quote(s.as_str()),
    }
}

/// Quotes a string as a CSV cell (`"` doubled, surrounding quotes added).
pub fn csv_quote(s: &str) -> String {
    format!("\"{}\"", s.replace('"', "\"\""))
}

/// Renders the `name:type` header row for a schema.
pub fn csv_header(schema: &RelationSchema) -> String {
    let cells: Vec<String> = schema
        .attributes
        .iter()
        .map(|a| csv_quote(&format!("{}:{}", a.name, a.ty)))
        .collect();
    cells.join(",")
}

/// Parses the header record (`name:type` cells) into attributes,
/// rejecting duplicate column names.
pub fn parse_csv_header(name: &str, header: &[String]) -> Result<Vec<Attribute>, StorageError> {
    let mut attrs: Vec<Attribute> = Vec::new();
    for cell in header {
        let (attr_name, ty) =
            cell.rsplit_once(':')
                .ok_or_else(|| StorageError::UnknownRelation {
                    name: format!("{name}: header cell '{cell}' lacks ':type'"),
                })?;
        let ty = match ty {
            "int" => ValueType::Int,
            "text" => ValueType::Text,
            "bool" => ValueType::Bool,
            other => {
                return Err(StorageError::UnknownRelation {
                    name: format!("{name}: unknown type '{other}'"),
                })
            }
        };
        if attrs.iter().any(|a| a.name.as_str() == attr_name) {
            return Err(StorageError::DuplicateColumn {
                relation: name.to_string(),
                attribute: attr_name.to_string(),
            });
        }
        attrs.push(Attribute::new(attr_name, ty));
    }
    Ok(attrs)
}

/// Parses one data record against a schema. `record_no` is the 1-based
/// data record number (header excluded) used in error messages.
pub fn parse_csv_record(
    schema: &RelationSchema,
    record: &[String],
    record_no: usize,
) -> Result<Tuple, StorageError> {
    let fail = |message: String| StorageError::CsvRecord {
        relation: schema.name.to_string(),
        record: record_no,
        message,
    };
    if record.len() != schema.arity() {
        return Err(fail(format!(
            "expected {} values, got {}",
            schema.arity(),
            record.len()
        )));
    }
    let mut values = Vec::with_capacity(record.len());
    for (cell, attr) in record.iter().zip(&schema.attributes) {
        values.push(parse_value(cell, attr).map_err(fail)?);
    }
    Ok(Tuple::new(values))
}

/// Parses a CSV document into `(schema, tuples)`; `name` becomes the
/// relation name, `key` the key positions.
pub fn from_csv(
    name: &str,
    key: &[usize],
    input: &str,
) -> Result<(RelationSchema, Vec<Tuple>), StorageError> {
    let mut lines = split_records(input).into_iter();
    let header = lines.next().ok_or_else(|| StorageError::UnknownRelation {
        name: format!("{name}: empty csv"),
    })?;
    let attrs = parse_csv_header(name, &header)?;
    let schema = RelationSchema::new(name, attrs, key.to_vec());
    let mut tuples = Vec::new();
    for (idx, record) in lines.enumerate() {
        tuples.push(parse_csv_record(&schema, &record, idx + 1)?);
    }
    Ok((schema, tuples))
}

fn parse_value(cell: &str, attr: &Attribute) -> Result<Value, String> {
    let mismatch = || {
        let shown: String = cell.chars().take(40).collect();
        format!("{}: expected {}, got '{shown}'", attr.name, attr.ty)
    };
    match attr.ty {
        ValueType::Int => cell.parse::<i64>().map(Value::Int).map_err(|_| mismatch()),
        ValueType::Bool => cell
            .parse::<bool>()
            .map(Value::Bool)
            .map_err(|_| mismatch()),
        ValueType::Text => Ok(Value::text(cell)),
    }
}

/// Splits CSV into records of unquoted cell strings, honouring quotes and
/// embedded newlines.
fn split_records(input: &str) -> Vec<Vec<String>> {
    let mut records = Vec::new();
    let mut record: Vec<String> = Vec::new();
    let mut cell = String::new();
    let mut in_quotes = false;
    let mut chars = input.chars().peekable();
    let mut any = false;
    while let Some(c) = chars.next() {
        any = true;
        match c {
            '"' if in_quotes => {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    cell.push('"');
                } else {
                    in_quotes = false;
                }
            }
            '"' => in_quotes = true,
            ',' if !in_quotes => {
                record.push(std::mem::take(&mut cell));
            }
            '\n' if !in_quotes => {
                record.push(std::mem::take(&mut cell));
                records.push(std::mem::take(&mut record));
            }
            '\r' if !in_quotes => {}
            other => cell.push(other),
        }
    }
    if any && (!cell.is_empty() || !record.is_empty()) {
        record.push(cell);
        records.push(record);
    }
    records.retain(|r| !(r.len() == 1 && r[0].is_empty()));
    records
}

/// Loads a CSV document into a database (creating the relation).
pub fn load_csv(
    db: &mut Database,
    name: &str,
    key: &[usize],
    input: &str,
) -> Result<usize, StorageError> {
    let (schema, tuples) = from_csv(name, key, input)?;
    db.create_relation(schema)?;
    db.insert_all(name, tuples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    fn family_csv() -> &'static str {
        "\"FID:int\",\"FName:text\",\"Desc:text\"\n11,\"Calcitonin\",\"C1\"\n12,\"Dopamine, the 2nd\",\"D \"\"quoted\"\"\"\n"
    }

    #[test]
    fn parse_with_quotes_and_commas() {
        let (schema, tuples) = from_csv("Family", &[0], family_csv()).unwrap();
        assert_eq!(schema.arity(), 3);
        assert_eq!(tuples.len(), 2);
        assert_eq!(
            tuples[1].get(1).unwrap().as_text(),
            Some("Dopamine, the 2nd")
        );
        assert_eq!(tuples[1].get(2).unwrap().as_text(), Some("D \"quoted\""));
    }

    #[test]
    fn round_trip() {
        let mut db = Database::new();
        load_csv(&mut db, "Family", &[0], family_csv()).unwrap();
        let rel = db.relation("Family").unwrap();
        let out = to_csv(rel);
        let mut db2 = Database::new();
        load_csv(&mut db2, "Family", &[0], &out).unwrap();
        assert_eq!(
            crate::fixity::digest_database(&db),
            crate::fixity::digest_database(&db2)
        );
    }

    #[test]
    fn embedded_newline_round_trips() {
        let mut db = Database::new();
        db.create_relation(RelationSchema::from_parts(
            "R",
            &[("A", ValueType::Int), ("B", ValueType::Text)],
            &[],
        ))
        .unwrap();
        db.insert("R", tuple![1, "line1\nline2"]).unwrap();
        let out = to_csv(db.relation("R").unwrap());
        let (_, tuples) = from_csv("R", &[], &out).unwrap();
        assert_eq!(tuples[0].get(1).unwrap().as_text(), Some("line1\nline2"));
    }

    #[test]
    fn bad_header_rejected() {
        assert!(from_csv("R", &[], "\"A\"\n1\n").is_err());
        assert!(from_csv("R", &[], "\"A:float\"\n1\n").is_err());
        assert!(from_csv("R", &[], "").is_err());
    }

    #[test]
    fn arity_and_type_errors() {
        let e = from_csv("R", &[], "\"A:int\",\"B:int\"\n1\n").unwrap_err();
        assert!(matches!(e, StorageError::CsvRecord { record: 1, .. }));
        let e = from_csv("R", &[], "\"A:int\"\n\"x\"\n").unwrap_err();
        assert!(matches!(e, StorageError::CsvRecord { record: 1, .. }));
    }

    #[test]
    fn duplicate_header_column_rejected() {
        let e = from_csv("R", &[], "\"A:int\",\"A:text\"\n1,\"x\"\n").unwrap_err();
        assert!(
            matches!(e, StorageError::DuplicateColumn { ref attribute, .. } if attribute == "A"),
            "{e}"
        );
    }

    #[test]
    fn type_error_reports_one_based_record_number() {
        let e = from_csv("R", &[], "\"A:int\"\n1\n2\n\"boom\"\n4\n").unwrap_err();
        match e {
            StorageError::CsvRecord {
                record, message, ..
            } => {
                assert_eq!(record, 3);
                assert!(message.contains("expected int"), "{message}");
                assert!(message.contains("boom"), "{message}");
            }
            other => panic!("unexpected error: {other}"),
        }
        assert!(from_csv("R", &[], "\"A:int\"\n1\n2\n\"boom\"\n4\n")
            .unwrap_err()
            .to_string()
            .contains("csv record 3"));
    }

    #[test]
    fn bool_values() {
        let (_, tuples) = from_csv("R", &[], "\"A:bool\"\ntrue\nfalse\n").unwrap();
        assert_eq!(tuples[0].get(0).unwrap().as_bool(), Some(true));
        assert_eq!(tuples[1].get(0).unwrap().as_bool(), Some(false));
    }

    #[test]
    fn export_sorted_and_deterministic() {
        let mut db = Database::new();
        db.create_relation(RelationSchema::from_parts(
            "R",
            &[("A", ValueType::Int)],
            &[],
        ))
        .unwrap();
        db.insert("R", tuple![2]).unwrap();
        db.insert("R", tuple![1]).unwrap();
        let out = to_csv(db.relation("R").unwrap());
        assert_eq!(out, "\"A:int\"\n1\n2\n");
    }
}

//! # citesys-storage — the relational substrate
//!
//! An in-memory relational store purpose-built for the citation engine of
//! *“Data Citation: A Computational Challenge”* (Davidson et al., PODS
//! 2017):
//!
//! * typed schemas with key constraints ([`schema`], [`relation`]),
//! * set-semantics relations with per-column hash indexes,
//! * a conjunctive-query evaluator that reports **every binding** per
//!   output tuple ([`eval`]) — the input to the paper's Definitions
//!   2.1/2.2,
//! * semi-naive delta rules for maintaining materialized views under
//!   single-tuple updates ([`delta`]),
//! * multi-version storage with snapshots for **fixity** ([`versioned`]),
//! * SHA-256 content digests over canonical serializations ([`fixity`]).
//!
//! ## Quick example
//!
//! ```
//! use citesys_cq::{parse_query, ValueType};
//! use citesys_storage::{Database, RelationSchema, tuple};
//!
//! let mut db = Database::new();
//! db.create_relation(RelationSchema::from_parts(
//!     "Family",
//!     &[("FID", ValueType::Int), ("FName", ValueType::Text), ("Desc", ValueType::Text)],
//!     &[0],
//! )).unwrap();
//! db.insert("Family", tuple![11, "Calcitonin", "C1"]).unwrap();
//!
//! let q = parse_query("Q(N) :- Family(F, N, D)").unwrap();
//! let answer = citesys_storage::evaluate(&db, &q).unwrap();
//! assert_eq!(answer.len(), 1);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod csv;
pub mod database;
pub mod delta;
pub mod durability;
pub mod error;
pub mod eval;
pub mod fixity;
pub mod relation;
pub mod schema;
pub mod tuple;
pub mod versioned;

pub use csv::{
    csv_header, csv_quote, from_csv, load_csv, parse_csv_header, parse_csv_record,
    render_csv_value, to_csv,
};
pub use database::{Database, SharedDatabase};
pub use delta::{Changeset, NetChanges};
pub use durability::{
    manifest_version, CheckpointData, DurabilityError, DurableStore, FileStore, MemStore, Recovery,
    Wal, WalRecord, ANCHORS_DIR, FORMAT_VERSION,
};
pub use error::StorageError;
pub use eval::{evaluate, explain, AnswerRow, Binding, PlanStep, QueryAnswer};
pub use fixity::{digest_answer, digest_database, sha256, Digest, Sha256};
pub use relation::Relation;
pub use schema::{Attribute, RelationSchema};
pub use tuple::Tuple;
pub use versioned::{Op, VersionedDatabase};

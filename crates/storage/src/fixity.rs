//! Fixity digests: SHA-256 over canonical serializations.
//!
//! One of the "core principles" of data citation the paper cites (§3,
//! FORCE-11 / CODATA) is **fixity**: a citation must be able to bring back
//! the data exactly as seen when cited. We support this with content
//! digests: a citation stores the SHA-256 of the canonically serialized
//! query answer, and re-executing the query against the cited snapshot must
//! reproduce the digest.
//!
//! SHA-256 is implemented in-tree (FIPS 180-4) because no hashing crate is
//! in the allowed dependency set; it is validated against the standard test
//! vectors below.

use citesys_cq::Value;

use crate::database::Database;
use crate::eval::QueryAnswer;
use crate::tuple::Tuple;

/// A 256-bit digest.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Digest(pub [u8; 32]);

impl Digest {
    /// Renders the digest as lowercase hex.
    pub fn to_hex(&self) -> String {
        let mut s = String::with_capacity(64);
        for b in self.0 {
            s.push_str(&format!("{b:02x}"));
        }
        s
    }

    /// Parses a 64-char hex string.
    pub fn from_hex(s: &str) -> Option<Digest> {
        if s.len() != 64 {
            return None;
        }
        let mut out = [0u8; 32];
        for (i, chunk) in s.as_bytes().chunks(2).enumerate() {
            let hi = (chunk[0] as char).to_digit(16)?;
            let lo = (chunk[1] as char).to_digit(16)?;
            out[i] = (hi * 16 + lo) as u8;
        }
        Some(Digest(out))
    }
}

impl std::fmt::Debug for Digest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sha256:{}", self.to_hex())
    }
}

impl std::fmt::Display for Digest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.to_hex())
    }
}

/// Incremental SHA-256 hasher (FIPS 180-4).
pub struct Sha256 {
    state: [u32; 8],
    buf: [u8; 64],
    buf_len: usize,
    total_len: u64,
}

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Sha256 {
            state: [
                0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab,
                0x5be0cd19,
            ],
            buf: [0; 64],
            buf_len: 0,
            total_len: 0,
        }
    }

    /// Feeds bytes into the hasher.
    pub fn update(&mut self, mut data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        if self.buf_len > 0 {
            let need = 64 - self.buf_len;
            let take = need.min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        while data.len() >= 64 {
            let (block, rest) = data.split_at(64);
            let mut b = [0u8; 64];
            b.copy_from_slice(block);
            self.compress(&b);
            data = rest;
        }
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    /// Finalizes and returns the digest.
    pub fn finalize(mut self) -> Digest {
        let bit_len = self.total_len.wrapping_mul(8);
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        // Length goes directly into the buffer (careful not to recount it).
        self.buf[56..64].copy_from_slice(&bit_len.to_be_bytes());
        let block = self.buf;
        self.compress(&block);
        let mut out = [0u8; 32];
        for (i, w) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&w.to_be_bytes());
        }
        Digest(out)
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

/// Hashes a byte slice in one shot.
pub fn sha256(data: &[u8]) -> Digest {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

// ---------------------------------------------------------------------------
// Canonical serialization
// ---------------------------------------------------------------------------

fn feed_value(h: &mut Sha256, v: &Value) {
    match v {
        Value::Int(i) => {
            h.update(b"i");
            h.update(&i.to_be_bytes());
        }
        Value::Text(s) => {
            h.update(b"t");
            h.update(&(s.as_str().len() as u64).to_be_bytes());
            h.update(s.as_str().as_bytes());
        }
        Value::Bool(b) => {
            h.update(if *b { b"B1" } else { b"B0" });
        }
    }
}

fn feed_tuple(h: &mut Sha256, t: &Tuple) {
    h.update(&(t.arity() as u64).to_be_bytes());
    for v in t.values() {
        feed_value(h, v);
    }
}

/// Digest of a query answer: the sorted set of output tuples. Bindings are
/// not part of the digest — fixity is about the *data returned*, not the
/// derivation.
pub fn digest_answer(a: &QueryAnswer) -> Digest {
    let mut h = Sha256::new();
    h.update(b"citesys-answer-v1");
    h.update(&(a.rows.len() as u64).to_be_bytes());
    for row in &a.rows {
        feed_tuple(&mut h, &row.tuple);
    }
    h.finalize()
}

/// Digest of an entire database: relations in name order, live tuples in
/// sorted order.
pub fn digest_database(db: &Database) -> Digest {
    let mut h = Sha256::new();
    h.update(b"citesys-db-v1");
    for (name, rel) in db.relations() {
        h.update(b"rel");
        h.update(&(name.as_str().len() as u64).to_be_bytes());
        h.update(name.as_str().as_bytes());
        let mut tuples: Vec<&Tuple> = rel.scan().collect();
        tuples.sort();
        h.update(&(tuples.len() as u64).to_be_bytes());
        for t in tuples {
            feed_tuple(&mut h, t);
        }
    }
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::RelationSchema;
    use crate::tuple;
    use citesys_cq::{parse_query, ValueType};

    #[test]
    fn fips_vector_empty() {
        assert_eq!(
            sha256(b"").to_hex(),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn fips_vector_abc() {
        assert_eq!(
            sha256(b"abc").to_hex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn fips_vector_448_bits() {
        assert_eq!(
            sha256(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq").to_hex(),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn fips_vector_million_a() {
        let mut h = Sha256::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(
            h.finalize().to_hex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn incremental_equals_oneshot() {
        let data = b"The quick brown fox jumps over the lazy dog";
        let mut h = Sha256::new();
        for b in data.iter() {
            h.update(std::slice::from_ref(b));
        }
        assert_eq!(h.finalize(), sha256(data));
    }

    #[test]
    fn hex_round_trip() {
        let d = sha256(b"abc");
        assert_eq!(Digest::from_hex(&d.to_hex()), Some(d));
        assert_eq!(Digest::from_hex("zz"), None);
        assert_eq!(Digest::from_hex(&"g".repeat(64)), None);
    }

    fn small_db() -> Database {
        let mut d = Database::new();
        d.create_relation(RelationSchema::from_parts(
            "R",
            &[("A", ValueType::Int), ("B", ValueType::Text)],
            &[],
        ))
        .unwrap();
        d.insert("R", tuple![1, "x"]).unwrap();
        d.insert("R", tuple![2, "y"]).unwrap();
        d
    }

    #[test]
    fn answer_digest_stable_and_sensitive() {
        let db = small_db();
        let q = parse_query("Q(A, B) :- R(A, B)").unwrap();
        let a1 = crate::eval::evaluate(&db, &q).unwrap();
        let d1 = digest_answer(&a1);
        // Same query, same data: same digest.
        let a2 = crate::eval::evaluate(&db, &q).unwrap();
        assert_eq!(d1, digest_answer(&a2));
        // Changed data: different digest.
        let mut db2 = small_db();
        db2.insert("R", tuple![3, "z"]).unwrap();
        let a3 = crate::eval::evaluate(&db2, &q).unwrap();
        assert_ne!(d1, digest_answer(&a3));
    }

    #[test]
    fn database_digest_insertion_order_invariant() {
        let mut d1 = Database::new();
        d1.create_relation(RelationSchema::from_parts(
            "R",
            &[("A", ValueType::Int)],
            &[],
        ))
        .unwrap();
        d1.insert("R", tuple![1]).unwrap();
        d1.insert("R", tuple![2]).unwrap();
        let mut d2 = Database::new();
        d2.create_relation(RelationSchema::from_parts(
            "R",
            &[("A", ValueType::Int)],
            &[],
        ))
        .unwrap();
        d2.insert("R", tuple![2]).unwrap();
        d2.insert("R", tuple![1]).unwrap();
        assert_eq!(digest_database(&d1), digest_database(&d2));
    }

    #[test]
    fn database_digest_separates_relations() {
        // Moving a tuple between relations must change the digest.
        let mk = |with_s: bool| {
            let mut d = Database::new();
            d.create_relation(RelationSchema::from_parts(
                "R",
                &[("A", ValueType::Int)],
                &[],
            ))
            .unwrap();
            d.create_relation(RelationSchema::from_parts(
                "S",
                &[("A", ValueType::Int)],
                &[],
            ))
            .unwrap();
            d.insert(if with_s { "S" } else { "R" }, tuple![1]).unwrap();
            d
        };
        assert_ne!(digest_database(&mk(false)), digest_database(&mk(true)));
    }

    #[test]
    fn value_encoding_unambiguous() {
        // Int 1 vs Text "1" vs Bool true must hash differently.
        let ints = sha256(b"i");
        let _ = ints;
        let mut h1 = Sha256::new();
        feed_value(&mut h1, &Value::Int(1));
        let mut h2 = Sha256::new();
        feed_value(&mut h2, &Value::text("1"));
        let mut h3 = Sha256::new();
        feed_value(&mut h3, &Value::Bool(true));
        let d1 = h1.finalize();
        let d2 = h2.finalize();
        let d3 = h3.finalize();
        assert_ne!(d1, d2);
        assert_ne!(d2, d3);
        assert_ne!(d1, d3);
    }
}

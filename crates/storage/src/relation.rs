//! A single stored relation: set semantics, tombstone deletes, and eager
//! per-column hash indexes used by the query evaluator.

use std::collections::HashMap;

use citesys_cq::Value;

use crate::error::StorageError;
use crate::schema::RelationSchema;
use crate::tuple::Tuple;

/// A stored relation.
///
/// * **Set semantics** — inserting a tuple that is already present is a
///   no-op (conjunctive-query semantics in the paper are set-based).
/// * **Tombstone deletes** — rows are marked dead rather than removed, so
///   row ids stay stable for the index posting lists; dead rows are
///   filtered on every read.
/// * **Eager per-column indexes** — every column gets a hash index
///   maintained on insert; the evaluator picks a bound column and probes.
#[derive(Clone, Debug)]
pub struct Relation {
    schema: RelationSchema,
    rows: Vec<Tuple>,
    live: Vec<bool>,
    live_count: usize,
    /// `indexes[c][v]` = ids of rows whose column `c` equals `v`
    /// (may include dead rows; filtered on read).
    indexes: Vec<HashMap<Value, Vec<usize>>>,
    /// Full-tuple lookup for set semantics and deletes.
    seen: HashMap<Tuple, usize>,
    /// Key projection → row id (live rows only), when a key is declared.
    key_index: HashMap<Tuple, usize>,
}

impl Relation {
    /// Creates an empty relation with the given schema.
    pub fn new(schema: RelationSchema) -> Self {
        let arity = schema.arity();
        Relation {
            schema,
            rows: Vec::new(),
            live: Vec::new(),
            live_count: 0,
            indexes: vec![HashMap::new(); arity],
            seen: HashMap::new(),
            key_index: HashMap::new(),
        }
    }

    /// The relation's schema.
    pub fn schema(&self) -> &RelationSchema {
        &self.schema
    }

    /// Number of live tuples.
    pub fn len(&self) -> usize {
        self.live_count
    }

    /// True when the relation holds no live tuples.
    pub fn is_empty(&self) -> bool {
        self.live_count == 0
    }

    /// Validates a tuple against the schema (arity and types).
    pub fn check(&self, t: &Tuple) -> Result<(), StorageError> {
        if t.arity() != self.schema.arity() {
            return Err(StorageError::ArityMismatch {
                relation: self.schema.name.to_string(),
                expected: self.schema.arity(),
                got: t.arity(),
            });
        }
        for (attr, v) in self.schema.attributes.iter().zip(t.values()) {
            if v.type_name() != attr.ty {
                return Err(StorageError::TypeMismatch {
                    relation: self.schema.name.to_string(),
                    attribute: attr.name.to_string(),
                    expected: attr.ty,
                    got: v.type_name(),
                });
            }
        }
        Ok(())
    }

    /// Inserts a tuple. Returns `Ok(true)` if the relation changed,
    /// `Ok(false)` if the tuple was already present (set semantics).
    /// Rejects tuples that violate the schema or the declared key.
    pub fn insert(&mut self, t: Tuple) -> Result<bool, StorageError> {
        self.check(&t)?;
        if let Some(&row) = self.seen.get(&t) {
            if self.live[row] {
                return Ok(false);
            }
            // Revive a tombstoned row (indexes still reference it).
            self.check_key_free(&t)?;
            self.live[row] = true;
            self.live_count += 1;
            if self.schema.has_key() {
                self.key_index.insert(t.project(&self.schema.key), row);
            }
            return Ok(true);
        }
        self.check_key_free(&t)?;
        let row = self.rows.len();
        for (c, v) in t.values().iter().enumerate() {
            self.indexes[c].entry(v.clone()).or_default().push(row);
        }
        if self.schema.has_key() {
            self.key_index.insert(t.project(&self.schema.key), row);
        }
        self.seen.insert(t.clone(), row);
        self.rows.push(t);
        self.live.push(true);
        self.live_count += 1;
        Ok(true)
    }

    /// Checks that `t`'s key is not taken by a different live tuple.
    fn check_key_free(&self, t: &Tuple) -> Result<(), StorageError> {
        if !self.schema.has_key() {
            return Ok(());
        }
        let key = t.project(&self.schema.key);
        if let Some(&row) = self.key_index.get(&key) {
            if self.live[row] && &self.rows[row] != t {
                return Err(StorageError::KeyViolation {
                    relation: self.schema.name.to_string(),
                    key: key.to_string(),
                });
            }
        }
        Ok(())
    }

    /// Deletes a tuple. Returns `true` if a live tuple was removed.
    pub fn delete(&mut self, t: &Tuple) -> bool {
        match self.seen.get(t) {
            Some(&row) if self.live[row] => {
                self.live[row] = false;
                self.live_count -= 1;
                if self.schema.has_key() {
                    self.key_index.remove(&t.project(&self.schema.key));
                }
                true
            }
            _ => false,
        }
    }

    /// True if the tuple is present (live).
    pub fn contains(&self, t: &Tuple) -> bool {
        self.seen.get(t).is_some_and(|&row| self.live[row])
    }

    /// Iterates over live tuples in insertion order.
    pub fn scan(&self) -> impl Iterator<Item = &Tuple> {
        self.rows
            .iter()
            .zip(&self.live)
            .filter_map(|(t, &alive)| alive.then_some(t))
    }

    /// Live tuples whose column `col` equals `v`, via the hash index.
    pub fn lookup(&self, col: usize, v: &Value) -> impl Iterator<Item = &Tuple> {
        self.indexes
            .get(col)
            .and_then(|ix| ix.get(v))
            .map(|rows| rows.as_slice())
            .unwrap_or(&[])
            .iter()
            .filter(|&&row| self.live[row])
            .map(|&row| &self.rows[row])
    }

    /// Number of index entries for value `v` in column `col` — an upper
    /// bound on matching live tuples, used for join-order selectivity.
    pub fn posting_len(&self, col: usize, v: &Value) -> usize {
        self.indexes
            .get(col)
            .and_then(|ix| ix.get(v))
            .map_or(0, Vec::len)
    }

    /// Number of distinct values in column `col` among live tuples.
    ///
    /// Used by the citation engine's size estimate: a view parameterized
    /// on this column yields exactly one citation per distinct value.
    pub fn distinct_count(&self, col: usize) -> usize {
        self.indexes.get(col).map_or(0, |ix| {
            ix.iter()
                .filter(|(_, rows)| rows.iter().any(|&r| self.live[r]))
                .count()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;
    use citesys_cq::ValueType;

    fn family_rel() -> Relation {
        Relation::new(RelationSchema::from_parts(
            "Family",
            &[
                ("FID", ValueType::Int),
                ("FName", ValueType::Text),
                ("Desc", ValueType::Text),
            ],
            &[0],
        ))
    }

    #[test]
    fn insert_scan_roundtrip() {
        let mut r = family_rel();
        assert!(r.insert(tuple![11, "Calcitonin", "C1"]).unwrap());
        assert!(r.insert(tuple![12, "Calcitonin", "C2"]).unwrap());
        assert_eq!(r.len(), 2);
        let names: Vec<&Tuple> = r.scan().collect();
        assert_eq!(names.len(), 2);
    }

    #[test]
    fn set_semantics_dedupes() {
        let mut r = family_rel();
        assert!(r.insert(tuple![11, "Calcitonin", "C1"]).unwrap());
        assert!(!r.insert(tuple![11, "Calcitonin", "C1"]).unwrap());
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn key_violation_detected() {
        let mut r = family_rel();
        r.insert(tuple![11, "Calcitonin", "C1"]).unwrap();
        let e = r.insert(tuple![11, "Other", "C9"]).unwrap_err();
        assert!(matches!(e, StorageError::KeyViolation { .. }));
    }

    #[test]
    fn type_mismatch_detected() {
        let mut r = family_rel();
        let e = r.insert(tuple!["x", "y", "z"]).unwrap_err();
        assert!(matches!(e, StorageError::TypeMismatch { .. }));
    }

    #[test]
    fn arity_mismatch_detected() {
        let mut r = family_rel();
        let e = r.insert(tuple![1, "a"]).unwrap_err();
        assert!(matches!(e, StorageError::ArityMismatch { .. }));
    }

    #[test]
    fn delete_and_revive() {
        let mut r = family_rel();
        let t = tuple![11, "Calcitonin", "C1"];
        r.insert(t.clone()).unwrap();
        assert!(r.delete(&t));
        assert!(!r.contains(&t));
        assert_eq!(r.len(), 0);
        assert!(!r.delete(&t), "double delete is a no-op");
        // Revival reuses the row id and the key slot.
        assert!(r.insert(t.clone()).unwrap());
        assert!(r.contains(&t));
        assert_eq!(r.len(), 1);
        assert_eq!(r.lookup(0, &Value::Int(11)).count(), 1);
    }

    #[test]
    fn delete_frees_key() {
        let mut r = family_rel();
        r.insert(tuple![11, "Calcitonin", "C1"]).unwrap();
        r.delete(&tuple![11, "Calcitonin", "C1"]);
        // Key 11 is free again.
        r.insert(tuple![11, "Other", "C9"]).unwrap();
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn index_lookup_filters_dead_rows() {
        let mut r = family_rel();
        r.insert(tuple![11, "Calcitonin", "C1"]).unwrap();
        r.insert(tuple![12, "Calcitonin", "C2"]).unwrap();
        r.delete(&tuple![11, "Calcitonin", "C1"]);
        let hits: Vec<&Tuple> = r.lookup(1, &Value::text("Calcitonin")).collect();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].get(0), Some(&Value::Int(12)));
    }

    #[test]
    fn posting_len_upper_bounds() {
        let mut r = family_rel();
        r.insert(tuple![11, "Calcitonin", "C1"]).unwrap();
        r.insert(tuple![12, "Calcitonin", "C2"]).unwrap();
        assert_eq!(r.posting_len(1, &Value::text("Calcitonin")), 2);
        assert_eq!(r.posting_len(1, &Value::text("Nope")), 0);
    }

    #[test]
    fn distinct_counts_respect_tombstones() {
        let mut r = family_rel();
        r.insert(tuple![11, "Calcitonin", "C1"]).unwrap();
        r.insert(tuple![12, "Calcitonin", "C2"]).unwrap();
        r.insert(tuple![13, "Dopamine", "D1"]).unwrap();
        assert_eq!(r.distinct_count(0), 3);
        assert_eq!(r.distinct_count(1), 2);
        r.delete(&tuple![13, "Dopamine", "D1"]);
        assert_eq!(r.distinct_count(1), 1);
        assert_eq!(r.distinct_count(9), 0, "out-of-range column");
    }
}

//! The durability layer: one versioned on-disk API for everything the
//! system must bring back after a restart.
//!
//! Before this module, persistence was an ad-hoc scatter — plan caches
//! had their own text format, data loaded from CSV with no write path,
//! and materialized views evaporated on exit. The paper's premise (a
//! citation must keep resolving against a **persistent, versioned**
//! database) demands better. This module defines the common substrate:
//!
//! * a [`DurableStore`] trait — the contract every backend (the default
//!   [`FileStore`], an in-memory [`MemStore`] for tests, and future
//!   sharded/replicated backends) implements: log changesets, write
//!   checkpoints, recover;
//! * a **write-ahead log** ([`Wal`]) of [`Changeset`]s: every committed
//!   transaction is appended and fsynced *before* the commit is
//!   acknowledged, and replayed on open. A torn final record (the
//!   classic crash-mid-write) is detected and truncated cleanly; a
//!   damaged record in the *middle* of the log — which a torn write
//!   cannot produce — is reported as corruption instead of silently
//!   dropping acknowledged commits;
//! * **checkpoints**: a manifest ([`CheckpointData`]) of named text
//!   sections (database, registry, materialized views, plan cache), each
//!   content-digested with SHA-256, written atomically (temp files +
//!   manifest rename) and gated by a format version so a newer on-disk
//!   layout fails loudly instead of mis-parsing.
//!
//! Text codecs for the storage-owned types live here too:
//! [`Changeset::to_text`]/[`Changeset::from_text`] (shared by the WAL
//! and the `citesys wal dump` debug command) and
//! [`database_to_text`]/[`database_from_text`] (shared by the database
//! and materialized-view checkpoint sections). All of them tolerate
//! CRLF line endings and trailing blank lines, matching
//! `RewritePlan::from_text`.

use std::collections::BTreeMap;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{self, Read as _, Seek as _, SeekFrom, Write as _};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use citesys_cq::{Value, ValueType};

use crate::database::Database;
use crate::delta::Changeset;
use crate::fixity::{sha256, Digest};
use crate::schema::{Attribute, RelationSchema};
use crate::tuple::Tuple;
use crate::versioned::{Op, VersionedDatabase};

/// The on-disk format version this build reads and writes. Bump it when
/// any file layout changes incompatibly; older builds then refuse the
/// directory with [`DurabilityError::FormatVersion`] instead of
/// guessing.
pub const FORMAT_VERSION: u32 = 1;

/// Name of the manifest file inside a durable directory.
pub const MANIFEST_FILE: &str = "manifest";

/// Name of the write-ahead log file inside a durable directory.
pub const WAL_FILE: &str = "wal.log";

/// Name of the directory (inside a durable directory) holding retained
/// superseded checkpoints — the time-travel anchors.
pub const ANCHORS_DIR: &str = "anchors";

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// What can go wrong opening, reading or writing durable state.
#[derive(Debug)]
pub enum DurabilityError {
    /// An underlying filesystem operation failed.
    Io {
        /// The file or directory involved.
        path: PathBuf,
        /// The OS error.
        source: io::Error,
    },
    /// On-disk content is structurally damaged (not a torn tail).
    Corrupt {
        /// The file involved.
        path: PathBuf,
        /// What was wrong.
        message: String,
    },
    /// The directory was written by an incompatible format version.
    FormatVersion {
        /// Version found on disk.
        found: u32,
        /// Version this build supports.
        supported: u32,
    },
}

impl fmt::Display for DurabilityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DurabilityError::Io { path, source } => {
                write!(f, "{}: {source}", path.display())
            }
            DurabilityError::Corrupt { path, message } => {
                write!(f, "{}: corrupt durable state: {message}", path.display())
            }
            DurabilityError::FormatVersion { found, supported } => write!(
                f,
                "durable format v{found} is not supported (this build reads v{supported})"
            ),
        }
    }
}

impl std::error::Error for DurabilityError {}

fn io_err(path: impl Into<PathBuf>) -> impl FnOnce(io::Error) -> DurabilityError {
    let path = path.into();
    move |source| DurabilityError::Io { path, source }
}

fn corrupt(path: impl Into<PathBuf>, message: impl Into<String>) -> DurabilityError {
    DurabilityError::Corrupt {
        path: path.into(),
        message: message.into(),
    }
}

/// Fsyncs the directory containing `path`, making renames and file
/// creations inside it durable (file-data syncs alone do not order
/// against directory-entry updates). No-op on platforms where
/// directories cannot be opened for syncing.
fn sync_parent_dir(path: &Path) -> Result<(), DurabilityError> {
    #[cfg(unix)]
    if let Some(dir) = path.parent() {
        let d = File::open(dir).map_err(io_err(dir))?;
        d.sync_all().map_err(io_err(dir))?;
    }
    #[cfg(not(unix))]
    let _ = path;
    Ok(())
}

// ---------------------------------------------------------------------------
// Ground-atom text codec (shared by the WAL and checkpoint sections)
// ---------------------------------------------------------------------------

/// Trims one trailing carriage return (CRLF tolerance, mirroring
/// `citesys_rewrite::trim_cr`).
fn trim_cr(line: &str) -> &str {
    line.strip_suffix('\r').unwrap_or(line)
}

/// Renders `rel(v1, v2, …)` so that [`parse_ground_atom`] reads it back
/// exactly: text is always single-quoted with `\` escapes, so values
/// containing commas, quotes or `#` round-trip. Newlines and carriage
/// returns are escaped as `\n`/`\r` — unlike the surface parser, the
/// store can hold them (CSV bulk loads accept embedded newlines), and
/// a raw newline would break every line-oriented durable format.
pub fn format_ground_atom(rel: &str, t: &Tuple) -> String {
    let mut out = String::from(rel);
    out.push('(');
    for (i, v) in t.values().iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        match v {
            Value::Int(n) => out.push_str(&n.to_string()),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Text(s) => {
                out.push('\'');
                for c in s.as_str().chars() {
                    match c {
                        '\'' | '\\' => {
                            out.push('\\');
                            out.push(c);
                        }
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        other => out.push(other),
                    }
                }
                out.push('\'');
            }
        }
    }
    out.push(')');
    out
}

/// Parses `Rel(v1, v2, …)` with int / quoted-text / bool values — the
/// persistence twin of the wire protocol's ground-atom parser.
pub fn parse_ground_atom(input: &str) -> Result<(String, Tuple), String> {
    let (name, after) = input
        .split_once('(')
        .ok_or_else(|| format!("expected Rel(values…), got '{input}'"))?;
    let inner = after
        .trim_end()
        .strip_suffix(')')
        .ok_or_else(|| format!("missing ')' in '{input}'"))?;
    let mut values = Vec::new();
    let mut rest = inner.trim();
    while !rest.is_empty() {
        let (v, remainder) = parse_value(rest)?;
        values.push(v);
        rest = remainder.trim_start();
        if let Some(r) = rest.strip_prefix(',') {
            rest = r.trim_start();
        } else if !rest.is_empty() {
            return Err(format!("expected ',' before '{rest}'"));
        }
    }
    Ok((name.trim().to_string(), Tuple::new(values)))
}

fn parse_value(input: &str) -> Result<(Value, &str), String> {
    let input = input.trim_start();
    if let Some(rest) = input.strip_prefix('\'') {
        let mut out = String::new();
        let mut chars = rest.char_indices();
        while let Some((i, c)) = chars.next() {
            match c {
                '\\' => {
                    if let Some((_, n)) = chars.next() {
                        out.push(match n {
                            'n' => '\n',
                            'r' => '\r',
                            other => other,
                        });
                    }
                }
                '\'' => return Ok((Value::from(out), &rest[i + 1..])),
                other => out.push(other),
            }
        }
        Err("unterminated string".into())
    } else if let Some(rest) = input.strip_prefix("true") {
        Ok((Value::Bool(true), rest))
    } else if let Some(rest) = input.strip_prefix("false") {
        Ok((Value::Bool(false), rest))
    } else {
        let end = input
            .find(|c: char| c == ',' || c.is_whitespace())
            .unwrap_or(input.len());
        let n: i64 = input[..end]
            .parse()
            .map_err(|_| format!("bad value '{}'", &input[..end]))?;
        Ok((Value::Int(n), &input[end..]))
    }
}

fn format_op(op: &Op) -> String {
    match op {
        Op::Insert(rel, t) => format!("i {}", format_ground_atom(rel.as_str(), t)),
        Op::Delete(rel, t) => format!("d {}", format_ground_atom(rel.as_str(), t)),
    }
}

fn parse_op(line: &str) -> Result<Op, String> {
    let (tag, rest) = line
        .split_once(' ')
        .ok_or_else(|| format!("bad op line '{line}'"))?;
    let (rel, t) = parse_ground_atom(rest)?;
    match tag {
        "i" => Ok(Op::Insert(citesys_cq::Symbol::new(rel), t)),
        "d" => Ok(Op::Delete(citesys_cq::Symbol::new(rel), t)),
        other => Err(format!("unknown op tag '{other}'")),
    }
}

impl Changeset {
    /// Serializes the changeset to a line-oriented text form shared by
    /// the WAL and the `citesys wal dump` debug command.
    pub fn to_text(&self) -> String {
        let mut out = String::from("citesys-changeset v1\n");
        for op in self.ops() {
            out.push_str(&format_op(op));
            out.push('\n');
        }
        out
    }

    /// Parses text produced by [`to_text`](Self::to_text). Tolerant of
    /// CRLF line endings and trailing blank lines, like
    /// `RewritePlan::from_text`.
    pub fn from_text(text: &str) -> Result<Changeset, String> {
        let mut lines = text.lines().map(trim_cr);
        match lines.next() {
            Some("citesys-changeset v1") => {}
            other => return Err(format!("bad changeset header: {other:?}")),
        }
        let mut ops = Vec::new();
        for line in lines {
            if line.trim().is_empty() {
                continue;
            }
            ops.push(parse_op(line)?);
        }
        Ok(Changeset::from_ops(ops))
    }
}

// ---------------------------------------------------------------------------
// Database text codec (checkpoint sections)
// ---------------------------------------------------------------------------

fn format_schema(s: &RelationSchema) -> String {
    let mut out = format!("schema {}(", s.name);
    for (i, a) in s.attributes.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("{}:{}", a.name, a.ty));
    }
    out.push(')');
    if !s.key.is_empty() {
        out.push_str(" key(");
        for (i, k) in s.key.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&k.to_string());
        }
        out.push(')');
    }
    out
}

fn parse_schema(rest: &str) -> Result<RelationSchema, String> {
    let (name, after) = rest
        .split_once('(')
        .ok_or_else(|| format!("expected Name(attr:type, …), got '{rest}'"))?;
    let (attrs_str, tail) = after
        .split_once(')')
        .ok_or_else(|| format!("missing ')' in '{rest}'"))?;
    let mut attrs = Vec::new();
    for part in attrs_str.split(',') {
        let (n, t) = part
            .trim()
            .split_once(':')
            .ok_or_else(|| format!("attribute '{part}' lacks ':type'"))?;
        let ty = match t.trim() {
            "int" => ValueType::Int,
            "text" => ValueType::Text,
            "bool" => ValueType::Bool,
            other => return Err(format!("unknown type '{other}'")),
        };
        attrs.push(Attribute::new(n.trim(), ty));
    }
    let mut key = Vec::new();
    let tail = tail.trim();
    if let Some(k) = tail.strip_prefix("key(") {
        let inner = k
            .strip_suffix(')')
            .ok_or_else(|| format!("missing ')' in key of '{rest}'"))?;
        for idx in inner.split(',') {
            let i: usize = idx
                .trim()
                .parse()
                .map_err(|_| format!("bad key position '{idx}'"))?;
            if i >= attrs.len() {
                return Err(format!("key position {i} out of range"));
            }
            key.push(i);
        }
    } else if !tail.is_empty() {
        return Err(format!("unexpected trailing input: '{tail}'"));
    }
    Ok(RelationSchema::new(name.trim(), attrs, key))
}

/// Serializes a database — schemas and tuples — to the line-oriented
/// text form [`database_from_text`] reads back. Used for both the base
/// database and the materialized-view checkpoint sections.
pub fn database_to_text(db: &Database) -> String {
    let mut out = String::from("citesys-database v1\n");
    for (_, rel) in db.relations() {
        out.push_str(&format_schema(rel.schema()));
        out.push('\n');
    }
    for (name, rel) in db.relations() {
        for t in rel.scan() {
            out.push_str("t ");
            out.push_str(&format_ground_atom(name.as_str(), t));
            out.push('\n');
        }
    }
    out
}

/// Parses text produced by [`database_to_text`]. CRLF/trailing-blank
/// tolerant.
pub fn database_from_text(text: &str) -> Result<Database, String> {
    let mut lines = text.lines().map(trim_cr);
    match lines.next() {
        Some("citesys-database v1") => {}
        other => return Err(format!("bad database header: {other:?}")),
    }
    let mut db = Database::new();
    for line in lines {
        if line.trim().is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("schema ") {
            db.create_relation(parse_schema(rest)?)
                .map_err(|e| e.to_string())?;
        } else if let Some(rest) = line.strip_prefix("t ") {
            let (rel, t) = parse_ground_atom(rest)?;
            db.insert(&rel, t).map_err(|e| e.to_string())?;
        } else {
            return Err(format!("unexpected database line '{line}'"));
        }
    }
    Ok(db)
}

/// Serializes a versioned store's **committed** state (pending ops are
/// deliberately excluded: a checkpoint covers acknowledged commits only)
/// plus its version number.
pub fn versioned_to_text(store: &VersionedDatabase) -> Result<String, String> {
    let version = store.latest_version();
    let snapshot = store.snapshot(version).map_err(|e| e.to_string())?;
    let mut out = format!("citesys-versioned v1\nversion {version}\n");
    // Schemas come from the store, not the snapshot: they are the
    // creation-order source of truth (and cover relations the snapshot
    // may render empty).
    for s in store.schemas() {
        out.push_str(&format_schema(s));
        out.push('\n');
    }
    for (name, rel) in snapshot.relations() {
        for t in rel.scan() {
            out.push_str("t ");
            out.push_str(&format_ground_atom(name.as_str(), t));
            out.push('\n');
        }
    }
    Ok(out)
}

/// Parses text produced by [`versioned_to_text`] into a warm-restarted
/// [`VersionedDatabase`]: the checkpointed state becomes the store's
/// base version (history before it is compacted away).
pub fn versioned_from_text(text: &str) -> Result<VersionedDatabase, String> {
    let mut lines = text.lines().map(trim_cr);
    match lines.next() {
        Some("citesys-versioned v1") => {}
        other => return Err(format!("bad versioned header: {other:?}")),
    }
    let version: u64 = lines
        .next()
        .and_then(|l| l.strip_prefix("version "))
        .ok_or_else(|| "missing version line".to_string())?
        .trim()
        .parse()
        .map_err(|_| "bad version number".to_string())?;
    let mut schemas = Vec::new();
    let mut tuples: Vec<(String, Tuple)> = Vec::new();
    for line in lines {
        if line.trim().is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("schema ") {
            schemas.push(parse_schema(rest)?);
        } else if let Some(rest) = line.strip_prefix("t ") {
            tuples.push(parse_ground_atom(rest)?);
        } else {
            return Err(format!("unexpected versioned line '{line}'"));
        }
    }
    let mut base = Database::new();
    for s in &schemas {
        base.create_relation(s.clone()).map_err(|e| e.to_string())?;
    }
    for (rel, t) in tuples {
        base.insert(&rel, t).map_err(|e| e.to_string())?;
    }
    VersionedDatabase::restore(schemas, base, version).map_err(|e| e.to_string())
}

// ---------------------------------------------------------------------------
// Checkpoint data
// ---------------------------------------------------------------------------

/// One checkpoint: the database version it covers plus named text
/// sections (database, registry, views, plans — higher layers choose the
/// names and payloads; the storage layer stores and digests them).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct CheckpointData {
    /// The committed version this checkpoint captures.
    pub version: u64,
    /// `(name, payload)` pairs in write order.
    pub sections: Vec<(String, String)>,
}

impl CheckpointData {
    /// The payload of a named section, if present.
    pub fn section(&self, name: &str) -> Option<&str> {
        self.sections
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, s)| s.as_str())
    }
}

/// One replayed write-ahead-log record: the version a commit sealed and
/// the changeset it applied.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct WalRecord {
    /// The version the commit produced.
    pub version: u64,
    /// The ops the commit applied.
    pub changes: Changeset,
}

/// Everything a backend recovered at open time.
#[derive(Debug, Default)]
pub struct Recovery {
    /// The newest checkpoint, if one was ever written.
    pub checkpoint: Option<CheckpointData>,
    /// WAL records appended after that checkpoint, in commit order.
    pub wal: Vec<WalRecord>,
    /// True when a torn final WAL record was truncated during open.
    pub wal_truncated: bool,
}

// ---------------------------------------------------------------------------
// The trait
// ---------------------------------------------------------------------------

/// The contract between the citation system and a durability backend.
///
/// The protocol is the classic WAL + checkpoint pair:
///
/// 1. every committed changeset is passed to
///    [`log_changeset`](Self::log_changeset) **before** the commit is
///    acknowledged (the backend must make it durable — fsync for files —
///    before returning);
/// 2. [`checkpoint`](Self::checkpoint) atomically replaces the stored
///    snapshot and resets the log (records up to the checkpoint version
///    are superseded);
/// 3. [`take_recovery`](Self::take_recovery) yields the newest
///    checkpoint plus the logged records after it, exactly once, at
///    open time.
pub trait DurableStore {
    /// Durably appends one committed changeset. Must not return until
    /// the record would survive a crash.
    fn log_changeset(&mut self, version: u64, changes: &Changeset) -> Result<(), DurabilityError>;

    /// Atomically replaces the checkpoint and resets the log.
    fn checkpoint(&mut self, data: &CheckpointData) -> Result<(), DurabilityError>;

    /// The state recovered at open time (consumed; later calls return an
    /// empty recovery).
    fn take_recovery(&mut self) -> Recovery;

    /// Number of log records appended since the last checkpoint
    /// (including recovered ones).
    fn wal_records(&self) -> usize;

    /// The oldest version reconstructable from this backend's retained
    /// checkpoints (anchors plus the live one) — the floor of the
    /// `@ version` range the durable state can serve. `None` when no
    /// checkpoint was ever written.
    fn history_floor(&self) -> Option<u64> {
        None
    }

    /// How many checkpoints the backend currently retains (the live one
    /// plus any superseded anchors kept by the retention policy).
    fn checkpoints_retained(&self) -> usize {
        0
    }

    /// The nearest retained checkpoint at or below `version`, plus the
    /// logged records needed to roll it forward to exactly `version`
    /// (records with `checkpoint.version < v <= version`, in commit
    /// order). `Ok(None)` when no retained checkpoint covers `version`
    /// — the caller reports the history as compacted.
    fn checkpoint_at(
        &self,
        _version: u64,
    ) -> Result<Option<(CheckpointData, Vec<WalRecord>)>, DurabilityError> {
        Ok(None)
    }

    /// Drops retained anchors no longer needed to serve versions at or
    /// above `floor` (the greatest anchor at or below `floor` is kept —
    /// it is the replay base for `floor` itself). Returns how many
    /// anchors were pruned.
    fn prune_history(&mut self, _floor: u64) -> Result<usize, DurabilityError> {
        Ok(0)
    }

    /// The on-disk directory this backend persists into, when it has
    /// one — the anchor for sibling files like the dataset manifest.
    /// `None` for purely in-memory backends.
    fn data_dir(&self) -> Option<&Path> {
        None
    }
}

// ---------------------------------------------------------------------------
// The write-ahead log
// ---------------------------------------------------------------------------

/// Append-only, fsynced log of committed changesets.
///
/// File layout (line-oriented):
///
/// ```text
/// citesys-wal v1
/// record <version> <n-ops>
/// i Family(11, 'Calcitonin')
/// d Family(12, 'X')
/// end <version>
/// ```
///
/// The `end <version>` trailer is the commit marker: a record without it
/// (a crash mid-append) is a **torn tail** and is truncated on open. A
/// structurally damaged record *followed by* another complete record
/// cannot be produced by a torn write and is reported as corruption.
#[derive(Debug)]
pub struct Wal {
    path: PathBuf,
    file: File,
    records: usize,
}

impl Wal {
    const HEADER: &'static str = "citesys-wal v1";

    /// Opens (creating if needed) the log at `path`, replaying existing
    /// records. Returns the log handle, the replayed records, and
    /// whether a torn final record was truncated.
    pub fn open(path: impl Into<PathBuf>) -> Result<(Wal, Vec<WalRecord>, bool), DurabilityError> {
        let path = path.into();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)
            .map_err(io_err(&path))?;
        let mut text = String::new();
        file.read_to_string(&mut text).map_err(io_err(&path))?;
        if text.is_empty() {
            writeln!(file, "{}", Self::HEADER).map_err(io_err(&path))?;
            file.sync_data().map_err(io_err(&path))?;
            // The log file's directory entry must survive a crash too.
            sync_parent_dir(&path)?;
            return Ok((
                Wal {
                    path,
                    file,
                    records: 0,
                },
                Vec::new(),
                false,
            ));
        }
        let (records, good_bytes, truncated) = Self::parse(&path, &text)?;
        if truncated {
            file.set_len(good_bytes as u64).map_err(io_err(&path))?;
            file.sync_data().map_err(io_err(&path))?;
        }
        file.seek(SeekFrom::End(0)).map_err(io_err(&path))?;
        let n = records.len();
        Ok((
            Wal {
                path,
                file,
                records: n,
            },
            records,
            truncated,
        ))
    }

    /// Parses the log text, returning the complete records, the byte
    /// length of the well-formed prefix, and whether a torn tail was
    /// dropped. A damaged record that is *not* the final one is
    /// corruption, not tearing.
    fn parse(path: &Path, text: &str) -> Result<(Vec<WalRecord>, usize, bool), DurabilityError> {
        Self::parse_after(path, text, 0)
    }

    /// [`parse`](Self::parse) with a version floor: records with
    /// `version <= after` are structurally validated (line counts and
    /// `end` trailers still guard torn-tail detection) but their op
    /// lines are skipped without parsing or materializing changesets,
    /// so tailing a long log for its suffix stays cheap.
    fn parse_after(
        path: &Path,
        text: &str,
        after: u64,
    ) -> Result<(Vec<WalRecord>, usize, bool), DurabilityError> {
        // Walk lines keeping byte offsets so a torn tail can be cut at
        // the exact end of the last complete record.
        let mut offset = 0usize;
        let mut lines = Vec::new(); // (start_offset, line)
        for line in text.split_inclusive('\n') {
            lines.push((offset, trim_cr(line.trim_end_matches('\n'))));
            offset += line.len();
        }
        let mut it = lines.iter().peekable();
        match it.next() {
            Some((_, l)) if *l == Self::HEADER => {}
            Some((_, l)) if l.starts_with("citesys-wal v") => {
                let found: u32 = l
                    .trim_start_matches("citesys-wal v")
                    .trim()
                    .parse()
                    .unwrap_or(0);
                return Err(DurabilityError::FormatVersion {
                    found,
                    supported: FORMAT_VERSION,
                });
            }
            other => {
                return Err(corrupt(
                    path,
                    format!("bad WAL header: {:?}", other.map(|(_, l)| *l)),
                ))
            }
        }
        let mut records = Vec::new();
        let mut good_bytes = text.len();
        let mut torn_at: Option<usize> = None;
        'records: while let Some(&&(start, line)) = it.peek() {
            if line.trim().is_empty() {
                it.next();
                continue;
            }
            let header = match line
                .strip_prefix("record ")
                .and_then(|r| r.split_once(' '))
                .and_then(|(v, n)| Some((v.parse::<u64>().ok()?, n.parse::<usize>().ok()?)))
            {
                Some(h) => h,
                None => {
                    torn_at = Some(start);
                    break 'records;
                }
            };
            it.next();
            let (version, n_ops) = header;
            let keep = version > after;
            let mut ops = Vec::with_capacity(if keep { n_ops } else { 0 });
            for _ in 0..n_ops {
                match it.next() {
                    Some((_, op_line)) if !keep => {
                        // Skipped record: walk its lines for structure
                        // only. An op line can never start with "end ",
                        // so a short record still tears at the trailer
                        // check below.
                        let _ = op_line;
                    }
                    Some((_, op_line)) => match parse_op(op_line) {
                        Ok(op) => ops.push(op),
                        Err(_) => {
                            torn_at = Some(start);
                            break 'records;
                        }
                    },
                    None => {
                        torn_at = Some(start);
                        break 'records;
                    }
                }
            }
            match it.next() {
                Some((end_start, end_line)) if *end_line == format!("end {version}") => {
                    good_bytes = end_start + end_line.len() + 1; // + '\n'
                    if keep {
                        records.push(WalRecord {
                            version,
                            changes: Changeset::from_ops(ops),
                        });
                    }
                }
                _ => {
                    torn_at = Some(start);
                    break 'records;
                }
            }
        }
        let Some(torn_at) = torn_at else {
            return Ok((records, good_bytes.min(text.len()), false));
        };
        // Tearing can only damage the tail: if a *complete* record
        // trailer appears after the damage, acknowledged commits would
        // be silently dropped — refuse instead.
        let remainder = &text[torn_at..];
        if remainder
            .lines()
            .map(trim_cr)
            .skip(1)
            .any(|l| l.starts_with("end "))
        {
            return Err(corrupt(
                path,
                format!("damaged record before intact ones (byte {torn_at})"),
            ));
        }
        Ok((records, good_bytes.min(torn_at), true))
    }

    /// Appends one record and syncs it to stable storage. Returns only
    /// once the record would survive a crash.
    pub fn append(&mut self, version: u64, changes: &Changeset) -> Result<(), DurabilityError> {
        let mut buf = format!("record {version} {}\n", changes.len());
        for op in changes.ops() {
            buf.push_str(&format_op(op));
            buf.push('\n');
        }
        buf.push_str(&format!("end {version}\n"));
        self.file
            .write_all(buf.as_bytes())
            .map_err(io_err(&self.path))?;
        self.file.sync_data().map_err(io_err(&self.path))?;
        self.records += 1;
        Ok(())
    }

    /// Resets the log to just its header (called after a checkpoint
    /// supersedes the records).
    pub fn reset(&mut self) -> Result<(), DurabilityError> {
        self.file.set_len(0).map_err(io_err(&self.path))?;
        self.file
            .seek(SeekFrom::Start(0))
            .map_err(io_err(&self.path))?;
        writeln!(self.file, "{}", Self::HEADER).map_err(io_err(&self.path))?;
        self.file.sync_data().map_err(io_err(&self.path))?;
        self.records = 0;
        Ok(())
    }

    /// Records appended (or recovered) since the last reset.
    pub fn records(&self) -> usize {
        self.records
    }

    /// The log's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// **Read-only** inspection of a log file (`citesys wal dump`):
    /// parses the records and reports a torn tail without creating,
    /// truncating or otherwise touching the file — safe to run against
    /// a live server's log. Returns the complete records and whether a
    /// torn final record was detected (and left in place).
    pub fn read(path: impl AsRef<Path>) -> Result<(Vec<WalRecord>, bool), DurabilityError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path).map_err(io_err(path))?;
        if text.is_empty() {
            return Ok((Vec::new(), false));
        }
        let (records, _, truncated) = Self::parse(path, &text)?;
        Ok((records, truncated))
    }

    /// [`read`](Self::read) restricted to records **after** a version:
    /// returns only records with `version > after_version`, skipping the
    /// op-parse (and changeset materialization) for everything at or
    /// below the floor. Torn-tail detection is unchanged — earlier
    /// records are still walked structurally. This backs replication
    /// tailing and `citesys wal dump --since <v>`.
    pub fn read_from(
        path: impl AsRef<Path>,
        after_version: u64,
    ) -> Result<(Vec<WalRecord>, bool), DurabilityError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path).map_err(io_err(path))?;
        if text.is_empty() {
            return Ok((Vec::new(), false));
        }
        let (records, _, truncated) = Self::parse_after(path, &text, after_version)?;
        Ok((records, truncated))
    }
}

// ---------------------------------------------------------------------------
// The default file backend
// ---------------------------------------------------------------------------

/// The default [`DurableStore`]: one directory holding a manifest, one
/// file per checkpoint section, and the WAL.
///
/// ```text
/// data/
///   manifest          citesys-durable v1 / version / section lines
///   database.section  ← one file per manifest section, SHA-256 digested
///   registry.section
///   …
///   wal.log
/// ```
///
/// Checkpoints are atomic: sections are written to `*.tmp` files and
/// renamed, the manifest is written last (also via rename), and only
/// then is the WAL reset — a crash at any point leaves either the old
/// or the new checkpoint fully intact.
#[derive(Debug)]
pub struct FileStore {
    dir: PathBuf,
    wal: Wal,
    recovery: Option<Recovery>,
    /// How many superseded checkpoints to keep as time-travel anchors.
    retain_anchors: usize,
    /// Version of the live checkpoint (the manifest), if one exists.
    ckpt_version: Option<u64>,
    /// Versions of retained anchors, ascending.
    anchors: Vec<u64>,
}

impl FileStore {
    /// Opens (creating if needed) the durable directory, verifying the
    /// format version and section digests and replaying the WAL. No
    /// superseded checkpoints are retained; see
    /// [`open_with_retention`](Self::open_with_retention).
    pub fn open(dir: impl Into<PathBuf>) -> Result<FileStore, DurabilityError> {
        Self::open_with_retention(dir, 0)
    }

    /// [`open`](Self::open) with a retention policy: each checkpoint
    /// archives the one it supersedes (manifest, sections, and the WAL
    /// segment it covered) under `anchors/<version>/`, keeping the
    /// newest `retain` anchors as time-travel replay bases. Anchors
    /// already on disk are available regardless of `retain` — the
    /// policy bounds future growth, it does not trim on open.
    pub fn open_with_retention(
        dir: impl Into<PathBuf>,
        retain: usize,
    ) -> Result<FileStore, DurabilityError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir).map_err(io_err(&dir))?;
        let checkpoint = Self::read_manifest(&dir)?;
        let (wal, records, truncated) = Wal::open(dir.join(WAL_FILE))?;
        // Records at or below the checkpoint version were superseded by
        // the checkpoint (e.g. a crash between manifest rename and WAL
        // reset); drop them from the replay.
        let floor = checkpoint.as_ref().map(|c| c.version).unwrap_or(0);
        let wal_records = records.into_iter().filter(|r| r.version > floor).collect();
        let ckpt_version = checkpoint.as_ref().map(|c| c.version);
        let anchors = Self::list_anchors(&dir)?;
        Ok(FileStore {
            dir,
            wal,
            recovery: Some(Recovery {
                checkpoint,
                wal: wal_records,
                wal_truncated: truncated,
            }),
            retain_anchors: retain,
            ckpt_version,
            anchors,
        })
    }

    /// The directory this store persists into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Anchor versions currently on disk, ascending.
    fn list_anchors(dir: &Path) -> Result<Vec<u64>, DurabilityError> {
        let root = dir.join(ANCHORS_DIR);
        let entries = match std::fs::read_dir(&root) {
            Ok(e) => e,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(io_err(&root)(e)),
        };
        let mut versions = Vec::new();
        for entry in entries {
            let entry = entry.map_err(io_err(&root))?;
            if let Some(v) = entry.file_name().to_str().and_then(|n| n.parse().ok()) {
                // A half-written anchor (crash mid-archive) has no
                // manifest yet; it is unreadable, so don't offer it.
                if entry.path().join(MANIFEST_FILE).exists() {
                    versions.push(v);
                }
            }
        }
        versions.sort_unstable();
        Ok(versions)
    }

    /// Archives the live checkpoint (manifest + sections) and the WAL
    /// segment it anchors — the records between its version and the
    /// superseding checkpoint's — under `anchors/<version>/`. Called
    /// before the superseding checkpoint overwrites either.
    fn archive_anchor(&mut self, old: &CheckpointData) -> Result<(), DurabilityError> {
        let adir = self.dir.join(ANCHORS_DIR).join(old.version.to_string());
        std::fs::create_dir_all(&adir).map_err(io_err(&adir))?;
        let mut manifest = format!(
            "citesys-durable v{FORMAT_VERSION}\nversion {}\n",
            old.version
        );
        for (name, payload) in &old.sections {
            let file = format!("{name}.section");
            write_atomic_in(&adir, &file, payload)?;
            manifest.push_str(&format!(
                "section {name} {file} {}\n",
                sha256(payload.as_bytes()).to_hex()
            ));
        }
        // The live WAL currently holds exactly the records this anchor
        // needs to roll forward: everything committed after `old`.
        let wal_text = std::fs::read_to_string(self.wal.path()).map_err(io_err(self.wal.path()))?;
        write_atomic_in(&adir, WAL_FILE, &wal_text)?;
        // Manifest last: its presence marks the anchor complete.
        write_atomic_in(&adir, MANIFEST_FILE, &manifest)?;
        self.anchors.push(old.version);
        self.anchors.sort_unstable();
        Ok(())
    }

    fn remove_anchor(&mut self, version: u64) -> Result<(), DurabilityError> {
        let adir = self.dir.join(ANCHORS_DIR).join(version.to_string());
        std::fs::remove_dir_all(&adir).map_err(io_err(&adir))?;
        self.anchors.retain(|&v| v != version);
        Ok(())
    }

    fn read_manifest(dir: &Path) -> Result<Option<CheckpointData>, DurabilityError> {
        let path = dir.join(MANIFEST_FILE);
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(io_err(&path)(e)),
        };
        let mut lines = text.lines().map(trim_cr);
        match lines.next() {
            Some(l) if l == format!("citesys-durable v{FORMAT_VERSION}") => {}
            Some(l) if l.starts_with("citesys-durable v") => {
                let found: u32 = l
                    .trim_start_matches("citesys-durable v")
                    .trim()
                    .parse()
                    .unwrap_or(0);
                return Err(DurabilityError::FormatVersion {
                    found,
                    supported: FORMAT_VERSION,
                });
            }
            other => return Err(corrupt(&path, format!("bad manifest header: {other:?}"))),
        }
        let version: u64 = lines
            .next()
            .and_then(|l| l.strip_prefix("version "))
            .ok_or_else(|| corrupt(&path, "missing version line"))?
            .trim()
            .parse()
            .map_err(|_| corrupt(&path, "bad version number"))?;
        let mut sections = Vec::new();
        for line in lines {
            if line.trim().is_empty() {
                continue;
            }
            let rest = line
                .strip_prefix("section ")
                .ok_or_else(|| corrupt(&path, format!("unexpected manifest line '{line}'")))?;
            let mut parts = rest.split_whitespace();
            let (name, file, digest) = match (parts.next(), parts.next(), parts.next()) {
                (Some(n), Some(f), Some(d)) => (n, f, d),
                _ => return Err(corrupt(&path, format!("bad section line '{line}'"))),
            };
            let expected = Digest::from_hex(digest)
                .ok_or_else(|| corrupt(&path, format!("bad digest for section '{name}'")))?;
            let section_path = dir.join(file);
            let payload = std::fs::read_to_string(&section_path).map_err(io_err(&section_path))?;
            if sha256(payload.as_bytes()) != expected {
                return Err(corrupt(
                    &section_path,
                    format!("section '{name}' does not match its manifest digest"),
                ));
            }
            sections.push((name.to_string(), payload));
        }
        Ok(Some(CheckpointData { version, sections }))
    }

    fn write_atomic(&self, name: &str, content: &str) -> Result<(), DurabilityError> {
        write_atomic_in(&self.dir, name, content)
    }
}

/// Reads just the `version` line of a durable directory's manifest —
/// the cheap "how much history did checkpoints fold away?" probe used
/// by `citesys wal dump --since` to refuse a compacted floor without
/// loading (or digest-verifying) any section. `Ok(None)` when no
/// checkpoint was ever written.
pub fn manifest_version(dir: &Path) -> Result<Option<u64>, DurabilityError> {
    let path = dir.join(MANIFEST_FILE);
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(io_err(&path)(e)),
    };
    let mut lines = text.lines().map(trim_cr);
    match lines.next() {
        Some(l) if l == format!("citesys-durable v{FORMAT_VERSION}") => {}
        Some(l) if l.starts_with("citesys-durable v") => {
            let found: u32 = l
                .trim_start_matches("citesys-durable v")
                .trim()
                .parse()
                .unwrap_or(0);
            return Err(DurabilityError::FormatVersion {
                found,
                supported: FORMAT_VERSION,
            });
        }
        other => return Err(corrupt(&path, format!("bad manifest header: {other:?}"))),
    }
    let version = lines
        .next()
        .and_then(|l| l.strip_prefix("version "))
        .ok_or_else(|| corrupt(&path, "missing version line"))?
        .trim()
        .parse()
        .map_err(|_| corrupt(&path, "bad version number"))?;
    Ok(Some(version))
}

/// Writes `dir/name` atomically: temp file, fsync, rename, directory
/// fsync. The directory fsync matters — the rename itself is a
/// directory-entry update: without it, a power cut after `checkpoint()`
/// returns could surface the OLD manifest next to an already-reset WAL,
/// losing acked commits.
fn write_atomic_in(dir: &Path, name: &str, content: &str) -> Result<(), DurabilityError> {
    let tmp = dir.join(format!("{name}.tmp"));
    let path = dir.join(name);
    let mut f = File::create(&tmp).map_err(io_err(&tmp))?;
    f.write_all(content.as_bytes()).map_err(io_err(&tmp))?;
    f.sync_data().map_err(io_err(&tmp))?;
    std::fs::rename(&tmp, &path).map_err(io_err(&path))?;
    sync_parent_dir(&path)
}

impl DurableStore for FileStore {
    fn log_changeset(&mut self, version: u64, changes: &Changeset) -> Result<(), DurabilityError> {
        self.wal.append(version, changes)
    }

    fn checkpoint(&mut self, data: &CheckpointData) -> Result<(), DurabilityError> {
        // Retention: archive the checkpoint this one supersedes (and
        // the WAL segment anchored to it) before anything is
        // overwritten, then bound the anchor count.
        if self.retain_anchors > 0 && self.ckpt_version.is_some_and(|v| v < data.version) {
            if let Some(old) = Self::read_manifest(&self.dir)? {
                self.archive_anchor(&old)?;
                while self.anchors.len() > self.retain_anchors {
                    self.remove_anchor(self.anchors[0])?;
                }
            }
        }
        // Sections first, manifest last: a crash mid-checkpoint leaves
        // the old manifest pointing at the old (still intact) sections.
        let mut manifest = format!(
            "citesys-durable v{FORMAT_VERSION}\nversion {}\n",
            data.version
        );
        for (name, payload) in &data.sections {
            let file = format!("{name}.section");
            self.write_atomic(&file, payload)?;
            manifest.push_str(&format!(
                "section {name} {file} {}\n",
                sha256(payload.as_bytes()).to_hex()
            ));
        }
        self.write_atomic(MANIFEST_FILE, &manifest)?;
        self.ckpt_version = Some(data.version);
        // Only after the manifest is durable: the WAL records it
        // supersedes can go. (A crash before this reset is handled at
        // open by dropping records at or below the manifest version.)
        self.wal.reset()
    }

    fn take_recovery(&mut self) -> Recovery {
        self.recovery.take().unwrap_or_default()
    }

    fn wal_records(&self) -> usize {
        self.wal.records()
    }

    fn history_floor(&self) -> Option<u64> {
        self.anchors.first().copied().or(self.ckpt_version)
    }

    fn checkpoints_retained(&self) -> usize {
        self.anchors.len() + usize::from(self.ckpt_version.is_some())
    }

    fn checkpoint_at(
        &self,
        version: u64,
    ) -> Result<Option<(CheckpointData, Vec<WalRecord>)>, DurabilityError> {
        // The nearest retained replay base at or below `version`: the
        // live checkpoint if it qualifies (it is always newer than any
        // anchor), else the greatest qualifying anchor.
        if self.ckpt_version.is_some_and(|v| v <= version) {
            let Some(ckpt) = Self::read_manifest(&self.dir)? else {
                return Ok(None);
            };
            let (records, _) = Wal::read(self.wal.path())?;
            let tail = records
                .into_iter()
                .filter(|r| r.version > ckpt.version && r.version <= version)
                .collect();
            return Ok(Some((ckpt, tail)));
        }
        let Some(&base) = self.anchors.iter().rev().find(|&&v| v <= version) else {
            return Ok(None);
        };
        let adir = self.dir.join(ANCHORS_DIR).join(base.to_string());
        let Some(ckpt) = Self::read_manifest(&adir)? else {
            return Ok(None);
        };
        let (records, _) = Wal::read(adir.join(WAL_FILE))?;
        let tail = records
            .into_iter()
            .filter(|r| r.version > base && r.version <= version)
            .collect();
        Ok(Some((ckpt, tail)))
    }

    fn prune_history(&mut self, floor: u64) -> Result<usize, DurabilityError> {
        // Keep the greatest anchor at or below `floor` (the replay base
        // for `floor` itself) and everything newer.
        let keep_from = self
            .anchors
            .iter()
            .rev()
            .find(|&&v| v <= floor)
            .copied()
            .unwrap_or(0);
        let doomed: Vec<u64> = self
            .anchors
            .iter()
            .filter(|&&v| v < keep_from)
            .copied()
            .collect();
        let pruned = doomed.len();
        for v in doomed {
            self.remove_anchor(v)?;
        }
        Ok(pruned)
    }

    fn data_dir(&self) -> Option<&Path> {
        Some(&self.dir)
    }
}

// ---------------------------------------------------------------------------
// In-memory backend (tests; proves the trait abstracts the layout)
// ---------------------------------------------------------------------------

/// A [`DurableStore`] that "persists" to shared memory — used by tests
/// and as the template for future non-file backends (replicas, object
/// stores). Clones share the persisted state; each clone behaves like a
/// fresh process opening it ([`reopen`](Self::reopen)), recovering
/// whatever checkpoint and WAL records the previous handles left.
#[derive(Debug, Default)]
pub struct MemStore {
    inner: Arc<parking_lot::Mutex<MemInner>>,
    recovery_taken: bool,
}

#[derive(Debug, Default)]
struct MemInner {
    checkpoint: Option<CheckpointData>,
    wal: Vec<WalRecord>,
}

impl MemStore {
    /// An empty in-memory store.
    pub fn new() -> Self {
        MemStore::default()
    }

    /// Simulates a process restart: a handle over the same persisted
    /// state whose [`take_recovery`](DurableStore::take_recovery) yields
    /// the current checkpoint + WAL.
    pub fn reopen(&self) -> MemStore {
        MemStore {
            inner: Arc::clone(&self.inner),
            recovery_taken: false,
        }
    }
}

impl DurableStore for MemStore {
    fn log_changeset(&mut self, version: u64, changes: &Changeset) -> Result<(), DurabilityError> {
        self.inner.lock().wal.push(WalRecord {
            version,
            changes: changes.clone(),
        });
        Ok(())
    }

    fn checkpoint(&mut self, data: &CheckpointData) -> Result<(), DurabilityError> {
        let mut inner = self.inner.lock();
        inner.checkpoint = Some(data.clone());
        inner.wal.clear();
        Ok(())
    }

    fn take_recovery(&mut self) -> Recovery {
        if self.recovery_taken {
            return Recovery::default();
        }
        self.recovery_taken = true;
        let inner = self.inner.lock();
        Recovery {
            checkpoint: inner.checkpoint.clone(),
            wal: inner.wal.clone(),
            wal_truncated: false,
        }
    }

    fn wal_records(&self) -> usize {
        self.inner.lock().wal.len()
    }

    fn history_floor(&self) -> Option<u64> {
        self.inner.lock().checkpoint.as_ref().map(|c| c.version)
    }

    fn checkpoints_retained(&self) -> usize {
        usize::from(self.inner.lock().checkpoint.is_some())
    }

    fn checkpoint_at(
        &self,
        version: u64,
    ) -> Result<Option<(CheckpointData, Vec<WalRecord>)>, DurabilityError> {
        let inner = self.inner.lock();
        match &inner.checkpoint {
            Some(c) if c.version <= version => {
                let tail = inner
                    .wal
                    .iter()
                    .filter(|r| r.version > c.version && r.version <= version)
                    .cloned()
                    .collect();
                Ok(Some((c.clone(), tail)))
            }
            _ => Ok(None),
        }
    }
}

/// Groups per-relation tuple counts for human-facing recovery summaries
/// (`citesys recover`).
pub fn summarize_database(db: &Database) -> BTreeMap<String, usize> {
    db.relations()
        .map(|(name, rel)| (name.to_string(), rel.len()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("citesys-durability-test")
            .join(format!("{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn family_schema() -> RelationSchema {
        RelationSchema::from_parts(
            "Family",
            &[("FID", ValueType::Int), ("FName", ValueType::Text)],
            &[0],
        )
    }

    #[test]
    fn changeset_text_round_trips() {
        let mut c = Changeset::new();
        c.insert("Family", tuple![11, "Cal, 'quoted' \\ text"])
            .delete("Family", tuple![12, "x"])
            .insert("Flags", tuple![true, false, -5]);
        let text = c.to_text();
        assert!(text.starts_with("citesys-changeset v1\n"));
        let back = Changeset::from_text(&text).unwrap();
        assert_eq!(back, c);
        // CRLF + trailing blanks tolerated, like RewritePlan::from_text.
        let crlf = format!("{}\r\n\r\n", text.replace('\n', "\r\n"));
        assert_eq!(Changeset::from_text(&crlf).unwrap(), c);
        assert!(Changeset::from_text("bogus\n").is_err());
        assert!(Changeset::from_text("citesys-changeset v1\nx R(1)\n").is_err());
    }

    #[test]
    fn embedded_newlines_survive_every_durable_codec() {
        // CSV bulk loads can insert text with embedded newlines; the
        // line-oriented durable formats must escape them, or a WAL
        // record / checkpoint section would split mid-value and an
        // ACKED commit would be unreadable on reopen.
        let sneaky = tuple![1, "line1\nline2\r\nline3"];
        let mut c = Changeset::new();
        c.insert("Family", sneaky.clone());
        let text = c.to_text();
        assert_eq!(
            text.lines().count(),
            2,
            "one header + one op line, newline escaped: {text:?}"
        );
        assert_eq!(Changeset::from_text(&text).unwrap(), c);
        // Through the WAL: append, reopen, replay — not torn, not lost.
        let dir = temp_dir("wal-newline");
        let path = dir.join(WAL_FILE);
        {
            let (mut wal, _, _) = Wal::open(&path).unwrap();
            wal.append(1, &c).unwrap();
        }
        let (_, recovered, truncated) = Wal::open(&path).unwrap();
        assert!(!truncated, "an escaped newline is not a torn record");
        assert_eq!(
            recovered,
            vec![WalRecord {
                version: 1,
                changes: c
            }]
        );
        // Through the database section codec.
        let mut db = Database::new();
        db.create_relation(family_schema()).unwrap();
        db.insert("Family", sneaky.clone()).unwrap();
        let back = database_from_text(&database_to_text(&db)).unwrap();
        assert!(back.relation("Family").unwrap().contains(&sneaky));
    }

    #[test]
    fn wal_read_is_read_only() {
        let dir = temp_dir("wal-read-only");
        let path = dir.join(WAL_FILE);
        let mut c = Changeset::new();
        c.insert("Family", tuple![1, "a"]);
        {
            let (mut wal, _, _) = Wal::open(&path).unwrap();
            wal.append(1, &c).unwrap();
        }
        // Tear the tail, then inspect: the torn bytes must stay put (a
        // live server may still be appending to them).
        let mut torn = std::fs::read_to_string(&path).unwrap();
        torn.push_str("record 2 1\ni Fam");
        std::fs::write(&path, &torn).unwrap();
        let (records, truncated) = Wal::read(&path).unwrap();
        assert!(truncated);
        assert_eq!(records.len(), 1);
        assert_eq!(
            std::fs::read_to_string(&path).unwrap(),
            torn,
            "read() must not truncate the file"
        );
        // And a missing file is an error, not a silently created log.
        let missing = dir.join("nope.log");
        assert!(Wal::read(&missing).is_err());
        assert!(!missing.exists());
    }

    #[test]
    fn wal_read_from_skips_the_prefix() {
        let dir = temp_dir("wal-read-from");
        let path = dir.join(WAL_FILE);
        {
            let (mut wal, _, _) = Wal::open(&path).unwrap();
            for v in 1..=4u64 {
                let mut c = Changeset::new();
                c.insert("Family", tuple![v as i64, format!("f{v}")]);
                wal.append(v, &c).unwrap();
            }
        }
        // Floor 0 behaves exactly like read().
        let (all, _) = Wal::read_from(&path, 0).unwrap();
        assert_eq!(all, Wal::read(&path).unwrap().0);
        assert_eq!(all.len(), 4);
        // A mid-log floor returns only the suffix, versions intact.
        let (tail, truncated) = Wal::read_from(&path, 2).unwrap();
        assert!(!truncated);
        assert_eq!(
            tail.iter().map(|r| r.version).collect::<Vec<_>>(),
            vec![3, 4]
        );
        assert_eq!(tail, all[2..].to_vec());
        // A floor at or past the end yields nothing.
        assert!(Wal::read_from(&path, 4).unwrap().0.is_empty());
        assert!(Wal::read_from(&path, 99).unwrap().0.is_empty());
        // Torn-tail detection still sees through skipped records.
        let mut torn = std::fs::read_to_string(&path).unwrap();
        torn.push_str("record 5 2\ni Family(9");
        std::fs::write(&path, &torn).unwrap();
        let (tail, truncated) = Wal::read_from(&path, 4).unwrap();
        assert!(truncated, "torn tail reported even when fully skipped");
        assert!(tail.is_empty());
        // A damaged record *before* intact ones is still corruption,
        // even when the floor would have skipped the damaged record.
        let healthy = torn.trim_end_matches("record 5 2\ni Family(9").to_string();
        let broken = healthy.replace("i Family(2, 'f2')", "i Family(2, ");
        std::fs::write(&path, &broken).unwrap();
        assert!(Wal::read(&path).is_err(), "read sees the corruption");
    }

    #[test]
    fn database_text_round_trips() {
        let mut db = Database::new();
        db.create_relation(family_schema()).unwrap();
        db.create_relation(RelationSchema::from_parts(
            "Log",
            &[("Msg", ValueType::Text)],
            &[],
        ))
        .unwrap();
        db.insert("Family", tuple![1, "a'b"]).unwrap();
        db.insert("Family", tuple![2, "c,d"]).unwrap();
        db.insert("Log", tuple!["hello #world"]).unwrap();
        let text = database_to_text(&db);
        let back = database_from_text(&text).unwrap();
        assert_eq!(back.total_tuples(), 3);
        assert!(back.relation("Family").unwrap().contains(&tuple![1, "a'b"]));
        assert!(back
            .relation("Log")
            .unwrap()
            .contains(&tuple!["hello #world"]));
        assert_eq!(back.relation("Family").unwrap().schema().key, vec![0]);
    }

    #[test]
    fn versioned_text_restores_at_base_version() {
        let mut v = VersionedDatabase::new(vec![family_schema()]).unwrap();
        v.insert("Family", tuple![1, "a"]).unwrap();
        v.commit();
        v.insert("Family", tuple![2, "b"]).unwrap();
        v.commit();
        v.insert("Family", tuple![3, "pending"]).unwrap(); // not committed
        let text = versioned_to_text(&v).unwrap();
        let back = versioned_from_text(&text).unwrap();
        assert_eq!(back.latest_version(), 2);
        assert_eq!(back.base_version(), 2);
        assert_eq!(back.snapshot(2).unwrap().total_tuples(), 2, "no pending");
        // Pre-checkpoint history is compacted.
        assert!(back.snapshot(1).is_err());
        // Digest of the recovered version equals the original's.
        assert_eq!(back.digest_at(2).unwrap(), v.digest_at(2).unwrap());
    }

    #[test]
    fn wal_append_replay_round_trip() {
        let dir = temp_dir("wal-round-trip");
        let path = dir.join(WAL_FILE);
        let mut c1 = Changeset::new();
        c1.insert("Family", tuple![1, "a"]);
        let mut c2 = Changeset::new();
        c2.delete("Family", tuple![1, "a"])
            .insert("Family", tuple![2, "b"]);
        {
            let (mut wal, recovered, truncated) = Wal::open(&path).unwrap();
            assert!(recovered.is_empty());
            assert!(!truncated);
            wal.append(1, &c1).unwrap();
            wal.append(2, &c2).unwrap();
            assert_eq!(wal.records(), 2);
        }
        let (wal, recovered, truncated) = Wal::open(&path).unwrap();
        assert!(!truncated);
        assert_eq!(wal.records(), 2);
        assert_eq!(
            recovered,
            vec![
                WalRecord {
                    version: 1,
                    changes: c1
                },
                WalRecord {
                    version: 2,
                    changes: c2
                },
            ]
        );
    }

    #[test]
    fn torn_final_record_truncates_cleanly() {
        let dir = temp_dir("wal-torn");
        let path = dir.join(WAL_FILE);
        let mut c = Changeset::new();
        c.insert("Family", tuple![1, "a"]);
        {
            let (mut wal, _, _) = Wal::open(&path).unwrap();
            wal.append(1, &c).unwrap();
        }
        let intact = std::fs::read_to_string(&path).unwrap();
        // A crash mid-append: header + one op, no `end` trailer.
        for torn_tail in [
            "record 2 2\ni Family(2, 'b')\n",
            "record 2 2\n",
            "record 2",
            "garbage that is not a record header\n",
        ] {
            std::fs::write(&path, format!("{intact}{torn_tail}")).unwrap();
            let (wal, recovered, truncated) = Wal::open(&path).unwrap();
            assert!(truncated, "tail {torn_tail:?} must be detected");
            assert_eq!(recovered.len(), 1, "intact record survives");
            assert_eq!(recovered[0].version, 1);
            drop(wal);
            assert_eq!(
                std::fs::read_to_string(&path).unwrap(),
                intact,
                "file physically truncated back to the good prefix"
            );
        }
    }

    #[test]
    fn appending_after_truncation_works() {
        let dir = temp_dir("wal-truncate-append");
        let path = dir.join(WAL_FILE);
        let mut c = Changeset::new();
        c.insert("Family", tuple![1, "a"]);
        {
            let (mut wal, _, _) = Wal::open(&path).unwrap();
            wal.append(1, &c).unwrap();
        }
        let mut raw = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        raw.write_all(b"record 2 1\ni Fam").unwrap(); // torn
        drop(raw);
        let (mut wal, recovered, truncated) = Wal::open(&path).unwrap();
        assert!(truncated);
        assert_eq!(recovered.len(), 1);
        let mut c2 = Changeset::new();
        c2.insert("Family", tuple![2, "b"]);
        wal.append(2, &c2).unwrap();
        drop(wal);
        let (_, recovered, truncated) = Wal::open(&path).unwrap();
        assert!(!truncated);
        assert_eq!(recovered.len(), 2, "append lands after the cut point");
    }

    #[test]
    fn damaged_middle_is_corruption_not_tearing() {
        let dir = temp_dir("wal-corrupt");
        let path = dir.join(WAL_FILE);
        let mut c = Changeset::new();
        c.insert("Family", tuple![1, "a"]);
        {
            let (mut wal, _, _) = Wal::open(&path).unwrap();
            wal.append(1, &c).unwrap();
            wal.append(2, &c).unwrap();
        }
        let text = std::fs::read_to_string(&path).unwrap();
        // Damage the FIRST record while the second stays intact: a torn
        // write cannot do this, so open must refuse rather than drop the
        // acknowledged second commit.
        let damaged = text.replacen("record 1 1", "recxrd 1 1", 1);
        std::fs::write(&path, damaged).unwrap();
        let e = Wal::open(&path).unwrap_err();
        assert!(matches!(e, DurabilityError::Corrupt { .. }), "{e}");
    }

    #[test]
    fn wal_format_version_gate() {
        let dir = temp_dir("wal-version");
        let path = dir.join(WAL_FILE);
        std::fs::write(&path, "citesys-wal v9\n").unwrap();
        let e = Wal::open(&path).unwrap_err();
        assert!(
            matches!(
                e,
                DurabilityError::FormatVersion {
                    found: 9,
                    supported: FORMAT_VERSION
                }
            ),
            "{e}"
        );
    }

    #[test]
    fn file_store_checkpoint_and_recover() {
        let dir = temp_dir("file-store");
        let mut c = Changeset::new();
        c.insert("Family", tuple![1, "a"]);
        {
            let mut store = FileStore::open(&dir).unwrap();
            let rec = store.take_recovery();
            assert!(rec.checkpoint.is_none());
            assert!(rec.wal.is_empty());
            store
                .checkpoint(&CheckpointData {
                    version: 3,
                    sections: vec![
                        ("database".into(), "citesys-database v1\n".into()),
                        ("notes".into(), "hello\n".into()),
                    ],
                })
                .unwrap();
            assert_eq!(store.wal_records(), 0);
            store.log_changeset(4, &c).unwrap();
            assert_eq!(store.wal_records(), 1);
        }
        let mut store = FileStore::open(&dir).unwrap();
        let rec = store.take_recovery();
        let cp = rec.checkpoint.expect("checkpoint recovered");
        assert_eq!(cp.version, 3);
        assert_eq!(cp.section("notes"), Some("hello\n"));
        assert_eq!(rec.wal.len(), 1);
        assert_eq!(rec.wal[0].version, 4);
        assert_eq!(rec.wal[0].changes, c);
        assert!(!rec.wal_truncated);
        // Recovery is consumed exactly once.
        assert!(store.take_recovery().checkpoint.is_none());
    }

    #[test]
    fn checkpoint_supersedes_earlier_wal_records() {
        // A crash between manifest rename and WAL reset leaves records
        // at or below the checkpoint version in the log; open must drop
        // them instead of replaying them twice.
        let dir = temp_dir("file-store-supersede");
        let mut c = Changeset::new();
        c.insert("Family", tuple![1, "a"]);
        let mut store = FileStore::open(&dir).unwrap();
        store.log_changeset(1, &c).unwrap();
        store.log_changeset(2, &c).unwrap();
        store
            .checkpoint(&CheckpointData {
                version: 2,
                sections: vec![],
            })
            .unwrap();
        store.log_changeset(3, &c).unwrap();
        drop(store);
        // Simulate the crash: re-append a stale record manually.
        let wal_path = dir.join(WAL_FILE);
        let stale = "record 2 1\ni Family(1, 'a')\nend 2\n";
        let text = std::fs::read_to_string(&wal_path).unwrap();
        std::fs::write(
            &wal_path,
            format!(
                "citesys-wal v1\n{stale}{}",
                &text["citesys-wal v1\n".len()..]
            ),
        )
        .unwrap();
        let mut store = FileStore::open(&dir).unwrap();
        let rec = store.take_recovery();
        assert_eq!(
            rec.wal.iter().map(|r| r.version).collect::<Vec<_>>(),
            vec![3],
            "records ≤ checkpoint version dropped"
        );
    }

    /// Drives a retention-enabled store through `n` single-op commits
    /// with a checkpoint every `every` commits; the checkpoint sections
    /// are tiny database texts so anchors can be read back.
    fn storm(store: &mut FileStore, n: u64, every: u64) {
        for v in 1..=n {
            let mut c = Changeset::new();
            c.insert("Family", tuple![v as i64, format!("f{v}")]);
            store.log_changeset(v, &c).unwrap();
            if v % every == 0 {
                store
                    .checkpoint(&CheckpointData {
                        version: v,
                        sections: vec![("database".into(), format!("state at v{v}\n"))],
                    })
                    .unwrap();
            }
        }
    }

    #[test]
    fn retention_archives_superseded_checkpoints_as_anchors() {
        let dir = temp_dir("file-store-anchors");
        let mut store = FileStore::open_with_retention(&dir, 2).unwrap();
        assert_eq!(store.history_floor(), None);
        assert_eq!(store.checkpoints_retained(), 0);
        storm(&mut store, 12, 3); // checkpoints at 3, 6, 9, 12
                                  // Retention 2: anchors 6 and 9 retained, 3 pruned; live is 12.
        assert_eq!(store.checkpoints_retained(), 3);
        assert_eq!(store.history_floor(), Some(6));
        // checkpoint_at picks the nearest base and the exact record tail.
        let (base, tail) = store.checkpoint_at(8).unwrap().expect("anchored");
        assert_eq!(base.version, 6);
        assert_eq!(base.section("database"), Some("state at v6\n"));
        assert_eq!(tail.iter().map(|r| r.version).collect::<Vec<_>>(), [7, 8]);
        // A version at an anchor needs no tail.
        let (base, tail) = store.checkpoint_at(9).unwrap().expect("anchored");
        assert_eq!((base.version, tail.len()), (9, 0));
        // At or above the live checkpoint: the live manifest + live WAL.
        let (base, tail) = store.checkpoint_at(12).unwrap().expect("live");
        assert_eq!((base.version, tail.len()), (12, 0));
        // Below the oldest anchor: compacted.
        assert!(store.checkpoint_at(5).unwrap().is_none());
        // Reopen sees the same anchors (they live on disk).
        drop(store);
        let store = FileStore::open_with_retention(&dir, 2).unwrap();
        assert_eq!(store.history_floor(), Some(6));
        assert_eq!(store.checkpoints_retained(), 3);
    }

    #[test]
    fn checkpoint_at_covers_the_live_wal_tail() {
        let dir = temp_dir("file-store-live-tail");
        let mut store = FileStore::open_with_retention(&dir, 4).unwrap();
        storm(&mut store, 5, 3); // checkpoint at 3; records 4, 5 live
        let (base, tail) = store.checkpoint_at(4).unwrap().expect("live base");
        assert_eq!(base.version, 3);
        assert_eq!(tail.iter().map(|r| r.version).collect::<Vec<_>>(), [4]);
    }

    #[test]
    fn prune_history_keeps_the_replay_base_for_the_floor() {
        let dir = temp_dir("file-store-prune");
        let mut store = FileStore::open_with_retention(&dir, 10).unwrap();
        storm(&mut store, 12, 3); // anchors 3, 6, 9; live 12
        assert_eq!(store.history_floor(), Some(3));
        // Floor 8: anchor 6 is the replay base for v8 and must survive;
        // only 3 goes.
        assert_eq!(store.prune_history(8).unwrap(), 1);
        assert_eq!(store.history_floor(), Some(6));
        assert!(store.checkpoint_at(7).unwrap().is_some());
        assert!(store.checkpoint_at(5).unwrap().is_none());
        // Pruning is idempotent.
        assert_eq!(store.prune_history(8).unwrap(), 0);
        // A floor below every anchor prunes nothing.
        assert_eq!(store.prune_history(0).unwrap(), 0);
    }

    #[test]
    fn zero_retention_keeps_no_anchors() {
        let dir = temp_dir("file-store-no-anchors");
        let mut store = FileStore::open(&dir).unwrap();
        storm(&mut store, 6, 3);
        assert_eq!(store.checkpoints_retained(), 1, "live checkpoint only");
        assert_eq!(store.history_floor(), Some(6));
        assert!(store.checkpoint_at(4).unwrap().is_none());
        assert!(!dir.join(ANCHORS_DIR).exists());
    }

    #[test]
    fn manifest_version_probe() {
        let dir = temp_dir("manifest-version");
        assert_eq!(manifest_version(&dir).unwrap(), None);
        let mut store = FileStore::open(&dir).unwrap();
        store
            .checkpoint(&CheckpointData {
                version: 7,
                sections: vec![],
            })
            .unwrap();
        assert_eq!(manifest_version(&dir).unwrap(), Some(7));
        std::fs::write(dir.join(MANIFEST_FILE), "citesys-durable v99\nversion 0\n").unwrap();
        assert!(matches!(
            manifest_version(&dir).unwrap_err(),
            DurabilityError::FormatVersion { found: 99, .. }
        ));
    }

    #[test]
    fn tampered_section_is_rejected() {
        let dir = temp_dir("file-store-tamper");
        {
            let mut store = FileStore::open(&dir).unwrap();
            store
                .checkpoint(&CheckpointData {
                    version: 1,
                    sections: vec![("database".into(), "citesys-database v1\n".into())],
                })
                .unwrap();
        }
        std::fs::write(dir.join("database.section"), "tampered\n").unwrap();
        let e = FileStore::open(&dir).unwrap_err();
        assert!(matches!(e, DurabilityError::Corrupt { .. }), "{e}");
    }

    #[test]
    fn manifest_format_version_gate() {
        let dir = temp_dir("file-store-version");
        std::fs::write(dir.join(MANIFEST_FILE), "citesys-durable v99\nversion 0\n").unwrap();
        let e = FileStore::open(&dir).unwrap_err();
        assert!(
            matches!(e, DurabilityError::FormatVersion { found: 99, .. }),
            "{e}"
        );
    }

    #[test]
    fn mem_store_implements_the_trait() {
        let mut c = Changeset::new();
        c.insert("Family", tuple![1, "a"]);
        let mut store = MemStore::new();
        store
            .checkpoint(&CheckpointData {
                version: 1,
                sections: vec![("x".into(), "y".into())],
            })
            .unwrap();
        store.log_changeset(2, &c).unwrap();
        let mut reopened = store.reopen();
        let rec = reopened.take_recovery();
        assert_eq!(rec.checkpoint.unwrap().version, 1);
        assert_eq!(rec.wal.len(), 1);
        // Works through the trait object, as callers use it.
        let mut boxed: Box<dyn DurableStore + Send> = Box::new(MemStore::new());
        boxed.log_changeset(1, &c).unwrap();
        assert_eq!(boxed.wal_records(), 1);
    }
}

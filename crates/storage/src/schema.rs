//! Relation schemas and the database catalog.

use serde::{Deserialize, Serialize};

use citesys_cq::{Symbol, ValueType};

/// A named, typed attribute of a relation.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct Attribute {
    /// Attribute name (e.g. `FID`).
    pub name: Symbol,
    /// Attribute type.
    pub ty: ValueType,
}

impl Attribute {
    /// Builds an attribute.
    pub fn new(name: impl Into<Symbol>, ty: ValueType) -> Self {
        Attribute {
            name: name.into(),
            ty,
        }
    }
}

/// Schema of one relation: name, typed attributes, and an optional key
/// (attribute positions). The paper's example underlines `FID` in `Family`
/// and `(FID, PName)` in `Committee`.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct RelationSchema {
    /// Relation name.
    pub name: Symbol,
    /// Attributes in column order.
    pub attributes: Vec<Attribute>,
    /// Positions of the key attributes; empty means no key constraint.
    pub key: Vec<usize>,
}

impl RelationSchema {
    /// Builds a schema; `key` lists attribute positions (must be in range).
    pub fn new(name: impl Into<Symbol>, attributes: Vec<Attribute>, key: Vec<usize>) -> Self {
        let schema = RelationSchema {
            name: name.into(),
            attributes,
            key,
        };
        debug_assert!(
            schema.key.iter().all(|&k| k < schema.attributes.len()),
            "key positions out of range"
        );
        schema
    }

    /// Convenience constructor from `(name, type)` pairs.
    pub fn from_parts(name: impl Into<Symbol>, attrs: &[(&str, ValueType)], key: &[usize]) -> Self {
        Self::new(
            name,
            attrs.iter().map(|(n, t)| Attribute::new(*n, *t)).collect(),
            key.to_vec(),
        )
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.attributes.len()
    }

    /// Position of a named attribute.
    pub fn position_of(&self, attr: &str) -> Option<usize> {
        self.attributes.iter().position(|a| a.name == attr)
    }

    /// True when the relation declares a key.
    pub fn has_key(&self) -> bool {
        !self.key.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn family() -> RelationSchema {
        RelationSchema::from_parts(
            "Family",
            &[
                ("FID", ValueType::Int),
                ("FName", ValueType::Text),
                ("Desc", ValueType::Text),
            ],
            &[0],
        )
    }

    #[test]
    fn accessors() {
        let s = family();
        assert_eq!(s.arity(), 3);
        assert_eq!(s.position_of("FName"), Some(1));
        assert_eq!(s.position_of("Nope"), None);
        assert!(s.has_key());
        assert_eq!(s.key, vec![0]);
    }

    #[test]
    fn composite_key() {
        let s = RelationSchema::from_parts(
            "Committee",
            &[("FID", ValueType::Int), ("PName", ValueType::Text)],
            &[0, 1],
        );
        assert_eq!(s.key.len(), 2);
    }

    #[test]
    fn keyless_relation() {
        let s = RelationSchema::from_parts("Log", &[("Msg", ValueType::Text)], &[]);
        assert!(!s.has_key());
    }
}

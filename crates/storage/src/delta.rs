//! Delta evaluation for materialized conjunctive-query views.
//!
//! A materialized view is a relation computed once from a base database.
//! When a single tuple is inserted into (or deleted from) a base relation,
//! recomputing every view from scratch wastes the work that produced the
//! still-valid rows. This module implements the standard semi-naive delta
//! rules for select-project-join views under **set semantics**:
//!
//! * **Insertion** of `t` into `R`: the new view rows are exactly the rows
//!   derivable with `t` substituted into *some* body atom over `R` — the
//!   union, over every occurrence of `R` in the view body, of the view
//!   evaluated with that atom bound to `t` ([`insert_delta`]). Evaluating
//!   over the post-insertion database makes derivations that use `t` in
//!   several positions at once come out of a single bound evaluation.
//! * **Deletion** of `t` from `R`: rows that used `t` in some derivation
//!   *may* lose support, but set semantics means an alternative derivation
//!   can keep them alive. [`delete_candidates`] enumerates the at-risk rows
//!   over the pre-deletion database; [`still_derivable`] re-checks each one
//!   over the post-deletion database, and only unsupported rows are removed.
//!
//! The functions are pure with respect to the database they are given; the
//! caller (the service-layer view cache) decides which snapshot plays the
//! "before" and "after" role.

use std::collections::BTreeSet;

use citesys_cq::{ConjunctiveQuery, Substitution, Term};

use crate::database::Database;
use crate::error::StorageError;
use crate::eval::evaluate;
use crate::tuple::Tuple;

/// Binds body atom `idx` of `view` to the ground tuple `t`, returning the
/// specialized query (every variable of the atom replaced by the matching
/// constant throughout the view). Returns `None` when the atom cannot
/// match `t` at all — arity mismatch, a constant position that disagrees,
/// or a repeated variable bound to two different values.
pub fn bind_atom(view: &ConjunctiveQuery, idx: usize, t: &Tuple) -> Option<ConjunctiveQuery> {
    let atom = view.body.get(idx)?;
    if atom.arity() != t.arity() {
        return None;
    }
    let mut subst = Substitution::new();
    for (term, v) in atom.terms.iter().zip(t.values()) {
        match term {
            Term::Const(c) => {
                if c != v {
                    return None;
                }
            }
            Term::Var(var) => match subst.get(var) {
                Some(Term::Const(prev)) if prev == v => {}
                Some(_) => return None,
                None => subst.bind(var.clone(), Term::Const(v.clone())),
            },
        }
    }
    Some(view.apply(&subst))
}

/// Union of the view evaluated with each `rel`-occurrence bound to `t` —
/// the shared core of [`insert_delta`] and [`delete_candidates`].
fn bound_rows(
    db: &Database,
    view: &ConjunctiveQuery,
    rel: &str,
    t: &Tuple,
) -> Result<Vec<Tuple>, StorageError> {
    let mut out: BTreeSet<Tuple> = BTreeSet::new();
    for idx in 0..view.body.len() {
        if view.body[idx].predicate.as_str() != rel {
            continue;
        }
        let Some(bound) = bind_atom(view, idx, t) else {
            continue;
        };
        let ans = evaluate(db, &bound)?;
        out.extend(ans.rows.into_iter().map(|r| r.tuple));
    }
    Ok(out.into_iter().collect())
}

/// Rows added to `view`'s materialization by inserting `t` into `rel`.
/// `db_after` must be the database **after** the insertion (so joins
/// between `t` and itself are found). Rows already present in the
/// materialization may be returned; set-semantics insertion makes
/// re-adding them a no-op.
pub fn insert_delta(
    db_after: &Database,
    view: &ConjunctiveQuery,
    rel: &str,
    t: &Tuple,
) -> Result<Vec<Tuple>, StorageError> {
    bound_rows(db_after, view, rel, t)
}

/// Rows of `view`'s materialization that *may* lose support when `t` is
/// deleted from `rel`, evaluated over `db_before` — the database **before**
/// the deletion (afterwards the supporting derivations are gone). Each
/// candidate must be re-checked with [`still_derivable`] over the
/// post-deletion database; an alternative derivation keeps the row alive.
pub fn delete_candidates(
    db_before: &Database,
    view: &ConjunctiveQuery,
    rel: &str,
    t: &Tuple,
) -> Result<Vec<Tuple>, StorageError> {
    bound_rows(db_before, view, rel, t)
}

/// True when `row` is (still) an output of `view` over `db`: the view head
/// is bound to the row's constants and the specialized query is checked
/// for non-emptiness.
pub fn still_derivable(
    db: &Database,
    view: &ConjunctiveQuery,
    row: &Tuple,
) -> Result<bool, StorageError> {
    if view.head.terms.len() != row.arity() {
        return Ok(false);
    }
    let mut subst = Substitution::new();
    for (term, v) in view.head.terms.iter().zip(row.values()) {
        match term {
            Term::Const(c) => {
                if c != v {
                    return Ok(false);
                }
            }
            Term::Var(var) => match subst.get(var) {
                Some(Term::Const(prev)) if prev == v => {}
                Some(_) => return Ok(false),
                None => subst.bind(var.clone(), Term::Const(v.clone())),
            },
        }
    }
    let bound = view.apply(&subst);
    Ok(!evaluate(db, &bound)?.rows.is_empty())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::RelationSchema;
    use crate::tuple;
    use citesys_cq::{parse_query, ValueType};

    fn edge_db(edges: &[(i64, i64)]) -> Database {
        let mut db = Database::new();
        db.create_relation(RelationSchema::from_parts(
            "E",
            &[("A", ValueType::Int), ("B", ValueType::Int)],
            &[],
        ))
        .unwrap();
        for &(a, b) in edges {
            db.insert("E", tuple![a, b]).unwrap();
        }
        db
    }

    fn materialize(db: &Database, view: &ConjunctiveQuery) -> BTreeSet<Tuple> {
        evaluate(db, view)
            .unwrap()
            .rows
            .into_iter()
            .map(|r| r.tuple)
            .collect()
    }

    #[test]
    fn bind_atom_substitutes_throughout() {
        let v = parse_query("V(X, Z) :- E(X, Y), E(Y, Z)").unwrap();
        let bound = bind_atom(&v, 0, &tuple![1, 2]).unwrap();
        assert_eq!(bound.to_string(), "V(1, Z) :- E(1, 2), E(2, Z)");
    }

    #[test]
    fn bind_atom_rejects_impossible_matches() {
        let v = parse_query("V(X) :- E(X, 5)").unwrap();
        assert!(bind_atom(&v, 0, &tuple![1, 6]).is_none(), "constant clash");
        assert!(bind_atom(&v, 0, &tuple![1]).is_none(), "arity mismatch");
        let rep = parse_query("V(X) :- E(X, X)").unwrap();
        assert!(bind_atom(&rep, 0, &tuple![1, 2]).is_none(), "repeated var");
        assert!(bind_atom(&rep, 0, &tuple![3, 3]).is_some());
    }

    #[test]
    fn insert_delta_matches_recompute() {
        // Two-hop view over a growing edge relation.
        let v = parse_query("V(X, Z) :- E(X, Y), E(Y, Z)").unwrap();
        let mut db = edge_db(&[(1, 2)]);
        let mut mat = materialize(&db, &v);
        for &(a, b) in &[(2, 3), (3, 1), (2, 2), (1, 2)] {
            db.insert("E", tuple![a, b]).unwrap();
            for row in insert_delta(&db, &v, "E", &tuple![a, b]).unwrap() {
                mat.insert(row);
            }
            assert_eq!(mat, materialize(&db, &v), "after inserting ({a},{b})");
        }
    }

    #[test]
    fn insert_delta_self_join_single_tuple() {
        // A self-loop derives (4,4) using the new tuple at BOTH atoms; the
        // post-insertion evaluation finds it from either binding.
        let v = parse_query("V(X, Z) :- E(X, Y), E(Y, Z)").unwrap();
        let mut db = edge_db(&[]);
        db.insert("E", tuple![4, 4]).unwrap();
        let delta = insert_delta(&db, &v, "E", &tuple![4, 4]).unwrap();
        assert_eq!(delta, vec![tuple![4, 4]]);
    }

    #[test]
    fn delete_keeps_rows_with_alternative_support() {
        // (1,3) is derivable via Y=2 and Y=5; deleting one path keeps it.
        let v = parse_query("V(X, Z) :- E(X, Y), E(Y, Z)").unwrap();
        let mut db = edge_db(&[(1, 2), (2, 3), (1, 5), (5, 3)]);
        let mut mat = materialize(&db, &v);
        let gone = tuple![1, 2];
        let candidates = delete_candidates(&db, &v, "E", &gone).unwrap();
        assert!(candidates.contains(&tuple![1, 3]));
        db.delete("E", &gone).unwrap();
        for c in candidates {
            if !still_derivable(&db, &v, &c).unwrap() {
                mat.remove(&c);
            }
        }
        assert_eq!(mat, materialize(&db, &v), "alternative derivation kept");
        assert!(mat.contains(&tuple![1, 3]));
    }

    #[test]
    fn delete_removes_unsupported_rows() {
        let v = parse_query("V(X, Z) :- E(X, Y), E(Y, Z)").unwrap();
        let mut db = edge_db(&[(1, 2), (2, 3)]);
        let mut mat = materialize(&db, &v);
        assert!(mat.contains(&tuple![1, 3]));
        let gone = tuple![2, 3];
        let candidates = delete_candidates(&db, &v, "E", &gone).unwrap();
        db.delete("E", &gone).unwrap();
        for c in candidates {
            if !still_derivable(&db, &v, &c).unwrap() {
                mat.remove(&c);
            }
        }
        assert_eq!(mat, materialize(&db, &v));
        assert!(mat.is_empty());
    }

    #[test]
    fn still_derivable_respects_head_constants_and_repeats() {
        let db = edge_db(&[(1, 1), (1, 2)]);
        let v = parse_query("V(X, X) :- E(X, X)").unwrap();
        assert!(still_derivable(&db, &v, &tuple![1, 1]).unwrap());
        assert!(!still_derivable(&db, &v, &tuple![1, 2]).unwrap());
        assert!(!still_derivable(&db, &v, &tuple![1]).unwrap());
    }

    #[test]
    fn unrelated_relation_yields_empty_delta() {
        let v = parse_query("V(X) :- E(X, Y)").unwrap();
        let db = edge_db(&[(1, 2)]);
        assert!(insert_delta(&db, &v, "F", &tuple![9, 9])
            .unwrap()
            .is_empty());
    }
}

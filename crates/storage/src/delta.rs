//! Delta evaluation for materialized conjunctive-query views.
//!
//! A materialized view is a relation computed once from a base database.
//! When a single tuple is inserted into (or deleted from) a base relation,
//! recomputing every view from scratch wastes the work that produced the
//! still-valid rows. This module implements the standard semi-naive delta
//! rules for select-project-join views under **set semantics**:
//!
//! * **Insertion** of `t` into `R`: the new view rows are exactly the rows
//!   derivable with `t` substituted into *some* body atom over `R` — the
//!   union, over every occurrence of `R` in the view body, of the view
//!   evaluated with that atom bound to `t` ([`insert_delta`]). Evaluating
//!   over the post-insertion database makes derivations that use `t` in
//!   several positions at once come out of a single bound evaluation.
//! * **Deletion** of `t` from `R`: rows that used `t` in some derivation
//!   *may* lose support, but set semantics means an alternative derivation
//!   can keep them alive. [`delete_candidates`] enumerates the at-risk rows
//!   over the pre-deletion database; [`still_derivable`] re-checks each one
//!   over the post-deletion database, and only unsupported rows are removed.
//!
//! **Batch (multi-tuple) updates** generalize both rules: a transaction
//! mixing inserts and deletes is first *normalized* against the
//! pre-batch database into its net effect ([`Changeset::net`] — ops that
//! cancel out, re-insert a present tuple, or delete an absent one
//! contribute no delta work at all), then
//!
//! * [`insert_delta_batch`] binds **each net-inserted tuple once** and
//!   unions the bound evaluations over the single post-batch database
//!   (derivations joining two freshly inserted tuples are found because
//!   both are present in that database), and
//! * [`delete_candidates_batch`] unions the at-risk rows of each
//!   net-deleted tuple over the single pre-batch database; the caller
//!   re-checks every candidate with [`still_derivable`] against the
//!   single **post-batch** database — not per-tuple intermediates — so a
//!   row that loses one support but gains another inside the same batch
//!   is kept.
//!
//! The functions are pure with respect to the database they are given; the
//! caller (the service-layer view cache) decides which snapshot plays the
//! "before" and "after" role.

use std::collections::{BTreeMap, BTreeSet};

use citesys_cq::{ConjunctiveQuery, Substitution, Symbol, Term};

use crate::database::Database;
use crate::error::StorageError;
use crate::eval::evaluate;
use crate::tuple::Tuple;
use crate::versioned::Op;

/// Binds body atom `idx` of `view` to the ground tuple `t`, returning the
/// specialized query (every variable of the atom replaced by the matching
/// constant throughout the view). Returns `None` when the atom cannot
/// match `t` at all — arity mismatch, a constant position that disagrees,
/// or a repeated variable bound to two different values.
pub fn bind_atom(view: &ConjunctiveQuery, idx: usize, t: &Tuple) -> Option<ConjunctiveQuery> {
    let atom = view.body.get(idx)?;
    if atom.arity() != t.arity() {
        return None;
    }
    let mut subst = Substitution::new();
    for (term, v) in atom.terms.iter().zip(t.values()) {
        match term {
            Term::Const(c) => {
                if c != v {
                    return None;
                }
            }
            Term::Var(var) => match subst.get(var) {
                Some(Term::Const(prev)) if prev == v => {}
                Some(_) => return None,
                None => subst.bind(var.clone(), Term::Const(v.clone())),
            },
        }
    }
    Some(view.apply(&subst))
}

/// Union of the view evaluated with each `rel`-occurrence bound to `t`,
/// accumulated into `out` — the shared core of [`insert_delta`],
/// [`delete_candidates`] and their batch variants.
fn bound_rows_into(
    db: &Database,
    view: &ConjunctiveQuery,
    rel: &str,
    t: &Tuple,
    out: &mut BTreeSet<Tuple>,
) -> Result<(), StorageError> {
    for idx in 0..view.body.len() {
        if view.body[idx].predicate.as_str() != rel {
            continue;
        }
        let Some(bound) = bind_atom(view, idx, t) else {
            continue;
        };
        let ans = evaluate(db, &bound)?;
        out.extend(ans.rows.into_iter().map(|r| r.tuple));
    }
    Ok(())
}

/// [`bound_rows_into`] for a single tuple, returning the sorted rows.
fn bound_rows(
    db: &Database,
    view: &ConjunctiveQuery,
    rel: &str,
    t: &Tuple,
) -> Result<Vec<Tuple>, StorageError> {
    let mut out: BTreeSet<Tuple> = BTreeSet::new();
    bound_rows_into(db, view, rel, t, &mut out)?;
    Ok(out.into_iter().collect())
}

/// Rows added to `view`'s materialization by inserting `t` into `rel`.
/// `db_after` must be the database **after** the insertion (so joins
/// between `t` and itself are found). Rows already present in the
/// materialization may be returned; set-semantics insertion makes
/// re-adding them a no-op.
pub fn insert_delta(
    db_after: &Database,
    view: &ConjunctiveQuery,
    rel: &str,
    t: &Tuple,
) -> Result<Vec<Tuple>, StorageError> {
    bound_rows(db_after, view, rel, t)
}

/// Rows of `view`'s materialization that *may* lose support when `t` is
/// deleted from `rel`, evaluated over `db_before` — the database **before**
/// the deletion (afterwards the supporting derivations are gone). Each
/// candidate must be re-checked with [`still_derivable`] over the
/// post-deletion database; an alternative derivation keeps the row alive.
pub fn delete_candidates(
    db_before: &Database,
    view: &ConjunctiveQuery,
    rel: &str,
    t: &Tuple,
) -> Result<Vec<Tuple>, StorageError> {
    bound_rows(db_before, view, rel, t)
}

/// True when `row` is (still) an output of `view` over `db`: the view head
/// is bound to the row's constants and the specialized query is checked
/// for non-emptiness.
pub fn still_derivable(
    db: &Database,
    view: &ConjunctiveQuery,
    row: &Tuple,
) -> Result<bool, StorageError> {
    if view.head.terms.len() != row.arity() {
        return Ok(false);
    }
    let mut subst = Substitution::new();
    for (term, v) in view.head.terms.iter().zip(row.values()) {
        match term {
            Term::Const(c) => {
                if c != v {
                    return Ok(false);
                }
            }
            Term::Var(var) => match subst.get(var) {
                Some(Term::Const(prev)) if prev == v => {}
                Some(_) => return Ok(false),
                None => subst.bind(var.clone(), Term::Const(v.clone())),
            },
        }
    }
    let bound = view.apply(&subst);
    Ok(!evaluate(db, &bound)?.rows.is_empty())
}

/// Rows added to `view`'s materialization by a batch of insertions.
/// `db_after` must be the single **post-batch** database; each inserted
/// tuple is bound once and the bound evaluations are unioned, so a
/// derivation joining two tuples inserted by the same batch is found
/// (both are present in `db_after`). Rows already present in the
/// materialization may be returned; set-semantics insertion makes
/// re-adding them a no-op.
pub fn insert_delta_batch(
    db_after: &Database,
    view: &ConjunctiveQuery,
    inserted: &[(Symbol, Tuple)],
) -> Result<Vec<Tuple>, StorageError> {
    let mut out: BTreeSet<Tuple> = BTreeSet::new();
    for (rel, t) in inserted {
        bound_rows_into(db_after, view, rel.as_str(), t, &mut out)?;
    }
    Ok(out.into_iter().collect())
}

/// Rows of `view`'s materialization that *may* lose support under a
/// batch of deletions, evaluated over the single **pre-batch** database.
/// Re-check every candidate with [`still_derivable`] against the single
/// post-batch database (never per-tuple intermediates): a row whose
/// support migrates from a deleted tuple to one inserted by the same
/// batch stays alive.
pub fn delete_candidates_batch(
    db_before: &Database,
    view: &ConjunctiveQuery,
    deleted: &[(Symbol, Tuple)],
) -> Result<Vec<Tuple>, StorageError> {
    let mut out: BTreeSet<Tuple> = BTreeSet::new();
    for (rel, t) in deleted {
        bound_rows_into(db_before, view, rel.as_str(), t, &mut out)?;
    }
    Ok(out.into_iter().collect())
}

// ---------------------------------------------------------------------------
// Changesets: ordered multi-tuple transactions
// ---------------------------------------------------------------------------

/// An ordered batch of insert/delete operations applied as one
/// transaction: [`apply`](Changeset::apply) is all-or-nothing (failed
/// batches are rolled back), and [`net`](Changeset::net) normalizes the
/// sequence into the net inserted/deleted tuples the delta rules need —
/// a delete-then-reinsert of the same tuple, an insert of an
/// already-present tuple, or a delete of an absent one all net to
/// nothing and cost no delta work.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Changeset {
    ops: Vec<Op>,
}

/// The net effect of a [`Changeset`] against a specific pre-batch
/// database: which tuples end up inserted and which end up deleted once
/// in-batch cancellations and no-ops are removed.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct NetChanges {
    /// Tuples present after the batch that were absent before.
    pub inserts: Vec<(Symbol, Tuple)>,
    /// Tuples absent after the batch that were present before.
    pub deletes: Vec<(Symbol, Tuple)>,
}

impl NetChanges {
    /// True when the batch leaves the database unchanged.
    pub fn is_empty(&self) -> bool {
        self.inserts.is_empty() && self.deletes.is_empty()
    }

    /// The relations actually changed by the batch.
    pub fn relations(&self) -> BTreeSet<&str> {
        self.inserts
            .iter()
            .chain(self.deletes.iter())
            .map(|(rel, _)| rel.as_str())
            .collect()
    }
}

impl Changeset {
    /// An empty changeset.
    pub fn new() -> Self {
        Changeset::default()
    }

    /// A changeset over pre-recorded operations in application order
    /// (e.g. a versioned store's pending log, replayed as one batch for
    /// delta maintenance).
    pub fn from_ops(ops: Vec<Op>) -> Self {
        Changeset { ops }
    }

    /// Appends an insertion; ops apply in append order.
    pub fn insert(&mut self, rel: &str, t: Tuple) -> &mut Self {
        self.ops.push(Op::Insert(Symbol::new(rel), t));
        self
    }

    /// Appends a deletion; ops apply in append order.
    pub fn delete(&mut self, rel: &str, t: Tuple) -> &mut Self {
        self.ops.push(Op::Delete(Symbol::new(rel), t));
        self
    }

    /// The buffered operations in application order.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Number of buffered operations (not the net change count).
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when no operations are buffered.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Normalizes the op sequence against `db_before` (the database the
    /// batch will be applied to) into its net effect. Presence is
    /// simulated per tuple in op order, so sequential semantics hold:
    /// `delete R(t); insert R(t)` nets to nothing, and only tuples whose
    /// final presence differs from their initial presence appear in the
    /// result. Unknown relations are treated as absent (the subsequent
    /// [`apply`](Changeset::apply) is what validates and fails).
    pub fn net(&self, db_before: &Database) -> NetChanges {
        let mut state: BTreeMap<(&Symbol, &Tuple), (bool, bool)> = BTreeMap::new();
        for op in &self.ops {
            let (rel, t, inserts) = match op {
                Op::Insert(rel, t) => (rel, t, true),
                Op::Delete(rel, t) => (rel, t, false),
            };
            let entry = state.entry((rel, t)).or_insert_with(|| {
                let present = db_before
                    .relation(rel.as_str())
                    .map(|r| r.contains(t))
                    .unwrap_or(false);
                (present, present)
            });
            entry.1 = inserts;
        }
        let mut net = NetChanges::default();
        for ((rel, t), (was, is)) in state {
            match (was, is) {
                (false, true) => net.inserts.push((rel.clone(), t.clone())),
                (true, false) => net.deletes.push((rel.clone(), t.clone())),
                _ => {}
            }
        }
        net
    }

    /// Applies the batch to `db` **atomically**: ops run in order, and on
    /// the first failure (unknown relation, key violation, …) every
    /// already-applied op is undone in reverse order before the error is
    /// returned, leaving `db` exactly as it was. Returns the effective
    /// ops — those that actually changed the database — for the caller's
    /// log (set-semantics no-ops are skipped, mirroring
    /// [`VersionedDatabase`](crate::versioned::VersionedDatabase)).
    pub fn apply(&self, db: &mut Database) -> Result<Vec<Op>, StorageError> {
        let mut applied: Vec<Op> = Vec::new();
        for op in &self.ops {
            let changed = match op {
                Op::Insert(rel, t) => db.insert(rel.as_str(), t.clone()),
                Op::Delete(rel, t) => db.delete(rel.as_str(), t),
            };
            match changed {
                Ok(true) => applied.push(op.clone()),
                Ok(false) => {}
                Err(e) => {
                    for undo in applied.iter().rev() {
                        match undo {
                            Op::Insert(rel, t) => {
                                db.delete(rel.as_str(), t).expect("undo of applied insert");
                            }
                            Op::Delete(rel, t) => {
                                db.insert(rel.as_str(), t.clone())
                                    .expect("undo of applied delete");
                            }
                        }
                    }
                    return Err(e);
                }
            }
        }
        Ok(applied)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::RelationSchema;
    use crate::tuple;
    use citesys_cq::{parse_query, ValueType};

    fn edge_db(edges: &[(i64, i64)]) -> Database {
        let mut db = Database::new();
        db.create_relation(RelationSchema::from_parts(
            "E",
            &[("A", ValueType::Int), ("B", ValueType::Int)],
            &[],
        ))
        .unwrap();
        for &(a, b) in edges {
            db.insert("E", tuple![a, b]).unwrap();
        }
        db
    }

    fn materialize(db: &Database, view: &ConjunctiveQuery) -> BTreeSet<Tuple> {
        evaluate(db, view)
            .unwrap()
            .rows
            .into_iter()
            .map(|r| r.tuple)
            .collect()
    }

    #[test]
    fn bind_atom_substitutes_throughout() {
        let v = parse_query("V(X, Z) :- E(X, Y), E(Y, Z)").unwrap();
        let bound = bind_atom(&v, 0, &tuple![1, 2]).unwrap();
        assert_eq!(bound.to_string(), "V(1, Z) :- E(1, 2), E(2, Z)");
    }

    #[test]
    fn bind_atom_rejects_impossible_matches() {
        let v = parse_query("V(X) :- E(X, 5)").unwrap();
        assert!(bind_atom(&v, 0, &tuple![1, 6]).is_none(), "constant clash");
        assert!(bind_atom(&v, 0, &tuple![1]).is_none(), "arity mismatch");
        let rep = parse_query("V(X) :- E(X, X)").unwrap();
        assert!(bind_atom(&rep, 0, &tuple![1, 2]).is_none(), "repeated var");
        assert!(bind_atom(&rep, 0, &tuple![3, 3]).is_some());
    }

    #[test]
    fn insert_delta_matches_recompute() {
        // Two-hop view over a growing edge relation.
        let v = parse_query("V(X, Z) :- E(X, Y), E(Y, Z)").unwrap();
        let mut db = edge_db(&[(1, 2)]);
        let mut mat = materialize(&db, &v);
        for &(a, b) in &[(2, 3), (3, 1), (2, 2), (1, 2)] {
            db.insert("E", tuple![a, b]).unwrap();
            for row in insert_delta(&db, &v, "E", &tuple![a, b]).unwrap() {
                mat.insert(row);
            }
            assert_eq!(mat, materialize(&db, &v), "after inserting ({a},{b})");
        }
    }

    #[test]
    fn insert_delta_self_join_single_tuple() {
        // A self-loop derives (4,4) using the new tuple at BOTH atoms; the
        // post-insertion evaluation finds it from either binding.
        let v = parse_query("V(X, Z) :- E(X, Y), E(Y, Z)").unwrap();
        let mut db = edge_db(&[]);
        db.insert("E", tuple![4, 4]).unwrap();
        let delta = insert_delta(&db, &v, "E", &tuple![4, 4]).unwrap();
        assert_eq!(delta, vec![tuple![4, 4]]);
    }

    #[test]
    fn delete_keeps_rows_with_alternative_support() {
        // (1,3) is derivable via Y=2 and Y=5; deleting one path keeps it.
        let v = parse_query("V(X, Z) :- E(X, Y), E(Y, Z)").unwrap();
        let mut db = edge_db(&[(1, 2), (2, 3), (1, 5), (5, 3)]);
        let mut mat = materialize(&db, &v);
        let gone = tuple![1, 2];
        let candidates = delete_candidates(&db, &v, "E", &gone).unwrap();
        assert!(candidates.contains(&tuple![1, 3]));
        db.delete("E", &gone).unwrap();
        for c in candidates {
            if !still_derivable(&db, &v, &c).unwrap() {
                mat.remove(&c);
            }
        }
        assert_eq!(mat, materialize(&db, &v), "alternative derivation kept");
        assert!(mat.contains(&tuple![1, 3]));
    }

    #[test]
    fn delete_removes_unsupported_rows() {
        let v = parse_query("V(X, Z) :- E(X, Y), E(Y, Z)").unwrap();
        let mut db = edge_db(&[(1, 2), (2, 3)]);
        let mut mat = materialize(&db, &v);
        assert!(mat.contains(&tuple![1, 3]));
        let gone = tuple![2, 3];
        let candidates = delete_candidates(&db, &v, "E", &gone).unwrap();
        db.delete("E", &gone).unwrap();
        for c in candidates {
            if !still_derivable(&db, &v, &c).unwrap() {
                mat.remove(&c);
            }
        }
        assert_eq!(mat, materialize(&db, &v));
        assert!(mat.is_empty());
    }

    #[test]
    fn still_derivable_respects_head_constants_and_repeats() {
        let db = edge_db(&[(1, 1), (1, 2)]);
        let v = parse_query("V(X, X) :- E(X, X)").unwrap();
        assert!(still_derivable(&db, &v, &tuple![1, 1]).unwrap());
        assert!(!still_derivable(&db, &v, &tuple![1, 2]).unwrap());
        assert!(!still_derivable(&db, &v, &tuple![1]).unwrap());
    }

    #[test]
    fn unrelated_relation_yields_empty_delta() {
        let v = parse_query("V(X) :- E(X, Y)").unwrap();
        let db = edge_db(&[(1, 2)]);
        assert!(insert_delta(&db, &v, "F", &tuple![9, 9])
            .unwrap()
            .is_empty());
    }

    /// Applies the batch delta rules for `changes` to `mat` the way the
    /// view cache does: candidates over the pre-batch db, recheck and
    /// insert delta over the single post-batch db.
    fn batch_maintain(
        db: &mut Database,
        v: &ConjunctiveQuery,
        mat: &mut BTreeSet<Tuple>,
        changes: &Changeset,
    ) {
        let net = changes.net(db);
        let candidates = delete_candidates_batch(db, v, &net.deletes).unwrap();
        changes.apply(db).unwrap();
        for c in candidates {
            if !still_derivable(db, v, &c).unwrap() {
                mat.remove(&c);
            }
        }
        for row in insert_delta_batch(db, v, &net.inserts).unwrap() {
            mat.insert(row);
        }
    }

    #[test]
    fn batch_mixed_inserts_and_deletes_match_recompute() {
        let v = parse_query("V(X, Z) :- E(X, Y), E(Y, Z)").unwrap();
        let mut db = edge_db(&[(1, 2), (2, 3), (3, 4)]);
        let mut mat = materialize(&db, &v);
        // One transaction: drop the 2→3 hop, add two new edges that form a
        // join among themselves (5→6→1) and re-route 2→4.
        let mut changes = Changeset::new();
        changes
            .delete("E", tuple![2, 3])
            .insert("E", tuple![5, 6])
            .insert("E", tuple![6, 1])
            .insert("E", tuple![2, 4]);
        batch_maintain(&mut db, &v, &mut mat, &changes);
        assert_eq!(mat, materialize(&db, &v));
        // (5,1) joins two tuples inserted by the same batch.
        assert!(mat.contains(&tuple![5, 1]));
        // (1,3) lost its only support; (1,4) gained one.
        assert!(!mat.contains(&tuple![1, 3]));
        assert!(mat.contains(&tuple![1, 4]));
    }

    #[test]
    fn batch_support_migration_within_one_batch() {
        // (1,3) is supported by E(2,3); the batch deletes that support and
        // inserts E(5,3) + E(1,5), re-deriving (1,3) via the new path. The
        // recheck against the single post-batch database keeps the row.
        let v = parse_query("V(X, Z) :- E(X, Y), E(Y, Z)").unwrap();
        let mut db = edge_db(&[(1, 2), (2, 3)]);
        let mut mat = materialize(&db, &v);
        assert!(mat.contains(&tuple![1, 3]));
        let mut changes = Changeset::new();
        changes
            .delete("E", tuple![2, 3])
            .insert("E", tuple![1, 5])
            .insert("E", tuple![5, 3]);
        batch_maintain(&mut db, &v, &mut mat, &changes);
        assert_eq!(mat, materialize(&db, &v));
        assert!(mat.contains(&tuple![1, 3]), "support migrated, row kept");
    }

    #[test]
    fn net_cancels_delete_then_reinsert() {
        let db = edge_db(&[(1, 2)]);
        let mut changes = Changeset::new();
        changes.delete("E", tuple![1, 2]).insert("E", tuple![1, 2]);
        let net = changes.net(&db);
        assert!(net.is_empty(), "delete-then-reinsert nets to nothing");
        // And the batch-maintained materialization matches recompute.
        let v = parse_query("V(X) :- E(X, Y)").unwrap();
        let mut db = db;
        let mut mat = materialize(&db, &v);
        batch_maintain(&mut db, &v, &mut mat, &changes);
        assert_eq!(mat, materialize(&db, &v));
    }

    #[test]
    fn net_skips_noop_ops() {
        let db = edge_db(&[(1, 2)]);
        let mut changes = Changeset::new();
        changes
            .insert("E", tuple![1, 2]) // already present: no-op
            .delete("E", tuple![9, 9]) // never existed: no-op
            .insert("E", tuple![3, 4]) // effective
            .insert("F", tuple![7]); // unknown relation: treated absent
        let net = changes.net(&db);
        assert_eq!(net.deletes, vec![]);
        assert_eq!(
            net.inserts,
            vec![
                (Symbol::new("E"), tuple![3, 4]),
                (Symbol::new("F"), tuple![7]),
            ]
        );
        assert_eq!(net.relations(), ["E", "F"].into_iter().collect());
        // insert-then-delete inside the batch also cancels.
        let mut cancel = Changeset::new();
        cancel.insert("E", tuple![5, 5]).delete("E", tuple![5, 5]);
        assert!(cancel.net(&db).is_empty());
    }

    #[test]
    fn apply_rolls_back_on_failure() {
        let mut db = edge_db(&[(1, 2)]);
        let mut changes = Changeset::new();
        changes
            .insert("E", tuple![3, 4])
            .delete("E", tuple![1, 2])
            .insert("Nope", tuple![0]); // fails: unknown relation
        let before: BTreeSet<Tuple> = db.relation("E").unwrap().scan().cloned().collect();
        assert!(changes.apply(&mut db).is_err());
        let after: BTreeSet<Tuple> = db.relation("E").unwrap().scan().cloned().collect();
        assert_eq!(before, after, "failed batch fully rolled back");
    }

    #[test]
    fn apply_reports_effective_ops_only() {
        let mut db = edge_db(&[(1, 2)]);
        let mut changes = Changeset::new();
        changes
            .insert("E", tuple![1, 2]) // duplicate: not effective
            .insert("E", tuple![3, 4])
            .delete("E", tuple![9, 9]); // miss: not effective
        let applied = changes.apply(&mut db).unwrap();
        assert_eq!(applied, vec![Op::Insert(Symbol::new("E"), tuple![3, 4])]);
        assert_eq!(changes.len(), 3);
        assert!(!changes.is_empty());
    }
}

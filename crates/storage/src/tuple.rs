//! Tuples: fixed-arity rows of values.

use std::fmt;

use serde::{Deserialize, Serialize};

use citesys_cq::Value;

/// An immutable database tuple.
///
/// Stored as a boxed slice: two words on the stack instead of `Vec`'s three,
/// and the arity never changes after construction (see the type-size
/// guidance in the Rust Performance Book).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Tuple(Box<[Value]>);

impl Tuple {
    /// Builds a tuple from values.
    pub fn new(values: impl Into<Vec<Value>>) -> Self {
        Tuple(values.into().into_boxed_slice())
    }

    /// Arity of the tuple.
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// Returns the value at `pos`, if in range.
    pub fn get(&self, pos: usize) -> Option<&Value> {
        self.0.get(pos)
    }

    /// Values as a slice.
    pub fn values(&self) -> &[Value] {
        &self.0
    }

    /// Projects the tuple onto the given positions (positions must be in
    /// range; panics otherwise, which indicates a planner bug).
    pub fn project(&self, positions: &[usize]) -> Tuple {
        Tuple(positions.iter().map(|&p| self.0[p].clone()).collect())
    }
}

impl fmt::Debug for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v:?}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(v: Vec<Value>) -> Self {
        Tuple::new(v)
    }
}

impl FromIterator<Value> for Tuple {
    fn from_iter<I: IntoIterator<Item = Value>>(iter: I) -> Self {
        Tuple(iter.into_iter().collect())
    }
}

/// Builds a tuple from heterogeneous literals, e.g.
/// `tuple![11, "Calcitonin", "C1"]`.
#[macro_export]
macro_rules! tuple {
    ($($v:expr),* $(,)?) => {
        $crate::tuple::Tuple::new(vec![$(citesys_cq::Value::from($v)),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let t = tuple![11, "Calcitonin", "C1"];
        assert_eq!(t.arity(), 3);
        assert_eq!(t.get(0), Some(&Value::Int(11)));
        assert_eq!(t.get(1), Some(&Value::text("Calcitonin")));
        assert_eq!(t.get(3), None);
    }

    #[test]
    fn projection() {
        let t = tuple![1, "a", true];
        let p = t.project(&[2, 0]);
        assert_eq!(p, tuple![true, 1]);
    }

    #[test]
    fn display_and_debug() {
        let t = tuple![1, "a"];
        assert_eq!(t.to_string(), "(1, a)");
        assert_eq!(format!("{t:?}"), "(1, \"a\")");
    }

    #[test]
    fn from_iterator() {
        let t: Tuple = (1..=3).map(Value::from).collect();
        assert_eq!(t, tuple![1, 2, 3]);
    }
}

//! Multi-version storage for citation fixity (§3 of the paper).
//!
//! "Data may evolve over time, and a citation should bring back the data as
//! seen at the time it was cited." The [`VersionedDatabase`] keeps an
//! append-only operation log; committing produces a new immutable version
//! number, and any historical version can be materialized as a snapshot.
//! Citations store `(version, query, digest)` and are re-executable against
//! the snapshot (see `citesys-core::fixity`).

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::Mutex;

use citesys_cq::Symbol;

use crate::database::Database;
use crate::error::StorageError;
use crate::fixity::{digest_database, Digest};
use crate::schema::RelationSchema;
use crate::tuple::Tuple;

/// A logged mutation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Op {
    /// Insert a tuple into a relation.
    Insert(Symbol, Tuple),
    /// Delete a tuple from a relation.
    Delete(Symbol, Tuple),
}

/// A versioned database: current state plus the history since its base
/// version.
///
/// A fresh store starts at base version 0 (the empty database, schema
/// only). Each [`commit`] produces version `n+1`. A **warm restart**
/// ([`restore`]) starts at a non-zero base version — the state a
/// checkpoint captured — with the history before it compacted away:
/// snapshots of compacted versions return
/// [`StorageError::CompactedVersion`]. Snapshots are materialized by
/// replaying the log from the nearest cached snapshot; the cache is
/// behind a `Mutex` so snapshotting works through a shared reference.
///
/// [`commit`]: VersionedDatabase::commit
/// [`restore`]: VersionedDatabase::restore
#[derive(Debug)]
pub struct VersionedDatabase {
    schemas: Vec<RelationSchema>,
    current: Database,
    /// Version the store (re)started from; history before it is gone.
    base_version: u64,
    /// `log[i]` = ops committed in version `base_version + i + 1`.
    log: Vec<Vec<Op>>,
    pending: Vec<Op>,
    snapshot_cache: Mutex<BTreeMap<u64, Arc<Database>>>,
}

impl VersionedDatabase {
    /// Creates a versioned database with the given relation schemas
    /// (version 0 = empty).
    pub fn new(schemas: Vec<RelationSchema>) -> Result<Self, StorageError> {
        let mut db = Database::new();
        for s in &schemas {
            db.create_relation(s.clone())?;
        }
        Ok(VersionedDatabase {
            schemas,
            current: db,
            base_version: 0,
            log: Vec::new(),
            pending: Vec::new(),
            snapshot_cache: Mutex::new(BTreeMap::new()),
        })
    }

    /// Warm-restarts a store from checkpointed state: `base` **is**
    /// version `base_version`, and history before it is compacted away
    /// (snapshots of earlier versions fail with
    /// [`StorageError::CompactedVersion`]). The recovered state replays
    /// forward exactly like a store that never restarted: the next
    /// commit seals `base_version + 1`.
    pub fn restore(
        schemas: Vec<RelationSchema>,
        base: Database,
        base_version: u64,
    ) -> Result<Self, StorageError> {
        // Validate that the base honours the schemas (a checkpoint
        // written by this crate always does; a hand-edited one may not).
        for s in &schemas {
            base.relation(s.name.as_str())?;
        }
        let seed = Arc::new(base.clone());
        Ok(VersionedDatabase {
            schemas,
            current: base,
            base_version,
            log: Vec::new(),
            pending: Vec::new(),
            snapshot_cache: Mutex::new(BTreeMap::from([(base_version, seed)])),
        })
    }

    /// The latest committed version number.
    pub fn latest_version(&self) -> u64 {
        self.base_version + self.log.len() as u64
    }

    /// The version this store (re)started from — 0 for a fresh store,
    /// the checkpoint version after a [`restore`](Self::restore).
    /// Versions before it are compacted and cannot be snapshotted.
    pub fn base_version(&self) -> u64 {
        self.base_version
    }

    /// True if there are uncommitted operations.
    pub fn has_pending(&self) -> bool {
        !self.pending.is_empty()
    }

    /// Read access to the working state (pending ops included).
    pub fn current(&self) -> &Database {
        &self.current
    }

    /// Inserts into the working state. No-op inserts (set semantics) are not
    /// logged.
    pub fn insert(&mut self, rel: &str, t: Tuple) -> Result<bool, StorageError> {
        let changed = self.current.insert(rel, t.clone())?;
        if changed {
            self.pending.push(Op::Insert(Symbol::new(rel), t));
        }
        Ok(changed)
    }

    /// Deletes from the working state. Misses are not logged.
    pub fn delete(&mut self, rel: &str, t: &Tuple) -> Result<bool, StorageError> {
        let changed = self.current.delete(rel, t)?;
        if changed {
            self.pending.push(Op::Delete(Symbol::new(rel), t.clone()));
        }
        Ok(changed)
    }

    /// Applies a whole [`Changeset`](crate::delta::Changeset) to the
    /// working state **atomically**: either every op lands (effective ops
    /// are logged for the next commit; no-ops are skipped, as with
    /// [`insert`](Self::insert)/[`delete`](Self::delete)) or, on the
    /// first failure, the working state is rolled back to exactly what it
    /// was and nothing is logged. Returns how many ops changed the data.
    pub fn apply_changeset(
        &mut self,
        changes: &crate::delta::Changeset,
    ) -> Result<usize, StorageError> {
        let applied = changes.apply(&mut self.current)?;
        let n = applied.len();
        self.pending.extend(applied);
        Ok(n)
    }

    /// The operations recorded since the last [`commit`](Self::commit),
    /// in application order — what the next commit will seal into a
    /// version (and what a delta-maintained service downstream should
    /// carry into its materializations).
    pub fn pending_ops(&self) -> &[Op] {
        &self.pending
    }

    /// Commits pending operations as a new version; returns its number.
    /// Committing with no pending ops still creates a (data-identical)
    /// version, mirroring how curated releases are cut on a schedule.
    pub fn commit(&mut self) -> u64 {
        self.log.push(std::mem::take(&mut self.pending));
        self.latest_version()
    }

    /// Materializes the database as of `version`.
    ///
    /// Pending (uncommitted) operations are never part of a snapshot.
    /// Snapshots are cached; repeated requests for the same or later
    /// versions replay only the missing suffix of the log.
    ///
    /// ```
    /// use citesys_cq::ValueType;
    /// use citesys_storage::{tuple, RelationSchema, VersionedDatabase};
    ///
    /// let schema = RelationSchema::from_parts(
    ///     "R", &[("A", ValueType::Int)], &[0]);
    /// let mut vdb = VersionedDatabase::new(vec![schema]).unwrap();
    /// vdb.insert("R", tuple![1]).unwrap();
    /// let v1 = vdb.commit();
    /// vdb.insert("R", tuple![2]).unwrap();
    /// let v2 = vdb.commit();
    ///
    /// assert_eq!(vdb.snapshot(v1).unwrap().total_tuples(), 1);
    /// assert_eq!(vdb.snapshot(v2).unwrap().total_tuples(), 2);
    /// ```
    pub fn snapshot(&self, version: u64) -> Result<Arc<Database>, StorageError> {
        if version > self.latest_version() {
            return Err(StorageError::UnknownVersion {
                version,
                latest: self.latest_version(),
            });
        }
        if version < self.base_version {
            return Err(StorageError::CompactedVersion {
                version,
                oldest: self.base_version,
            });
        }
        let mut cache = self.snapshot_cache.lock();
        if let Some(hit) = cache.get(&version) {
            return Ok(Arc::clone(hit));
        }
        // Start from the nearest earlier cached snapshot (or empty; a
        // restored store always finds its seeded base snapshot here).
        let (replay_from, mut db) = cache
            .range(..version)
            .next_back()
            .map(|(&v, d)| (v, (**d).clone()))
            .unwrap_or_else(|| {
                let mut fresh = Database::new();
                for s in &self.schemas {
                    fresh
                        .create_relation(s.clone())
                        .expect("schemas validated at construction");
                }
                (self.base_version, fresh)
            });
        let lo = (replay_from - self.base_version) as usize;
        let hi = (version - self.base_version) as usize;
        for ops in &self.log[lo..hi] {
            for op in ops {
                match op {
                    Op::Insert(rel, t) => {
                        db.insert(rel.as_str(), t.clone())
                            .expect("replay of validated op");
                    }
                    Op::Delete(rel, t) => {
                        db.delete(rel.as_str(), t).expect("replay of validated op");
                    }
                }
            }
        }
        let arc = Arc::new(db);
        cache.insert(version, Arc::clone(&arc));
        Ok(arc)
    }

    /// Fixity digest of the database at `version`.
    pub fn digest_at(&self, version: u64) -> Result<Digest, StorageError> {
        Ok(digest_database(self.snapshot(version)?.as_ref()))
    }

    /// Number of operations committed in `version` (1-based; `None` for
    /// version 0, unknown versions, and versions compacted away by a
    /// [`restore`](Self::restore)).
    pub fn ops_in(&self, version: u64) -> Option<usize> {
        if version <= self.base_version || version > self.latest_version() {
            return None;
        }
        Some(self.log[(version - self.base_version - 1) as usize].len())
    }

    /// The operations committed in `version`, in commit order (`None`
    /// under exactly the conditions of [`ops_in`](Self::ops_in)).
    ///
    /// This is the primary-side tailing read for replication: a feed
    /// that knows a follower is at version `v` re-materializes the
    /// changeset of `v + 1` from the in-memory log instead of
    /// re-reading the on-disk WAL.
    pub fn ops_of(&self, version: u64) -> Option<&[Op]> {
        if version <= self.base_version || version > self.latest_version() {
            return None;
        }
        Some(&self.log[(version - self.base_version - 1) as usize])
    }

    /// Compacts in-memory history up to `floor`: the state at `floor`
    /// becomes the new base version, the op-log entries it subsumes are
    /// dropped, and snapshots of versions before `floor` fail with
    /// [`StorageError::CompactedVersion`] from then on. `floor` is
    /// clamped to the latest committed version; a floor at or below the
    /// current base is a no-op. Pending (uncommitted) operations are
    /// untouched. Returns the new base version.
    pub fn compact_to(&mut self, floor: u64) -> Result<u64, StorageError> {
        let floor = floor.min(self.latest_version());
        if floor <= self.base_version {
            return Ok(self.base_version);
        }
        let base = (*self.snapshot(floor)?).clone();
        let drop = (floor - self.base_version) as usize;
        self.log.drain(..drop);
        self.base_version = floor;
        let mut cache = self.snapshot_cache.lock();
        *cache = cache.split_off(&floor);
        cache.insert(floor, Arc::new(base));
        Ok(floor)
    }

    /// The schemas this store was created with.
    pub fn schemas(&self) -> &[RelationSchema] {
        &self.schemas
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;
    use citesys_cq::ValueType;

    fn schemas() -> Vec<RelationSchema> {
        vec![RelationSchema::from_parts(
            "Family",
            &[("FID", ValueType::Int), ("FName", ValueType::Text)],
            &[0],
        )]
    }

    #[test]
    fn version_zero_is_empty() {
        let v = VersionedDatabase::new(schemas()).unwrap();
        assert_eq!(v.latest_version(), 0);
        let s = v.snapshot(0).unwrap();
        assert_eq!(s.total_tuples(), 0);
    }

    #[test]
    fn commit_creates_versions() {
        let mut v = VersionedDatabase::new(schemas()).unwrap();
        v.insert("Family", tuple![11, "Calcitonin"]).unwrap();
        assert!(v.has_pending());
        assert_eq!(v.commit(), 1);
        assert!(!v.has_pending());
        v.insert("Family", tuple![12, "Dopamine"]).unwrap();
        assert_eq!(v.commit(), 2);
        assert_eq!(v.snapshot(1).unwrap().total_tuples(), 1);
        assert_eq!(v.snapshot(2).unwrap().total_tuples(), 2);
    }

    #[test]
    fn pending_excluded_from_snapshots() {
        let mut v = VersionedDatabase::new(schemas()).unwrap();
        v.insert("Family", tuple![11, "Calcitonin"]).unwrap();
        v.commit();
        v.insert("Family", tuple![12, "Dopamine"]).unwrap(); // not committed
        assert_eq!(v.snapshot(1).unwrap().total_tuples(), 1);
        assert_eq!(v.current().total_tuples(), 2);
    }

    #[test]
    fn deletes_replay() {
        let mut v = VersionedDatabase::new(schemas()).unwrap();
        v.insert("Family", tuple![11, "Calcitonin"]).unwrap();
        v.commit(); // v1
        v.delete("Family", &tuple![11, "Calcitonin"]).unwrap();
        v.commit(); // v2
        assert_eq!(v.snapshot(1).unwrap().total_tuples(), 1);
        assert_eq!(v.snapshot(2).unwrap().total_tuples(), 0);
    }

    #[test]
    fn unknown_version_rejected() {
        let v = VersionedDatabase::new(schemas()).unwrap();
        assert!(matches!(
            v.snapshot(5),
            Err(StorageError::UnknownVersion {
                version: 5,
                latest: 0
            })
        ));
    }

    #[test]
    fn snapshot_cache_consistent() {
        let mut v = VersionedDatabase::new(schemas()).unwrap();
        for i in 0..10 {
            v.insert("Family", tuple![i, format!("F{i}")]).unwrap();
            v.commit();
        }
        // Ask for version 10 first (cold), then 5 (replays from scratch),
        // then 7 (starts from cached 5).
        assert_eq!(v.snapshot(10).unwrap().total_tuples(), 10);
        assert_eq!(v.snapshot(5).unwrap().total_tuples(), 5);
        assert_eq!(v.snapshot(7).unwrap().total_tuples(), 7);
        // Same Arc returned on a cache hit.
        let a = v.snapshot(7).unwrap();
        let b = v.snapshot(7).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn digests_differ_across_versions() {
        let mut v = VersionedDatabase::new(schemas()).unwrap();
        v.insert("Family", tuple![11, "Calcitonin"]).unwrap();
        v.commit();
        v.insert("Family", tuple![12, "Dopamine"]).unwrap();
        v.commit();
        let d1 = v.digest_at(1).unwrap();
        let d2 = v.digest_at(2).unwrap();
        assert_ne!(d1, d2);
        // Digest is reproducible.
        assert_eq!(d1, v.digest_at(1).unwrap());
    }

    #[test]
    fn changeset_commit_is_atomic() {
        let mut v = VersionedDatabase::new(schemas()).unwrap();
        v.insert("Family", tuple![11, "Calcitonin"]).unwrap();
        v.commit();
        // A failing batch leaves no trace: no data change, no pending ops.
        let mut bad = crate::delta::Changeset::new();
        bad.insert("Family", tuple![12, "Dopamine"])
            .insert("Nope", tuple![0]);
        assert!(v.apply_changeset(&bad).is_err());
        assert!(!v.has_pending());
        assert_eq!(v.current().total_tuples(), 1);
        // A good batch logs only its effective ops and seals as one version.
        let mut good = crate::delta::Changeset::new();
        good.insert("Family", tuple![11, "Calcitonin"]) // duplicate: no-op
            .insert("Family", tuple![12, "Dopamine"])
            .delete("Family", tuple![11, "Calcitonin"]);
        assert_eq!(v.apply_changeset(&good).unwrap(), 2);
        assert_eq!(v.pending_ops().len(), 2);
        let ver = v.commit();
        assert_eq!(v.ops_in(ver), Some(2));
        assert_eq!(v.snapshot(ver).unwrap().total_tuples(), 1);
    }

    #[test]
    fn noop_mutations_not_logged() {
        let mut v = VersionedDatabase::new(schemas()).unwrap();
        v.insert("Family", tuple![11, "Calcitonin"]).unwrap();
        v.insert("Family", tuple![11, "Calcitonin"]).unwrap(); // duplicate
        v.delete("Family", &tuple![99, "Nope"]).unwrap(); // miss
        let ver = v.commit();
        assert_eq!(v.ops_in(ver), Some(1));
    }

    #[test]
    fn restore_continues_the_version_line() {
        let mut original = VersionedDatabase::new(schemas()).unwrap();
        original.insert("Family", tuple![11, "Calcitonin"]).unwrap();
        original.commit(); // v1
        original.insert("Family", tuple![12, "Dopamine"]).unwrap();
        original.commit(); // v2

        // Warm restart at v2 from the materialized state.
        let base = (*original.snapshot(2).unwrap()).clone();
        let mut restored = VersionedDatabase::restore(schemas(), base, 2).unwrap();
        assert_eq!(restored.base_version(), 2);
        assert_eq!(restored.latest_version(), 2);
        assert_eq!(
            restored.digest_at(2).unwrap(),
            original.digest_at(2).unwrap()
        );
        // Compacted history is rejected, not silently wrong.
        assert!(matches!(
            restored.snapshot(1),
            Err(StorageError::CompactedVersion {
                version: 1,
                oldest: 2
            })
        ));
        assert_eq!(restored.ops_in(1), None);
        assert_eq!(restored.ops_in(2), None, "checkpoint seals no op list");
        // The version line continues exactly where it left off.
        restored.insert("Family", tuple![13, "Ghrelin"]).unwrap();
        assert_eq!(restored.commit(), 3);
        assert_eq!(restored.ops_in(3), Some(1));
        assert_eq!(restored.snapshot(3).unwrap().total_tuples(), 3);
        assert_eq!(restored.snapshot(2).unwrap().total_tuples(), 2);
    }

    #[test]
    fn compact_to_trims_history_and_preserves_the_window() {
        let mut v = VersionedDatabase::new(schemas()).unwrap();
        for i in 0..10 {
            v.insert("Family", tuple![i, format!("F{i}")]).unwrap();
            v.commit();
        }
        let d7 = v.digest_at(7).unwrap();
        let d10 = v.digest_at(10).unwrap();
        assert_eq!(v.compact_to(7).unwrap(), 7);
        assert_eq!(v.base_version(), 7);
        assert_eq!(v.latest_version(), 10);
        // Window [7, 10] still serves, byte-identical digests.
        assert_eq!(v.digest_at(7).unwrap(), d7);
        assert_eq!(v.digest_at(10).unwrap(), d10);
        assert_eq!(v.snapshot(8).unwrap().total_tuples(), 8);
        // Pre-floor history is a compaction error, not silently wrong.
        assert!(matches!(
            v.snapshot(6),
            Err(StorageError::CompactedVersion {
                version: 6,
                oldest: 7
            })
        ));
        assert_eq!(v.ops_in(7), None, "the new base seals no op list");
        assert_eq!(v.ops_in(8), Some(1));
        // Floors at/below base and above latest are clamped no-ops.
        assert_eq!(v.compact_to(3).unwrap(), 7);
        assert_eq!(v.compact_to(99).unwrap(), 10);
        assert_eq!(v.latest_version(), 10);
        // The version line continues.
        v.insert("Family", tuple![100, "New"]).unwrap();
        assert_eq!(v.commit(), 11);
        assert_eq!(v.snapshot(11).unwrap().total_tuples(), 11);
    }

    #[test]
    fn compact_to_keeps_pending_ops() {
        let mut v = VersionedDatabase::new(schemas()).unwrap();
        v.insert("Family", tuple![1, "A"]).unwrap();
        v.commit();
        v.insert("Family", tuple![2, "B"]).unwrap(); // pending
        v.compact_to(1).unwrap();
        assert!(v.has_pending());
        assert_eq!(v.commit(), 2);
        assert_eq!(v.snapshot(2).unwrap().total_tuples(), 2);
    }

    #[test]
    fn restore_rejects_base_missing_schema_relations() {
        let base = Database::new(); // lacks the Family relation
        assert!(VersionedDatabase::restore(schemas(), base, 1).is_err());
    }

    #[test]
    fn empty_commit_allowed() {
        let mut v = VersionedDatabase::new(schemas()).unwrap();
        let ver = v.commit();
        assert_eq!(ver, 1);
        assert_eq!(v.ops_in(1), Some(0));
        assert_eq!(v.digest_at(0).unwrap(), v.digest_at(1).unwrap());
    }
}

//! Conjunctive-query evaluation over the in-memory store.
//!
//! The evaluator returns not just the output tuples but **every binding**
//! (valuation of the query's variables) that produced each tuple — this is
//! exactly what Definitions 2.1/2.2 of the paper need: a citation is built
//! per binding, then bindings for the same output tuple are combined with
//! the alternative operator `+`.
//!
//! Join processing is a straightforward bind-and-probe loop with a greedy
//! join order (most bound variables first, smaller relations preferred) and
//! per-column hash-index probes.

use std::collections::BTreeMap;

use citesys_cq::{ConjunctiveQuery, Symbol, Term, Value};

use crate::database::Database;
use crate::error::StorageError;
use crate::relation::Relation;
use crate::tuple::Tuple;

/// A valuation of query variables (deterministically ordered).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug, Default)]
pub struct Binding {
    map: BTreeMap<Symbol, Value>,
}

impl Binding {
    /// The empty binding.
    pub fn new() -> Self {
        Self::default()
    }

    /// Looks up a variable.
    pub fn get(&self, var: &Symbol) -> Option<&Value> {
        self.map.get(var)
    }

    /// Binds a variable (overwrites).
    pub fn bind(&mut self, var: Symbol, v: Value) {
        self.map.insert(var, v);
    }

    /// Number of bound variables.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when nothing is bound.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterates `(var, value)` pairs in variable order.
    pub fn iter(&self) -> impl Iterator<Item = (&Symbol, &Value)> {
        self.map.iter()
    }

    /// Applies the binding to a term; unbound variables return `None`.
    pub fn eval_term(&self, t: &Term) -> Option<Value> {
        match t {
            Term::Const(c) => Some(c.clone()),
            Term::Var(v) => self.map.get(v).cloned(),
        }
    }

    /// Projects the binding onto a list of variables, in order.
    /// Returns `None` if any variable is unbound.
    pub fn project(&self, vars: &[Symbol]) -> Option<Tuple> {
        vars.iter()
            .map(|v| self.map.get(v).cloned())
            .collect::<Option<Vec<Value>>>()
            .map(Tuple::new)
    }
}

/// One distinct output tuple together with all bindings that produced it.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct AnswerRow {
    /// The output tuple (projection of the head terms).
    pub tuple: Tuple,
    /// Every binding of the query body that yields `tuple`
    /// (the set `β_t` of Definition 2.2).
    pub bindings: Vec<Binding>,
}

/// The full answer of a conjunctive query.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct QueryAnswer {
    /// Distinct output tuples in deterministic (sorted) order.
    pub rows: Vec<AnswerRow>,
}

impl QueryAnswer {
    /// Number of distinct output tuples.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the answer is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Iterates over the distinct output tuples.
    pub fn tuples(&self) -> impl Iterator<Item = &Tuple> {
        self.rows.iter().map(|r| &r.tuple)
    }

    /// Total number of bindings across all rows.
    pub fn total_bindings(&self) -> usize {
        self.rows.iter().map(|r| r.bindings.len()).sum()
    }
}

/// Evaluates a conjunctive query over the database, returning distinct
/// output tuples with their bindings. λ-parameters do not affect
/// evaluation (they are ordinary head variables at this level).
///
/// ```
/// use citesys_cq::{parse_query, ValueType};
/// use citesys_storage::{evaluate, tuple, Database, RelationSchema};
///
/// let mut db = Database::new();
/// db.create_relation(RelationSchema::from_parts(
///     "E", &[("A", ValueType::Int), ("B", ValueType::Int)], &[])).unwrap();
/// db.insert("E", tuple![1, 2]).unwrap();
/// db.insert("E", tuple![2, 3]).unwrap();
///
/// let q = parse_query("Q(X, Z) :- E(X, Y), E(Y, Z)").unwrap();
/// let answer = evaluate(&db, &q).unwrap();
/// assert_eq!(answer.len(), 1);
/// assert_eq!(answer.rows[0].tuple, tuple![1, 3]);
/// // Every binding that produced the tuple is reported (here just one).
/// assert_eq!(answer.rows[0].bindings.len(), 1);
/// ```
pub fn evaluate(db: &Database, q: &ConjunctiveQuery) -> Result<QueryAnswer, StorageError> {
    // Arity validation up front: clearer errors than empty results.
    for atom in &q.body {
        let rel = db.relation(atom.predicate.as_str())?;
        if rel.schema().arity() != atom.arity() {
            return Err(StorageError::QueryArityMismatch {
                relation: atom.predicate.to_string(),
                expected: rel.schema().arity(),
                got: atom.arity(),
            });
        }
    }

    let mut bindings = vec![Binding::new()];
    let mut remaining: Vec<usize> = (0..q.body.len()).collect();

    while !remaining.is_empty() {
        // Greedy choice: maximize bound terms, tie-break on relation size.
        let (pick, _) = remaining
            .iter()
            .enumerate()
            .map(|(i, &ai)| {
                let atom = &q.body[ai];
                let bound = atom
                    .terms
                    .iter()
                    .filter(|t| match t {
                        Term::Const(_) => true,
                        Term::Var(v) => bindings.first().is_some_and(|b| b.get(v).is_some()),
                    })
                    .count();
                let size = db
                    .relation(atom.predicate.as_str())
                    .map(Relation::len)
                    .unwrap_or(usize::MAX);
                (i, (usize::MAX - bound, size))
            })
            .min_by_key(|&(_, k)| k)
            .expect("remaining is non-empty");
        let atom_idx = remaining.swap_remove(pick);
        let atom = &q.body[atom_idx];
        let rel = db.relation(atom.predicate.as_str())?;

        let mut next = Vec::with_capacity(bindings.len());
        for b in &bindings {
            // Pick a probe column: a position whose term evaluates under b.
            let probe = atom
                .terms
                .iter()
                .enumerate()
                .find_map(|(i, t)| b.eval_term(t).map(|v| (i, v)));
            match probe {
                Some((col, v)) => {
                    for t in rel.lookup(col, &v) {
                        if let Some(b2) = extend(b, atom, t) {
                            next.push(b2);
                        }
                    }
                }
                None => {
                    for t in rel.scan() {
                        if let Some(b2) = extend(b, atom, t) {
                            next.push(b2);
                        }
                    }
                }
            }
        }
        bindings = next;
        if bindings.is_empty() {
            break;
        }
    }

    // Project and group by output tuple.
    let mut grouped: BTreeMap<Tuple, Vec<Binding>> = BTreeMap::new();
    for b in bindings {
        let out: Option<Vec<Value>> = q.head.terms.iter().map(|t| b.eval_term(t)).collect();
        let out = out.expect("safe query: every head var is bound by the body");
        grouped.entry(Tuple::new(out)).or_default().push(b);
    }
    let rows = grouped
        .into_iter()
        .map(|(tuple, mut bindings)| {
            bindings.sort();
            bindings.dedup();
            AnswerRow { tuple, bindings }
        })
        .collect();
    Ok(QueryAnswer { rows })
}

/// One step of an [`explain`] plan.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PlanStep {
    /// The atom joined at this step.
    pub atom: String,
    /// Relation cardinality at planning time.
    pub cardinality: usize,
    /// Access path: `Some(col)` = hash-index probe on that column,
    /// `None` = full scan.
    pub probe_column: Option<usize>,
}

/// Explains the greedy join order the evaluator would choose for `q`
/// (static simulation: a variable counts as bound once any earlier atom
/// mentions it).
pub fn explain(db: &Database, q: &ConjunctiveQuery) -> Result<Vec<PlanStep>, StorageError> {
    for atom in &q.body {
        let rel = db.relation(atom.predicate.as_str())?;
        if rel.schema().arity() != atom.arity() {
            return Err(StorageError::QueryArityMismatch {
                relation: atom.predicate.to_string(),
                expected: rel.schema().arity(),
                got: atom.arity(),
            });
        }
    }
    let mut bound: std::collections::BTreeSet<Symbol> = std::collections::BTreeSet::new();
    let mut remaining: Vec<usize> = (0..q.body.len()).collect();
    let mut plan = Vec::with_capacity(q.body.len());
    while !remaining.is_empty() {
        let (pick, _) = remaining
            .iter()
            .enumerate()
            .map(|(i, &ai)| {
                let atom = &q.body[ai];
                let bound_terms = atom
                    .terms
                    .iter()
                    .filter(|t| match t {
                        Term::Const(_) => true,
                        Term::Var(v) => bound.contains(v),
                    })
                    .count();
                let size = db
                    .relation(atom.predicate.as_str())
                    .map(Relation::len)
                    .unwrap_or(usize::MAX);
                (i, (usize::MAX - bound_terms, size))
            })
            .min_by_key(|&(_, k)| k)
            .expect("remaining non-empty");
        let ai = remaining.swap_remove(pick);
        let atom = &q.body[ai];
        let rel = db.relation(atom.predicate.as_str())?;
        let probe_column = atom.terms.iter().position(|t| match t {
            Term::Const(_) => true,
            Term::Var(v) => bound.contains(v),
        });
        plan.push(PlanStep {
            atom: atom.to_string(),
            cardinality: rel.len(),
            probe_column,
        });
        bound.extend(atom.vars().cloned());
    }
    Ok(plan)
}

/// Tries to extend binding `b` so that `atom` matches stored tuple `t`.
fn extend(b: &Binding, atom: &citesys_cq::Atom, t: &Tuple) -> Option<Binding> {
    let mut out = b.clone();
    for (term, v) in atom.terms.iter().zip(t.values()) {
        match term {
            Term::Const(c) => {
                if c != v {
                    return None;
                }
            }
            Term::Var(var) => match out.get(var) {
                Some(bound) => {
                    if bound != v {
                        return None;
                    }
                }
                None => out.bind(var.clone(), v.clone()),
            },
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::RelationSchema;
    use crate::tuple;
    use citesys_cq::{parse_query, ValueType};

    /// The paper's §2 instance: two families named Calcitonin.
    fn paper_db() -> Database {
        let mut d = Database::new();
        d.create_relation(RelationSchema::from_parts(
            "Family",
            &[
                ("FID", ValueType::Int),
                ("FName", ValueType::Text),
                ("Desc", ValueType::Text),
            ],
            &[0],
        ))
        .unwrap();
        d.create_relation(RelationSchema::from_parts(
            "Committee",
            &[("FID", ValueType::Int), ("PName", ValueType::Text)],
            &[0, 1],
        ))
        .unwrap();
        d.create_relation(RelationSchema::from_parts(
            "FamilyIntro",
            &[("FID", ValueType::Int), ("Text", ValueType::Text)],
            &[0],
        ))
        .unwrap();
        d.insert("Family", tuple![11, "Calcitonin", "C1"]).unwrap();
        d.insert("Family", tuple![12, "Calcitonin", "C2"]).unwrap();
        d.insert("Family", tuple![13, "Dopamine", "D1"]).unwrap();
        d.insert("FamilyIntro", tuple![11, "1st"]).unwrap();
        d.insert("FamilyIntro", tuple![12, "2nd"]).unwrap();
        d.insert("Committee", tuple![11, "Alice"]).unwrap();
        d.insert("Committee", tuple![11, "Bob"]).unwrap();
        d.insert("Committee", tuple![12, "Carol"]).unwrap();
        d
    }

    #[test]
    fn single_atom_scan() {
        let db = paper_db();
        let q = parse_query("Q(FID, FName, Desc) :- Family(FID, FName, Desc)").unwrap();
        let a = evaluate(&db, &q).unwrap();
        assert_eq!(a.len(), 3);
        assert_eq!(a.total_bindings(), 3);
    }

    #[test]
    fn paper_join_query_duplicated_name() {
        // Q(FName) :- Family(FID,FName,Desc), FamilyIntro(FID,Text)
        // Two families share the name Calcitonin ⇒ one output tuple with
        // two bindings (the paper's β_t for t = (Calcitonin)).
        let db = paper_db();
        let q =
            parse_query("Q(FName) :- Family(FID, FName, Desc), FamilyIntro(FID, Text)").unwrap();
        let a = evaluate(&db, &q).unwrap();
        assert_eq!(a.len(), 1, "Dopamine has no intro");
        let row = &a.rows[0];
        assert_eq!(row.tuple, tuple!["Calcitonin"]);
        assert_eq!(row.bindings.len(), 2);
        let fids: Vec<i64> = row
            .bindings
            .iter()
            .map(|b| b.get(&Symbol::new("FID")).unwrap().as_int().unwrap())
            .collect();
        assert_eq!(fids, vec![11, 12]);
    }

    #[test]
    fn constants_filter() {
        let db = paper_db();
        let q = parse_query("Q(D) :- Family(11, N, D)").unwrap();
        let a = evaluate(&db, &q).unwrap();
        assert_eq!(a.len(), 1);
        assert_eq!(a.rows[0].tuple, tuple!["C1"]);
    }

    #[test]
    fn repeated_variable_in_atom() {
        let mut db = Database::new();
        db.create_relation(RelationSchema::from_parts(
            "E",
            &[("A", ValueType::Int), ("B", ValueType::Int)],
            &[],
        ))
        .unwrap();
        db.insert("E", tuple![1, 1]).unwrap();
        db.insert("E", tuple![1, 2]).unwrap();
        let q = parse_query("Q(X) :- E(X, X)").unwrap();
        let a = evaluate(&db, &q).unwrap();
        assert_eq!(a.len(), 1);
        assert_eq!(a.rows[0].tuple, tuple![1]);
    }

    #[test]
    fn empty_body_constant_query() {
        let db = paper_db();
        let q = parse_query("C('IUPHAR') :- true").unwrap();
        let a = evaluate(&db, &q).unwrap();
        assert_eq!(a.len(), 1);
        assert_eq!(a.rows[0].tuple, tuple!["IUPHAR"]);
        assert_eq!(a.rows[0].bindings.len(), 1);
        assert!(a.rows[0].bindings[0].is_empty());
    }

    #[test]
    fn empty_result_when_no_match() {
        let db = paper_db();
        let q = parse_query("Q(N) :- Family(99, N, D)").unwrap();
        let a = evaluate(&db, &q).unwrap();
        assert!(a.is_empty());
    }

    #[test]
    fn three_way_join() {
        let db = paper_db();
        let q = parse_query(
            "Q(FName, PName) :- Family(FID, FName, Desc), Committee(FID, PName), FamilyIntro(FID, T)",
        )
        .unwrap();
        let a = evaluate(&db, &q).unwrap();
        // (Calcitonin, Alice), (Calcitonin, Bob), (Calcitonin, Carol)
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn projection_dedupes_tuples() {
        let db = paper_db();
        let q = parse_query("Q(FName) :- Family(FID, FName, Desc)").unwrap();
        let a = evaluate(&db, &q).unwrap();
        assert_eq!(a.len(), 2); // Calcitonin, Dopamine
        let calc = a
            .rows
            .iter()
            .find(|r| r.tuple == tuple!["Calcitonin"])
            .unwrap();
        assert_eq!(calc.bindings.len(), 2);
    }

    #[test]
    fn cartesian_product_without_join_vars() {
        let db = paper_db();
        let q = parse_query("Q(N, T) :- Family(F1, N, D), FamilyIntro(F2, T)").unwrap();
        let a = evaluate(&db, &q).unwrap();
        // 2 distinct names × 2 intro texts = 4 tuples; 3 families × 2 intros = 6 bindings.
        assert_eq!(a.len(), 4);
        assert_eq!(a.total_bindings(), 6);
    }

    #[test]
    fn unknown_relation_is_error() {
        let db = paper_db();
        let q = parse_query("Q(X) :- Nope(X)").unwrap();
        assert!(matches!(
            evaluate(&db, &q),
            Err(StorageError::UnknownRelation { .. })
        ));
    }

    #[test]
    fn wrong_arity_is_error() {
        let db = paper_db();
        let q = parse_query("Q(X) :- Family(X)").unwrap();
        assert!(matches!(
            evaluate(&db, &q),
            Err(StorageError::QueryArityMismatch { .. })
        ));
    }

    #[test]
    fn binding_projection_helper() {
        let db = paper_db();
        let q = parse_query("Q(FID, FName) :- Family(FID, FName, D)").unwrap();
        let a = evaluate(&db, &q).unwrap();
        let b = &a.rows[0].bindings[0];
        let p = b.project(&[Symbol::new("FID")]).unwrap();
        assert_eq!(p.arity(), 1);
        assert!(b.project(&[Symbol::new("Missing")]).is_none());
    }

    #[test]
    fn explain_shows_greedy_order() {
        let db = paper_db();
        // FamilyIntro (2 rows) before Family (3 rows); the second step
        // probes the shared FID column.
        let q =
            parse_query("Q(FName) :- Family(FID, FName, Desc), FamilyIntro(FID, Text)").unwrap();
        let plan = explain(&db, &q).unwrap();
        assert_eq!(plan.len(), 2);
        assert!(plan[0].atom.starts_with("FamilyIntro"));
        assert_eq!(plan[0].probe_column, None, "first atom scans");
        assert!(plan[1].atom.starts_with("Family"));
        assert_eq!(plan[1].probe_column, Some(0), "joins via FID index");
    }

    #[test]
    fn explain_prefers_constants() {
        let db = paper_db();
        let q = parse_query("Q(N) :- Family(11, N, D)").unwrap();
        let plan = explain(&db, &q).unwrap();
        assert_eq!(plan[0].probe_column, Some(0), "constant column probed");
    }

    #[test]
    fn explain_validates_arity() {
        let db = paper_db();
        let q = parse_query("Q(X) :- Family(X)").unwrap();
        assert!(matches!(
            explain(&db, &q),
            Err(StorageError::QueryArityMismatch { .. })
        ));
    }

    #[test]
    fn results_are_deterministic() {
        let db = paper_db();
        let q = parse_query("Q(PName) :- Committee(FID, PName)").unwrap();
        let a1 = evaluate(&db, &q).unwrap();
        let a2 = evaluate(&db, &q).unwrap();
        assert_eq!(a1, a2);
        let names: Vec<String> = a1.tuples().map(|t| t.get(0).unwrap().to_string()).collect();
        assert_eq!(names, ["Alice", "Bob", "Carol"]);
    }
}

//! Error types for the storage layer.

use std::fmt;

use citesys_cq::ValueType;

/// Errors produced by the relational store.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum StorageError {
    /// A relation name was not found in the catalog.
    UnknownRelation {
        /// The missing relation.
        name: String,
    },
    /// A tuple's arity does not match the relation schema.
    ArityMismatch {
        /// Relation being written.
        relation: String,
        /// Schema arity.
        expected: usize,
        /// Tuple arity.
        got: usize,
    },
    /// A tuple value's type does not match the attribute type.
    TypeMismatch {
        /// Relation being written.
        relation: String,
        /// Attribute name.
        attribute: String,
        /// Declared type.
        expected: ValueType,
        /// Actual type.
        got: ValueType,
    },
    /// A key constraint was violated on insert.
    KeyViolation {
        /// Relation being written.
        relation: String,
        /// Rendered key values.
        key: String,
    },
    /// A query referenced a relation with the wrong arity.
    QueryArityMismatch {
        /// Relation referenced.
        relation: String,
        /// Schema arity.
        expected: usize,
        /// Arity used in the query atom.
        got: usize,
    },
    /// A snapshot was requested for a version that does not exist.
    UnknownVersion {
        /// Requested version.
        version: u64,
        /// Latest committed version.
        latest: u64,
    },
    /// A relation with this name already exists.
    DuplicateRelation {
        /// The duplicated name.
        name: String,
    },
    /// A snapshot was requested for a version compacted away by a warm
    /// restart (checkpoint recovery keeps history only from the
    /// checkpoint forward).
    CompactedVersion {
        /// Requested version.
        version: u64,
        /// Oldest version still materializable.
        oldest: u64,
    },
    /// A CSV header declared the same column name twice.
    DuplicateColumn {
        /// Relation being loaded.
        relation: String,
        /// The duplicated column name.
        attribute: String,
    },
    /// A CSV data record failed to parse; `record` is the 1-based data
    /// record number (header excluded) so the failure is findable in a
    /// million-row dump.
    CsvRecord {
        /// Relation being loaded.
        relation: String,
        /// 1-based data record number.
        record: usize,
        /// What went wrong in that record.
        message: String,
    },
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::UnknownRelation { name } => write!(f, "unknown relation: {name}"),
            StorageError::ArityMismatch {
                relation,
                expected,
                got,
            } => write!(
                f,
                "relation {relation}: expected {expected} values, got {got}"
            ),
            StorageError::TypeMismatch {
                relation,
                attribute,
                expected,
                got,
            } => write!(
                f,
                "relation {relation}.{attribute}: expected {expected}, got {got}"
            ),
            StorageError::KeyViolation { relation, key } => {
                write!(f, "relation {relation}: key violation on {key}")
            }
            StorageError::QueryArityMismatch {
                relation,
                expected,
                got,
            } => write!(
                f,
                "query uses {relation} with arity {got}, schema says {expected}"
            ),
            StorageError::UnknownVersion { version, latest } => {
                write!(f, "unknown version {version} (latest is {latest})")
            }
            StorageError::DuplicateRelation { name } => {
                write!(f, "relation already exists: {name}")
            }
            StorageError::CompactedVersion { version, oldest } => write!(
                f,
                "version {version} was compacted by a checkpoint (oldest kept is {oldest})"
            ),
            StorageError::DuplicateColumn {
                relation,
                attribute,
            } => write!(f, "relation {relation}: duplicate csv column '{attribute}'"),
            StorageError::CsvRecord {
                relation,
                record,
                message,
            } => write!(f, "relation {relation}, csv record {record}: {message}"),
        }
    }
}

impl std::error::Error for StorageError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_mention_offenders() {
        let e = StorageError::UnknownRelation {
            name: "Family".into(),
        };
        assert!(e.to_string().contains("Family"));
        let e = StorageError::TypeMismatch {
            relation: "Family".into(),
            attribute: "FID".into(),
            expected: ValueType::Int,
            got: ValueType::Text,
        };
        assert!(e.to_string().contains("expected int, got text"));
    }
}

//! Transactional batch updates through the service stack: a mixed
//! insert/delete changeset lands in **one** snapshot swap with
//! delta-maintained caches, is atomic under failure, and the delta
//! edge cases (delete-then-reinsert, re-insert of a present tuple,
//! delete of an absent tuple) are all equivalent to full recomputation
//! and cost no delta work when they net to nothing.

use std::sync::Arc;

use citesys_core::paper;
use citesys_core::{
    Changeset, CitationMode, CitationService, CitedAnswer, EngineOptions, IncrementalEngine,
};
use citesys_cq::ConjunctiveQuery;
use citesys_storage::tuple;

fn engine() -> IncrementalEngine {
    IncrementalEngine::new(
        paper::paper_database(),
        paper::paper_registry(),
        EngineOptions {
            mode: CitationMode::Formal,
            ..Default::default()
        },
    )
}

/// Cites `q` with a cold service over the engine's current database —
/// the full-recompute ground truth a delta-maintained answer must match.
fn recompute(e: &IncrementalEngine, q: &ConjunctiveQuery) -> CitedAnswer {
    CitationService::builder()
        .database(e.db().clone())
        .registry(Arc::clone(e.snapshot_service().registry()))
        .mode(CitationMode::Formal)
        .build()
        .unwrap()
        .cite(q)
        .unwrap()
}

fn assert_matches_recompute(e: &mut IncrementalEngine, q: &ConjunctiveQuery) {
    let cached = e.cite(q).unwrap();
    let fresh = recompute(e, q);
    assert_eq!(cached.answer, fresh.answer);
    let cached_exprs: Vec<String> = cached.tuples.iter().map(|t| t.expr().to_string()).collect();
    let fresh_exprs: Vec<String> = fresh.tuples.iter().map(|t| t.expr().to_string()).collect();
    assert_eq!(cached_exprs, fresh_exprs);
}

#[test]
fn mixed_batch_is_one_snapshot_swap() {
    let mut e = engine();
    let q = paper::paper_query();
    e.cite(&q).unwrap();
    let warm = e.view_cache_stats();
    assert_eq!(warm.materializations, 3, "{warm:?}");

    // One transaction touching FamilyIntro twice (insert + delete) and
    // Committee once: V3 (FamilyIntro body) must be carried by exactly
    // ONE delta application — not one per tuple — and V1/V2 exactly once
    // as untouched, proving the whole batch produced a single swap.
    let mut changes = Changeset::new();
    changes
        .insert("FamilyIntro", tuple![13, "3rd"])
        .delete("FamilyIntro", tuple![12, "2nd"])
        .insert("Committee", tuple![13, "Dan"]);
    assert_eq!(e.apply(&changes).unwrap(), 3);

    let s = e.view_cache_stats();
    assert_eq!(s.materializations, 3, "nothing re-materialized: {s:?}");
    assert_eq!(s.deltas_applied - warm.deltas_applied, 1, "{s:?}");
    assert_eq!(s.untouched - warm.untouched, 2, "{s:?}");
    assert_eq!(s.drops, 0, "{s:?}");

    // The maintained answer equals full recomputation, and the plan
    // survived the swap.
    assert_matches_recompute(&mut e, &q);
    let cited = e.cite(&q).unwrap();
    assert_eq!(cited.answer.len(), 2, "Dopamine in, Calcitonin-2nd out");
}

#[test]
fn transaction_builder_commits_as_one_batch() {
    let mut e = engine();
    let q = paper::paper_query();
    e.cite(&q).unwrap();
    let before = e.view_cache_stats();

    let mut txn = e.begin();
    txn.insert("FamilyIntro", tuple![13, "3rd"]);
    txn.delete("Committee", tuple![12, "Carol"]);
    assert_eq!(txn.changes().len(), 2);
    assert_eq!(txn.commit().unwrap(), 2);

    let s = e.view_cache_stats();
    assert_eq!(s.deltas_applied - before.deltas_applied, 1, "{s:?}");
    assert_matches_recompute(&mut e, &q);

    // Dropping an uncommitted transaction changes nothing.
    let total = e.db().total_tuples();
    {
        let mut txn = e.begin();
        txn.insert("Committee", tuple![11, "Never"]);
    }
    assert_eq!(e.db().total_tuples(), total);
}

#[test]
fn delete_then_reinsert_in_one_batch_nets_to_nothing() {
    let mut e = engine();
    let q = paper::paper_query();
    e.cite(&q).unwrap();
    let before = e.view_cache_stats();

    // FamilyIntro(11, '1st') exists: delete + reinsert inside one batch
    // must leave the database — and the materializations — untouched,
    // with zero delta work (every view counted `untouched`).
    let mut changes = Changeset::new();
    changes
        .delete("FamilyIntro", tuple![11, "1st"])
        .insert("FamilyIntro", tuple![11, "1st"]);
    assert_eq!(e.apply(&changes).unwrap(), 2, "both ops were effective");

    let s = e.view_cache_stats();
    assert_eq!(s.deltas_applied, before.deltas_applied, "no delta: {s:?}");
    assert_eq!(s.untouched - before.untouched, 3, "all views verbatim");
    assert_eq!(s.materializations, before.materializations);
    assert_matches_recompute(&mut e, &q);
}

#[test]
fn insert_of_present_tuple_is_a_noop_without_delta_work() {
    let mut e = engine();
    let q = paper::paper_query();
    e.cite(&q).unwrap();
    let before = e.view_cache_stats();

    // The tuple is already there: the batch nets to nothing, so even the
    // views whose bodies mention FamilyIntro are carried verbatim.
    let mut changes = Changeset::new();
    changes.insert("FamilyIntro", tuple![11, "1st"]);
    assert_eq!(e.apply(&changes).unwrap(), 0, "set-semantics no-op");

    let s = e.view_cache_stats();
    assert_eq!(s.deltas_applied, before.deltas_applied, "{s:?}");
    assert_eq!(s.untouched - before.untouched, 3, "{s:?}");
    assert_matches_recompute(&mut e, &q);

    // Same through the single-tuple convenience API.
    assert!(!e.insert("FamilyIntro", tuple![11, "1st"]).unwrap());
    let s2 = e.view_cache_stats();
    assert_eq!(s2.deltas_applied, s.deltas_applied, "{s2:?}");
    assert_matches_recompute(&mut e, &q);
}

#[test]
fn delete_of_absent_tuple_is_a_noop_without_delta_work() {
    let mut e = engine();
    let q = paper::paper_query();
    e.cite(&q).unwrap();
    let before = e.view_cache_stats();

    let mut changes = Changeset::new();
    changes.delete("FamilyIntro", tuple![99, "ghost"]);
    assert_eq!(e.apply(&changes).unwrap(), 0);

    let s = e.view_cache_stats();
    assert_eq!(s.deltas_applied, before.deltas_applied, "{s:?}");
    assert_eq!(s.untouched - before.untouched, 3, "{s:?}");
    assert_matches_recompute(&mut e, &q);
}

#[test]
fn failed_batch_rolls_back_and_keeps_engine_usable() {
    let mut e = engine();
    let q = paper::paper_query();
    e.cite(&q).unwrap();
    let total = e.db().total_tuples();

    // Second op violates Family's key: the first (valid) op must be
    // rolled back with it.
    let mut changes = Changeset::new();
    changes
        .insert("FamilyIntro", tuple![13, "3rd"])
        .insert("Family", tuple![11, "Clash", "X"]);
    assert!(e.apply(&changes).is_err());
    assert_eq!(e.db().total_tuples(), total, "batch fully rolled back");

    // The engine still cites correctly against the unchanged data.
    assert_matches_recompute(&mut e, &q);
    assert_eq!(e.cite(&q).unwrap().answer.len(), 1);
}

#[test]
fn batch_equals_sequence_of_single_updates() {
    // The same mixed workload applied (a) as one transaction and (b) as
    // N single-tuple updates must converge to identical citations; (a)
    // does it with one delta application per affected view instead of N.
    let q = paper::paper_query();

    let mut batched = engine();
    batched.cite(&q).unwrap();
    let mut changes = Changeset::new();
    changes
        .insert("FamilyIntro", tuple![13, "3rd"])
        .insert("Family", tuple![14, "Ghrelin", "G1"])
        .insert("FamilyIntro", tuple![14, "4th"])
        .delete("Committee", tuple![11, "Bob"]);
    batched.apply(&changes).unwrap();

    let mut sequential = engine();
    sequential.cite(&q).unwrap();
    sequential.insert("FamilyIntro", tuple![13, "3rd"]).unwrap();
    sequential
        .insert("Family", tuple![14, "Ghrelin", "G1"])
        .unwrap();
    sequential.insert("FamilyIntro", tuple![14, "4th"]).unwrap();
    sequential.delete("Committee", &tuple![11, "Bob"]).unwrap();

    let a = batched.cite(&q).unwrap();
    let b = sequential.cite(&q).unwrap();
    assert_eq!(a.answer, b.answer);
    let ax: Vec<String> = a.tuples.iter().map(|t| t.expr().to_string()).collect();
    let bx: Vec<String> = b.tuples.iter().map(|t| t.expr().to_string()).collect();
    assert_eq!(ax, bx);

    // Fewer delta applications for the batch: one per affected view
    // (V1/V2 via Family, V3 via FamilyIntro = 3) versus one per affected
    // view per update for the sequence.
    let sb = batched.view_cache_stats();
    let ss = sequential.view_cache_stats();
    assert_eq!(sb.deltas_applied, 3, "{sb:?}");
    assert!(ss.deltas_applied > sb.deltas_applied, "{ss:?} vs {sb:?}");
}

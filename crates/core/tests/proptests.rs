//! Property-based tests for the citation engine.
//!
//! Random small GtoPdb-shaped instances (families with controlled name
//! duplication, intros for a subset) are cited under both engine modes and
//! several policies; the tests assert the semantic invariants of §2.

use citesys_core::paper;
use citesys_core::{
    CitationMode, CitationService, CiteExpr, EngineOptions, PolicySet, RewritePolicy,
};
use citesys_cq::Value;
use citesys_storage::{evaluate, Database, Tuple};
use proptest::prelude::*;

fn service(db: &Database, options: EngineOptions) -> CitationService {
    CitationService::builder()
        .database(db.clone())
        .registry(paper::paper_registry())
        .options(options)
        .build()
        .unwrap()
}

/// Random instance: families (id, name index, desc index) and which ids
/// get an intro. Small name pool forces duplicate names (multi-binding
/// tuples).
#[derive(Clone, Debug)]
struct Instance {
    families: Vec<(i64, u8, u8)>,
    intros: Vec<i64>,
}

fn instance() -> impl Strategy<Value = Instance> {
    (
        prop::collection::btree_map(0i64..12, (0u8..4, 0u8..6), 1..10),
        prop::collection::btree_set(0i64..12, 0..10),
    )
        .prop_map(|(fams, intros)| Instance {
            families: fams.into_iter().map(|(id, (n, d))| (id, n, d)).collect(),
            intros: intros.into_iter().collect(),
        })
}

fn build_db(inst: &Instance) -> Database {
    let mut db = Database::new();
    for s in paper::paper_schemas() {
        db.create_relation(s).unwrap();
    }
    for &(id, n, d) in &inst.families {
        db.insert(
            "Family",
            Tuple::new(vec![
                Value::Int(id),
                Value::from(format!("Name{n}")),
                Value::from(format!("Desc{d}")),
            ]),
        )
        .unwrap();
        db.insert(
            "Committee",
            Tuple::new(vec![
                Value::Int(id),
                Value::from(format!("Person{}", id % 5)),
            ]),
        )
        .unwrap();
    }
    for &id in &inst.intros {
        if inst.families.iter().any(|&(f, _, _)| f == id) {
            db.insert(
                "FamilyIntro",
                Tuple::new(vec![Value::Int(id), Value::from(format!("Intro{id}"))]),
            )
            .unwrap();
        }
    }
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The cited answer always equals direct evaluation, in both modes.
    #[test]
    fn cited_answer_matches_direct_eval(inst in instance()) {
        let db = build_db(&inst);
        let q = paper::paper_query();
        let direct = evaluate(&db, &q).unwrap();
        for mode in [CitationMode::Formal, CitationMode::CostPruned] {
            let svc = service(&db, EngineOptions { mode, ..Default::default() });
            let cited = svc.cite(&q).unwrap();
            prop_assert_eq!(&cited.answer, &direct);
            prop_assert_eq!(cited.tuples.len(), direct.len());
        }
    }

    /// Cost-pruned mode is an *estimate*: it may pick a different (but
    /// never smaller-than-formal-min-size) rewriting. The guarantee is
    /// one-sided: formal min-size produces the true minimum-size
    /// aggregate citation.
    #[test]
    fn formal_min_size_never_worse_than_pruned(inst in instance()) {
        let db = build_db(&inst);
        let q = paper::paper_query();
        let formal = service(&db,
            EngineOptions { mode: CitationMode::Formal, ..Default::default() })
            .cite(&q).unwrap();
        let pruned = service(&db,
            EngineOptions { mode: CitationMode::CostPruned, ..Default::default() })
            .cite(&q).unwrap();
        let f = formal.aggregate.unwrap().atoms.len();
        let p = pruned.aggregate.unwrap().atoms.len();
        prop_assert!(f <= p, "formal min-size {f} > pruned {p}");
    }

    /// Every answer tuple gets a non-empty citation (full coverage) and
    /// every atom references a registered view with correct param count.
    #[test]
    fn citations_are_well_formed(inst in instance()) {
        let db = build_db(&inst);
        let q = paper::paper_query();
        let svc = service(&db,
            EngineOptions { mode: CitationMode::Formal, ..Default::default() });
        let cited = svc.cite(&q).unwrap();
        for t in &cited.tuples {
            prop_assert!(!t.atoms.is_empty());
            for a in &t.atoms {
                let cv = svc.registry().get(a.view.as_str()).expect("registered view");
                prop_assert_eq!(a.params.len(), cv.view.params.len());
            }
            prop_assert_eq!(t.snippets.len(), t.atoms.len());
        }
    }

    /// Min-size never produces more aggregate atoms than union, and the
    /// chosen branch's atoms appear in the union result.
    #[test]
    fn min_size_subset_of_union(inst in instance()) {
        let db = build_db(&inst);
        let q = paper::paper_query();
        let run = |rp: RewritePolicy| {
            service(&db, EngineOptions {
                mode: CitationMode::Formal,
                policies: PolicySet { rewritings: rp, ..Default::default() },
                ..Default::default()
            }).cite(&q).unwrap()
        };
        let min = run(RewritePolicy::MinSize);
        let all = run(RewritePolicy::Union);
        let min_agg = min.aggregate.unwrap().atoms;
        let all_agg = all.aggregate.unwrap().atoms;
        prop_assert!(min_agg.is_subset(&all_agg));
    }

    /// The symbolic expression per tuple is stable: one branch per
    /// rewriting, each binding contributing a product with one atom per
    /// view atom of that rewriting.
    #[test]
    fn expression_structure(inst in instance()) {
        let db = build_db(&inst);
        let q = paper::paper_query();
        let svc = service(&db,
            EngineOptions { mode: CitationMode::Formal, ..Default::default() });
        let cited = svc.cite(&q).unwrap();
        for (row, t) in cited.answer.rows.iter().zip(&cited.tuples) {
            prop_assert_eq!(t.branches.len(), cited.rewritings.len());
            for (branch, rw) in t.branches.iter().zip(&cited.rewritings) {
                // Each branch's atom count ≤ bindings × view atoms.
                let max_atoms = row.bindings.len() * rw.body.len();
                prop_assert!(branch.atoms().len() <= max_atoms);
                // Branch is never the zero citation for a real tuple
                // (equivalent rewritings derive every tuple).
                prop_assert_ne!(branch, &CiteExpr::zero());
            }
        }
    }
}

//! Property tests for plan-cache invalidation: a service/incremental
//! engine that caches rewrite plans (and cited answers) must never serve a
//! stale result — after any interleaving of prepares, cites, data updates
//! and view registrations, `cite()` must equal a from-scratch computation
//! over the current state.

use citesys_core::paper;
use citesys_core::{
    CitationFunction, CitationQuery, CitationRegistry, CitationService, CitationView, CitedAnswer,
    EngineOptions, IncrementalEngine,
};
use citesys_cq::parse_query;
use citesys_storage::{tuple, Database};
use proptest::prelude::*;

/// One step of a randomized session.
#[derive(Clone, Debug)]
enum Op {
    /// Insert `Family(id, Name{n}, Desc)` (idempotent on duplicates).
    InsertFamily(i64, u8),
    /// Insert `FamilyIntro(id, Intro)`.
    InsertIntro(i64),
    /// Delete `FamilyIntro(id, Intro)`.
    DeleteIntro(i64),
    /// Insert `Committee(id, Person)` — affects citations through CV1's
    /// citation query, not the answer.
    InsertCommittee(i64, u8),
    /// Cite the paper query (exercises both caches).
    Cite,
    /// Register the λ-parameterized V1 view (changes the rewriting space;
    /// only the first registration succeeds, later ones are ignored).
    RegisterV1,
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0i64..6, 0u8..3).prop_map(|(id, n)| Op::InsertFamily(id, n)),
        (0i64..6).prop_map(Op::InsertIntro),
        (0i64..6).prop_map(Op::DeleteIntro),
        (0i64..6, 0u8..4).prop_map(|(id, n)| Op::InsertCommittee(id, n)),
        Just(Op::Cite),
        Just(Op::RegisterV1),
    ]
}

/// Registry without V1 — RegisterV1 later enlarges the rewriting space.
fn base_registry() -> CitationRegistry {
    let full = paper::paper_registry();
    let mut reg = CitationRegistry::new();
    reg.add(full.get("V2").unwrap().clone()).unwrap();
    reg.add(full.get("V3").unwrap().clone()).unwrap();
    reg
}

fn v1_view() -> CitationView {
    paper::paper_registry().get("V1").unwrap().clone()
}

/// From-scratch reference: a fresh service (empty caches) over a copy of
/// the current database and registry.
fn fresh_cite(db: &Database, registry: &CitationRegistry) -> CitedAnswer {
    CitationService::builder()
        .database(db.clone())
        .registry(registry.clone())
        .options(EngineOptions::default())
        .build()
        .unwrap()
        .cite(&paper::paper_query())
        .unwrap()
}

fn assert_equivalent(cached: &CitedAnswer, fresh: &CitedAnswer) -> Result<(), TestCaseError> {
    prop_assert_eq!(&cached.answer, &fresh.answer, "answers diverged");
    prop_assert_eq!(cached.tuples.len(), fresh.tuples.len());
    for (c, f) in cached.tuples.iter().zip(&fresh.tuples) {
        prop_assert_eq!(&c.atoms, &f.atoms, "citation atoms diverged");
        prop_assert_eq!(&c.snippets, &f.snippets, "snippets diverged");
    }
    prop_assert_eq!(
        &cached.rewritings,
        &fresh.rewritings,
        "selected rewritings diverged"
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The headline invariant: prepared-then-updated equals fresh.
    /// After ANY op sequence, the incremental engine (warm plan cache,
    /// pattern-based citation invalidation) agrees with a from-scratch
    /// service on the current data.
    #[test]
    fn incremental_engine_never_serves_stale_results(ops in prop::collection::vec(op(), 1..25)) {
        let mut engine = IncrementalEngine::new(
            paper::paper_database(),
            base_registry(),
            EngineOptions::default(),
        );
        // Mirror of the engine's state for the from-scratch reference.
        let mut mirror_db = paper::paper_database();
        let mut mirror_reg = base_registry();
        let mut v1_registered = false;

        // Warm both caches before any update.
        engine.cite(&paper::paper_query()).unwrap();

        for op in ops {
            match op {
                Op::InsertFamily(id, n) => {
                    // Family's key on FID rejects a second name for the
                    // same id — the engine and the mirror must agree on
                    // acceptance either way.
                    let t = tuple![id, format!("Name{n}"), "Desc"];
                    let accepted = engine.insert("Family", t.clone()).is_ok();
                    let mirrored = mirror_db.insert("Family", t).is_ok();
                    prop_assert_eq!(accepted, mirrored, "key-violation disagreement");
                }
                Op::InsertIntro(id) => {
                    let t = tuple![id, "Intro"];
                    engine.insert("FamilyIntro", t.clone()).unwrap();
                    mirror_db.insert("FamilyIntro", t).unwrap();
                }
                Op::DeleteIntro(id) => {
                    let t = tuple![id, "Intro"];
                    engine.delete("FamilyIntro", &t).unwrap();
                    mirror_db.delete("FamilyIntro", &t).unwrap();
                }
                Op::InsertCommittee(id, n) => {
                    let t = tuple![id, format!("Person{n}")];
                    engine.insert("Committee", t.clone()).unwrap();
                    mirror_db.insert("Committee", t).unwrap();
                }
                Op::Cite => {
                    let cached = engine.cite(&paper::paper_query()).unwrap();
                    let fresh = fresh_cite(&mirror_db, &mirror_reg);
                    assert_equivalent(&cached, &fresh)?;
                }
                Op::RegisterV1 => {
                    if !v1_registered {
                        engine.register_view(v1_view()).unwrap();
                        mirror_reg.add(v1_view()).unwrap();
                        v1_registered = true;
                    }
                }
            }
            // The invariant must hold after EVERY op, not just explicit
            // cites — this is what catches a stale plan or citation.
            let cached = engine.cite(&paper::paper_query()).unwrap();
            let fresh = fresh_cite(&mirror_db, &mirror_reg);
            assert_equivalent(&cached, &fresh)?;
        }
    }

    /// Prepared handles are snapshots: executing one after updates equals
    /// a fresh computation over the snapshot it was prepared against, and
    /// a handle re-prepared after the update equals a fresh computation
    /// over the NEW state (the shared plan cache must not leak staleness
    /// across a view registration).
    #[test]
    fn prepared_handles_respect_snapshots(intros in prop::collection::btree_set(0i64..6, 0..5)) {
        let mut engine = IncrementalEngine::new(
            paper::paper_database(),
            base_registry(),
            EngineOptions::default(),
        );
        let old_db = engine.db().clone();
        let prepared = engine
            .snapshot_service()
            .prepare(&paper::paper_query())
            .unwrap();

        for id in &intros {
            engine.insert("FamilyIntro", tuple![*id, "Intro"]).unwrap();
        }
        engine.register_view(v1_view()).unwrap();

        // The old handle still answers over the old snapshot.
        let old_fresh = fresh_cite(&old_db, &base_registry());
        let via_handle = prepared.execute().unwrap();
        prop_assert_eq!(&via_handle.answer, &old_fresh.answer);
        prop_assert_eq!(via_handle.rewrite_stats.search_effort(), 0);

        // A new handle sees the new data AND the new view.
        let new_handle = engine
            .snapshot_service()
            .prepare(&paper::paper_query())
            .unwrap();
        let new_fresh = fresh_cite(engine.db(), &paper::paper_registry());
        let via_new = new_handle.execute().unwrap();
        assert_equivalent(&via_new, &new_fresh)?;
        prop_assert_eq!(
            via_new.rewritings.len(), new_fresh.rewritings.len(),
            "stale plan would miss the V1 rewriting"
        );
    }

    /// λ-parameterized plan transfer is exact: for every family constant,
    /// the plan-cached service agrees with a cold service.
    #[test]
    fn constant_transfer_matches_fresh(fids in prop::collection::vec(0i64..16, 1..12)) {
        let db = paper::paper_database();
        let registry = paper::paper_registry();
        let warm = CitationService::builder()
            .database(db.clone())
            .registry(registry.clone())
            .build()
            .unwrap();
        for fid in fids {
            let q = parse_query(&format!(
                "Q(N) :- Family({fid}, N, D), FamilyIntro({fid}, T)"
            ))
            .unwrap();
            let from_warm = warm.cite(&q).unwrap();
            let from_cold = CitationService::builder()
                .database(db.clone())
                .registry(registry.clone())
                .build()
                .unwrap()
                .cite(&q)
                .unwrap();
            assert_equivalent(&from_warm, &from_cold)?;
        }
    }
}

#[test]
fn stale_service_clone_cannot_poison_the_plan_cache() {
    // Regression: a snapshot_service() clone taken BEFORE register_view
    // must not be able to write its old-registry plans back into the
    // cache the engine now reads (they share an Arc only until the view
    // registration swaps in a fresh cache).
    let mut engine = IncrementalEngine::new(
        paper::paper_database(),
        base_registry(),
        EngineOptions::default(),
    );
    let q = parse_query("Q(P) :- Committee(F, P)").unwrap();
    let old_svc = engine.snapshot_service();
    assert!(engine.cite(&q).is_err(), "uncoverable before the view");
    engine
        .register_view(
            CitationView::new(
                parse_query("VC(F, P) :- Committee(F, P)").unwrap(),
                vec![CitationQuery::new(
                    parse_query("CVC(D) :- D = 'committee'").unwrap(),
                )],
                CitationFunction::new(),
            )
            .unwrap(),
        )
        .unwrap();
    // The old clone re-runs the uncoverable query, re-caching the empty
    // plan — into ITS cache, which the engine no longer reads.
    assert!(old_svc.cite(&q).is_err(), "old snapshot stays uncoverable");
    assert!(old_svc.cite(&q).is_err());
    // The engine must still see the new view.
    assert_eq!(engine.cite(&q).unwrap().answer.len(), 4);
}

#[test]
fn register_view_unlocks_previously_uncoverable_query() {
    // Deterministic companion to the properties above: an uncoverable
    // query must become coverable after the covering view arrives, even
    // though the failure (empty plan) was cached.
    let mut engine = IncrementalEngine::new(
        paper::paper_database(),
        base_registry(),
        EngineOptions::default(),
    );
    let q = parse_query("Q(P) :- Committee(F, P)").unwrap();
    assert!(engine.cite(&q).is_err());
    engine
        .register_view(
            CitationView::new(
                parse_query("VC(F, P) :- Committee(F, P)").unwrap(),
                vec![CitationQuery::new(
                    parse_query("CVC(D) :- D = 'committee'").unwrap(),
                )],
                CitationFunction::new(),
            )
            .unwrap(),
        )
        .unwrap();
    assert_eq!(engine.cite(&q).unwrap().answer.len(), 4);
}

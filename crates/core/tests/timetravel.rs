//! Property tests for the time-travel read path: for ANY commit history,
//! `cite_at(v)` must be indistinguishable from rewinding the world —
//! replaying only the first `v` changesets into a fresh store and citing
//! live. Answers, citation atoms and the fixity digest must come back
//! byte-identical, at every retained version, including the edges
//! (version 0, the latest version, a compacted version, a version from
//! the future).

use citesys_core::paper;
use citesys_core::{
    cite_with_service, CitationService, CiteError, CitedAnswer, EngineOptions, FixityToken,
};
use citesys_storage::{tuple, Changeset, StorageError, VersionedDatabase};
use proptest::prelude::*;

/// One operation inside a randomized changeset. Family names are a
/// function of the id so replays can never trip the FID key constraint
/// (a violation would roll the whole changeset back).
#[derive(Clone, Debug)]
enum DataOp {
    InsertFamily(i64),
    InsertIntro(i64),
    DeleteIntro(i64),
    InsertCommittee(i64, u8),
}

fn data_op() -> impl Strategy<Value = DataOp> {
    prop_oneof![
        (20i64..26).prop_map(DataOp::InsertFamily),
        (0i64..6).prop_map(DataOp::InsertIntro),
        (0i64..6).prop_map(DataOp::DeleteIntro),
        (0i64..6, 0u8..4).prop_map(|(id, n)| DataOp::InsertCommittee(id, n)),
    ]
}

/// A random history: each inner vector commits as one changeset.
fn history() -> impl Strategy<Value = Vec<Vec<DataOp>>> {
    prop::collection::vec(prop::collection::vec(data_op(), 0..4), 1..7)
}

fn to_changeset(ops: &[DataOp]) -> Changeset {
    let mut cs = Changeset::new();
    for op in ops {
        match op {
            DataOp::InsertFamily(id) => {
                cs.insert("Family", tuple![*id, format!("Name{}", id % 3), "Desc"]);
            }
            DataOp::InsertIntro(id) => {
                cs.insert("FamilyIntro", tuple![*id, "Intro"]);
            }
            DataOp::DeleteIntro(id) => {
                cs.delete("FamilyIntro", tuple![*id, "Intro"]);
            }
            DataOp::InsertCommittee(id, n) => {
                cs.insert("Committee", tuple![*id, format!("Person{n}")]);
            }
        }
    }
    cs
}

/// Version 1 of every history is the paper instance; versions 2.. are
/// the random changesets. Returns the store and the committed
/// changesets in order (changeset `i` produced version `i + 1`).
fn build_history(ops: &[Vec<DataOp>]) -> (VersionedDatabase, Vec<Changeset>) {
    let mut changesets = Vec::with_capacity(ops.len() + 1);
    let mut seed = Changeset::new();
    for (name, rel) in paper::paper_database().relations() {
        for t in rel.scan() {
            seed.insert(name.as_str(), t.clone());
        }
    }
    changesets.push(seed);
    changesets.extend(ops.iter().map(|cs| to_changeset(cs)));

    let mut vdb = VersionedDatabase::new(paper::paper_schemas()).unwrap();
    for cs in &changesets {
        vdb.apply_changeset(cs).unwrap();
        vdb.commit();
    }
    (vdb, changesets)
}

/// The rewound reference: a fresh store that only ever saw the first
/// `version` changesets, cited LIVE by a cold service — no time travel,
/// no shared caches.
fn fresh_replay_cite(
    changesets: &[Changeset],
    version: u64,
) -> Result<(CitedAnswer, FixityToken), CiteError> {
    let mut vdb = VersionedDatabase::new(paper::paper_schemas()).unwrap();
    for cs in &changesets[..version as usize] {
        vdb.apply_changeset(cs).unwrap();
        vdb.commit();
    }
    assert_eq!(vdb.latest_version(), version);
    let service = CitationService::builder()
        .database(vdb.snapshot(version).unwrap())
        .registry(paper::paper_registry())
        .options(EngineOptions::default())
        .build()?;
    cite_with_service(&service, version, &paper::paper_query())
}

fn assert_same_citation(
    at: &(CitedAnswer, FixityToken),
    fresh: &(CitedAnswer, FixityToken),
    version: u64,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(
        &at.0.answer,
        &fresh.0.answer,
        "answers diverged at v{}",
        version
    );
    prop_assert_eq!(at.0.tuples.len(), fresh.0.tuples.len());
    for (a, f) in at.0.tuples.iter().zip(&fresh.0.tuples) {
        prop_assert_eq!(
            &a.atoms,
            &f.atoms,
            "citation atoms diverged at v{}",
            version
        );
        prop_assert_eq!(
            &a.snippets,
            &f.snippets,
            "snippets diverged at v{}",
            version
        );
    }
    prop_assert_eq!(at.1.version, version);
    prop_assert_eq!(fresh.1.version, version);
    // The headline fixity invariant: the digests are byte-identical.
    prop_assert_eq!(
        at.1.digest.0,
        fresh.1.digest.0,
        "fixity digest diverged at v{}",
        version
    );
    prop_assert_eq!(at.1.digest.to_hex(), fresh.1.digest.to_hex());
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// cite_at(v) over one long-lived service equals a fresh replay of
    /// the first v changesets, at EVERY version of the history at once
    /// (this also exercises the as-of service cache's eviction, since
    /// histories are longer than its capacity).
    #[test]
    fn cite_at_equals_fresh_replay(ops in history()) {
        let (vdb, changesets) = build_history(&ops);
        let latest = vdb.latest_version();
        let live = CitationService::builder()
            .database(vdb.snapshot(latest).unwrap())
            .registry(paper::paper_registry())
            .options(EngineOptions::default())
            .build()
            .unwrap();

        for version in 0..=latest {
            let at = live.cite_at(&vdb, version, &paper::paper_query());
            let fresh = fresh_replay_cite(&changesets, version);
            match (at, fresh) {
                (Ok(at), Ok(fresh)) => assert_same_citation(&at, &fresh, version)?,
                // Version 0 (and histories that delete every intro) can
                // make the query's answer empty or uncoverable — the two
                // paths must at least fail identically.
                (Err(a), Err(f)) => prop_assert_eq!(a.to_string(), f.to_string()),
                (at, fresh) => prop_assert!(
                    false,
                    "paths disagree at v{}: cite_at={:?} fresh={:?}",
                    version, at.map(|r| r.1.version), fresh.map(|r| r.1.version)
                ),
            }
        }

        // A version from the future is a crisp error, not a guess.
        let future = live
            .cite_at(&vdb, latest + 5, &paper::paper_query())
            .unwrap_err();
        prop_assert!(
            matches!(
                future,
                CiteError::Storage(StorageError::UnknownVersion { version, latest: l })
                    if version == latest + 5 && l == latest
            ),
            "expected UnknownVersion, got {future}"
        );
    }

    /// Compacting the op log keeps every in-window version's citation
    /// byte-identical and turns pre-window versions into the distinct
    /// compacted-history error.
    #[test]
    fn compaction_preserves_window_and_rejects_older(ops in history(), window in 0u64..4) {
        let (mut vdb, _) = build_history(&ops);
        let latest = vdb.latest_version();
        let live = CitationService::builder()
            .database(vdb.snapshot(latest).unwrap())
            .registry(paper::paper_registry())
            .options(EngineOptions::default())
            .build()
            .unwrap();

        // Record every version's citation before compacting.
        let before: Vec<_> = (0..=latest)
            .map(|v| live.cite_at(&vdb, v, &paper::paper_query()).map(|r| r.1))
            .collect();

        let floor = latest.saturating_sub(window);
        let kept = vdb.compact_to(floor).unwrap();
        prop_assert_eq!(kept, floor);

        for (v, recorded) in before.iter().enumerate() {
            let v = v as u64;
            // A fresh service proves the invariant survives without any
            // as-of cache warmed before compaction.
            let cold = CitationService::builder()
                .database(vdb.snapshot(latest).unwrap())
                .registry(paper::paper_registry())
                .options(EngineOptions::default())
                .build()
                .unwrap();
            let after = cold.cite_at(&vdb, v, &paper::paper_query());
            if v < floor {
                let err = after.unwrap_err();
                prop_assert!(
                    matches!(
                        err,
                        CiteError::Storage(StorageError::CompactedVersion { version, oldest })
                            if version == v && oldest == floor
                    ),
                    "expected CompactedVersion at v{}, got {}",
                    v,
                    err
                );
            } else {
                match (after, recorded) {
                    (Ok(after), Ok(recorded)) => {
                        prop_assert_eq!(after.1.version, recorded.version);
                        prop_assert_eq!(
                            after.1.digest.0,
                            recorded.digest.0,
                            "digest changed across compaction at v{}",
                            v
                        );
                    }
                    (Err(a), Err(r)) => prop_assert_eq!(a.to_string(), r.to_string()),
                    _ => prop_assert!(false, "compaction changed the outcome at v{}", v),
                }
            }
        }
    }
}

/// Deterministic edges the properties cover only probabilistically.
#[test]
fn version_zero_is_the_empty_store() {
    let (vdb, _) = build_history(&[vec![DataOp::InsertIntro(0)]]);
    let live = CitationService::builder()
        .database(vdb.snapshot(vdb.latest_version()).unwrap())
        .registry(paper::paper_registry())
        .options(EngineOptions::default())
        .build()
        .unwrap();
    // An empty answer may also surface as an evaluation error — either
    // way it must match the fresh-replay path, which the property test
    // asserts; here we only pin that it cannot panic.
    if let Ok((cited, token)) = live.cite_at(&vdb, 0, &paper::paper_query()) {
        assert!(cited.answer.is_empty(), "version 0 predates all data");
        assert_eq!(token.version, 0);
    }
}

#[test]
fn cite_at_latest_matches_plain_cite() {
    let (vdb, _) = build_history(&[
        vec![DataOp::InsertIntro(0)],
        vec![DataOp::InsertCommittee(1, 0)],
    ]);
    let latest = vdb.latest_version();
    let live = CitationService::builder()
        .database(vdb.snapshot(latest).unwrap())
        .registry(paper::paper_registry())
        .options(EngineOptions::default())
        .build()
        .unwrap();
    let (at, at_token) = live.cite_at(&vdb, latest, &paper::paper_query()).unwrap();
    let (plain, plain_token) = cite_with_service(&live, latest, &paper::paper_query()).unwrap();
    assert_eq!(at.answer, plain.answer);
    assert_eq!(at_token.digest.0, plain_token.digest.0);
}

#[test]
fn rewrite_option_changes_are_rejected() {
    let (vdb, _) = build_history(&[vec![]]);
    let live = CitationService::builder()
        .database(vdb.snapshot(vdb.latest_version()).unwrap())
        .registry(paper::paper_registry())
        .options(EngineOptions::default())
        .build()
        .unwrap();
    let mut options = EngineOptions::default();
    options.rewrite.max_candidates = options.rewrite.max_candidates.saturating_add(7);
    let err = live
        .cite_at_with(&vdb, 1, options, &paper::paper_query())
        .unwrap_err();
    assert!(
        err.to_string().contains("rewrite options"),
        "expected the rewrite-options guard, got {err}"
    );
}

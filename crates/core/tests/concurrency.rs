//! Concurrency and cache-warmth tests for the scaled service: cites
//! racing data updates must see one consistent snapshot (old or new,
//! never a mix), and a data update must keep both the plan cache and the
//! materializations of unaffected views warm.

use std::sync::{Arc, Mutex};

use citesys_core::paper;
use citesys_core::{CitationMode, CitationService, EngineOptions, IncrementalEngine};
use citesys_cq::parse_query;
use citesys_storage::tuple;

fn engine() -> IncrementalEngine {
    IncrementalEngine::new(
        paper::paper_database(),
        paper::paper_registry(),
        EngineOptions {
            mode: CitationMode::Formal,
            ..Default::default()
        },
    )
}

/// Readers cite the latest published snapshot service while the writer
/// flips `FamilyIntro(13, '3rd')` in and out. Every observed answer must
/// be exactly one of the two valid states — one tuple (no intro for
/// Dopamine) or two tuples — and every answer tuple must carry a complete
/// citation. A reader that mixed an old view materialization with a new
/// base snapshot (or vice versa) would produce a two-tuple answer with a
/// citation-less tuple, or tuple/citation counts that disagree.
#[test]
fn cite_racing_update_sees_old_or_new_never_a_mix() {
    let mut engine = engine();
    let q = paper::paper_query();
    engine.cite(&q).unwrap();
    let published: Arc<Mutex<CitationService>> = Arc::new(Mutex::new(engine.snapshot_service()));
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));

    std::thread::scope(|scope| {
        let mut readers = Vec::new();
        for _ in 0..4 {
            let published = Arc::clone(&published);
            let stop = Arc::clone(&stop);
            let q = q.clone();
            readers.push(scope.spawn(move || {
                let mut seen_old = 0usize;
                let mut seen_new = 0usize;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let svc = published.lock().unwrap().clone();
                    let cited = svc.cite(&q).expect("coverable in every snapshot");
                    // Consistency: one citation per answer tuple, each
                    // complete, and the answer is a valid snapshot state.
                    assert_eq!(cited.tuples.len(), cited.answer.len());
                    for t in &cited.tuples {
                        assert!(
                            !t.atoms.is_empty(),
                            "tuple {:?} lost its citation: old views with new data?",
                            t.tuple
                        );
                        assert!(!t.snippets.is_empty());
                    }
                    match cited.answer.len() {
                        1 => seen_old += 1,
                        2 => seen_new += 1,
                        n => panic!("impossible answer size {n}: not a snapshot state"),
                    }
                }
                (seen_old, seen_new)
            }));
        }

        // The writer: 60 updates alternating insert/delete, republishing
        // the delta-maintained snapshot service after each.
        for i in 0..60 {
            if i % 2 == 0 {
                engine.insert("FamilyIntro", tuple![13, "3rd"]).unwrap();
            } else {
                engine.delete("FamilyIntro", &tuple![13, "3rd"]).unwrap();
            }
            *published.lock().unwrap() = engine.snapshot_service();
            std::thread::yield_now();
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        for r in readers {
            let (old, new) = r.join().expect("reader panicked");
            assert!(old + new > 0, "reader observed nothing");
        }
    });
}

/// The snapshot-consistency race, transactional edition: the writer
/// flips a (Family intro, Committee membership) pair in and out with
/// two-op batches through `IncrementalEngine::apply`, so each publish is
/// exactly one snapshot swap covering both tuples. Readers on the
/// lock-free published-snapshot path must still observe only the two
/// valid states — never a half-applied batch.
#[test]
fn cite_racing_batch_updates_sees_whole_transactions() {
    let mut engine = engine();
    let q = paper::paper_query();
    engine.cite(&q).unwrap();
    let published: Arc<Mutex<CitationService>> = Arc::new(Mutex::new(engine.snapshot_service()));
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));

    std::thread::scope(|scope| {
        let mut readers = Vec::new();
        for _ in 0..4 {
            let published = Arc::clone(&published);
            let stop = Arc::clone(&stop);
            let q = q.clone();
            readers.push(scope.spawn(move || {
                let mut observed = 0usize;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let svc = published.lock().unwrap().clone();
                    let cited = svc.cite(&q).expect("coverable in every snapshot");
                    assert_eq!(cited.tuples.len(), cited.answer.len());
                    for t in &cited.tuples {
                        assert!(!t.atoms.is_empty(), "half-applied batch observed");
                    }
                    // With the intro present the answer has 2 tuples, and
                    // the batch also added Eve to committee 13; without it,
                    // 1 tuple. Nothing in between is a snapshot state.
                    assert!(
                        matches!(cited.answer.len(), 1 | 2),
                        "impossible answer size {}",
                        cited.answer.len()
                    );
                    observed += 1;
                }
                observed
            }));
        }

        for i in 0..40 {
            let mut txn = engine.begin();
            if i % 2 == 0 {
                txn.insert("FamilyIntro", citesys_storage::tuple![13, "3rd"]);
                txn.insert("Committee", citesys_storage::tuple![13, "Eve"]);
            } else {
                txn.delete("FamilyIntro", citesys_storage::tuple![13, "3rd"]);
                txn.delete("Committee", citesys_storage::tuple![13, "Eve"]);
            }
            txn.commit().unwrap();
            *published.lock().unwrap() = engine.snapshot_service();
            std::thread::yield_now();
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        for r in readers {
            assert!(r.join().expect("reader panicked") > 0);
        }
    });
}

/// The acceptance assertion for the delta-maintained caches, via
/// `RewriteStats` and the cache counters: a data update keeps serving
/// plan-cache hits (`plan_cache_hits` is not zeroed) and does not force
/// re-materialization of unaffected views (the `materializations` counter
/// stays flat; unaffected views are counted `untouched`, affected ones
/// `deltas_applied`; nothing is dropped).
#[test]
fn data_update_keeps_plans_and_unaffected_views_warm() {
    let mut e = engine();
    let q = paper::paper_query();
    e.cite(&q).unwrap();
    // Formal mode evaluates both rewritings: V1, V2, V3 all materialized.
    let warm = e.view_cache_stats();
    assert_eq!(warm.materializations, 3, "{warm:?}");
    assert_eq!(warm.drops, 0);

    // Committee appears in no view *body* (only in CV1's citation query):
    // the update touches no materialized view.
    e.insert("Committee", tuple![11, "Eve"]).unwrap();
    let cited = e.cite(&q).unwrap();
    assert_eq!(
        cited.rewrite_stats.plan_cache_hits, 1,
        "data update must not zero plan_cache_hits"
    );
    assert_eq!(cited.rewrite_stats.search_effort(), 0);
    let s = e.view_cache_stats();
    assert_eq!(
        s.materializations, 3,
        "no view re-materialized by the update: {s:?}"
    );
    assert_eq!(s.untouched, 3, "all three views carried verbatim: {s:?}");
    assert_eq!(s.deltas_applied, 0, "{s:?}");
    assert_eq!(s.drops, 0, "{s:?}");

    // FamilyIntro is V3's body: that one view gets delta rows, the other
    // two are again untouched — still zero re-materializations.
    e.insert("FamilyIntro", tuple![13, "3rd"]).unwrap();
    let cited = e.cite(&q).unwrap();
    assert_eq!(cited.answer.len(), 2, "new intro visible through the delta");
    assert_eq!(cited.rewrite_stats.plan_cache_hits, 1);
    let s = e.view_cache_stats();
    assert_eq!(s.materializations, 3, "{s:?}");
    assert_eq!(s.deltas_applied, 1, "V3 delta-maintained: {s:?}");
    assert_eq!(s.untouched, 5, "{s:?}");
    assert_eq!(s.drops, 0, "{s:?}");

    // Plan-cache hit counters accumulate across updates too.
    assert!(e.snapshot_service().plan_cache_stats().hits >= 2);
}

/// Deletions are delta-maintained as well, including rows kept alive by
/// an alternative derivation elsewhere in the base data.
#[test]
fn delete_delta_maintains_views() {
    let mut e = engine();
    let q = paper::paper_query();
    assert_eq!(e.cite(&q).unwrap().answer.len(), 1);
    e.insert("FamilyIntro", tuple![13, "3rd"]).unwrap();
    assert_eq!(e.cite(&q).unwrap().answer.len(), 2);
    e.delete("FamilyIntro", &tuple![13, "3rd"]).unwrap();
    let cited = e.cite(&q).unwrap();
    assert_eq!(cited.answer.len(), 1, "deletion visible through the delta");
    assert_eq!(cited.rewrite_stats.plan_cache_hits, 1);
    let s = e.view_cache_stats();
    assert_eq!(s.materializations, 3, "never re-materialized: {s:?}");
    assert_eq!(s.deltas_applied, 2, "insert + delete deltas on V3: {s:?}");
}

/// Hammer the sharded plan cache from many threads over many distinct
/// query shapes: counters must balance (every lookup is a hit or a miss)
/// and every shape must end up cached at most once (α-equivalent repeats
/// share one signature).
#[test]
fn sharded_plan_cache_counters_balance_under_contention() {
    let svc = CitationService::builder()
        .database(paper::paper_database())
        .registry(paper::paper_registry())
        .mode(CitationMode::Formal)
        .build()
        .unwrap();
    // 6 distinct shapes (different constant equality patterns), cited by
    // 6 threads 20 times each.
    let shapes: Vec<_> = (0..6)
        .map(|i| match i {
            0 => paper::paper_query(),
            1 => parse_query("Q(N) :- Family(11, N, D), FamilyIntro(11, T)").unwrap(),
            2 => parse_query("Q(N) :- Family(11, N, D), FamilyIntro(12, T)").unwrap(),
            3 => parse_query("Q(N, T) :- Family(F, N, D), FamilyIntro(F, T)").unwrap(),
            4 => parse_query("Q(F) :- Family(F, N, D)").unwrap(),
            _ => parse_query("Q(T) :- FamilyIntro(F, T)").unwrap(),
        })
        .collect();
    std::thread::scope(|scope| {
        for _ in 0..6 {
            let svc = svc.clone();
            let shapes = shapes.clone();
            scope.spawn(move || {
                for _ in 0..20 {
                    for q in &shapes {
                        svc.cite(q).expect("coverable");
                    }
                }
            });
        }
    });
    let stats = svc.plan_cache_stats();
    let lookups = 6 * 20 * 6;
    assert_eq!(stats.hits + stats.misses, lookups as u64, "{stats:?}");
    // Concurrent first-misses may compute a plan twice, but the cache
    // holds exactly one entry per signature afterwards.
    assert_eq!(svc.plan_cache().len(), shapes.len());
    assert!(stats.misses >= shapes.len() as u64);
    // The per-shard breakdown sums to the aggregate.
    let per_shard = svc.plan_cache().shard_stats();
    assert_eq!(
        per_shard.iter().map(|s| s.hits).sum::<u64>(),
        stats.hits,
        "{per_shard:?}"
    );
}

//! Service-level durability: checkpoint and recover a whole citation
//! stack — database, registry, materialized views and plan cache —
//! through one [`DurableStore`] backend.
//!
//! The storage layer ([`citesys_storage::durability`]) owns the files:
//! the write-ahead log, the manifest, the digested sections. This module
//! owns the *meaning* of the sections and the recovery algorithm:
//!
//! 1. [`CitationService::open`] reads the newest checkpoint, rebuilds a
//!    warm service over it (views pre-published, plans pre-loaded), then
//!    **replays the WAL through the normal delta-maintenance path** —
//!    each logged changeset is staged, applied and swapped exactly as a
//!    live commit would be, so the recovered service reaches the last
//!    acknowledged version with its materializations still warm (zero
//!    re-materializations).
//! 2. [`CitationService::checkpoint`] snapshots all four components
//!    **together** under one manifest, so a recovered stack is always
//!    internally consistent (plans are sound for the recovered registry,
//!    views match the recovered snapshot).
//! 3. [`DurableHandle::log_commit`] is the per-commit hook: callers log
//!    every sealed changeset *before* acknowledging it.

use std::path::Path;
use std::sync::Arc;

use citesys_storage::durability::{
    database_from_text, database_to_text, versioned_from_text, versioned_to_text,
};
use citesys_storage::{
    Changeset, CheckpointData, Database, DurableStore, FileStore, Recovery, VersionedDatabase,
};

use crate::error::CiteError;
use crate::registry::CitationRegistry;
use crate::service::{CitationService, PlanCache, DEFAULT_PLAN_CACHE_CAPACITY};

/// Manifest section holding the versioned database (schemas + tuples).
pub const SECTION_DATABASE: &str = "database";
/// Manifest section holding the citation-view registry.
pub const SECTION_REGISTRY: &str = "registry";
/// Manifest section holding the materialized view cache.
pub const SECTION_VIEWS: &str = "views";
/// Manifest section holding the rewrite-plan cache.
pub const SECTION_PLANS: &str = "plans";

fn derr(message: impl Into<String>) -> CiteError {
    CiteError::Durability {
        message: message.into(),
    }
}

/// A handle on a durability backend, used by the serving layer to log
/// commits and write checkpoints. Backend-agnostic: the default is the
/// file store, tests use the in-memory one.
pub struct DurableHandle {
    backend: Box<dyn DurableStore + Send>,
}

impl std::fmt::Debug for DurableHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurableHandle")
            .field("wal_records", &self.backend.wal_records())
            .finish()
    }
}

impl DurableHandle {
    /// Wraps any backend.
    pub fn new(backend: Box<dyn DurableStore + Send>) -> Self {
        DurableHandle { backend }
    }

    /// Opens (creating if needed) the default file backend at `dir`.
    pub fn file(dir: impl AsRef<Path>) -> Result<Self, CiteError> {
        Ok(DurableHandle::new(Box::new(FileStore::open(dir.as_ref())?)))
    }

    /// [`file`](Self::file) with a checkpoint retention policy: each
    /// checkpoint archives the superseded one (plus the WAL segment it
    /// anchors) as a **time-travel anchor**, keeping the newest
    /// `retain` anchors. `retain = 0` keeps none (the historical
    /// behavior).
    pub fn file_with_retention(dir: impl AsRef<Path>, retain: usize) -> Result<Self, CiteError> {
        Ok(DurableHandle::new(Box::new(
            FileStore::open_with_retention(dir.as_ref(), retain)?,
        )))
    }

    /// Durably logs one committed changeset. Call **before** the commit
    /// is acknowledged: the backend fsyncs before returning.
    pub fn log_commit(&mut self, version: u64, changes: &Changeset) -> Result<(), CiteError> {
        Ok(self.backend.log_changeset(version, changes)?)
    }

    /// WAL records appended since the last checkpoint.
    pub fn wal_records(&self) -> usize {
        self.backend.wal_records()
    }

    /// The backend's on-disk data directory (`None` for in-memory
    /// backends) — where sibling files like the dataset manifest live.
    pub fn data_dir(&self) -> Option<&Path> {
        self.backend.data_dir()
    }

    /// The backend's recovery state (consumed once at open).
    pub fn take_recovery(&mut self) -> Recovery {
        self.backend.take_recovery()
    }

    /// Writes a raw checkpoint (the serving layer normally goes through
    /// [`CitationService::checkpoint`], which assembles the sections).
    pub fn write_checkpoint(&mut self, data: &CheckpointData) -> Result<(), CiteError> {
        Ok(self.backend.checkpoint(data)?)
    }

    /// The oldest version reconstructible from this backend's retained
    /// history (`None` before any checkpoint exists).
    pub fn history_floor(&self) -> Option<u64> {
        self.backend.history_floor()
    }

    /// How many checkpoints (live + archived anchors) the backend holds.
    pub fn checkpoints_retained(&self) -> usize {
        self.backend.checkpoints_retained()
    }

    /// Drops retained history below `floor`, keeping the newest anchor
    /// at or below it as the replay base for `floor` itself. Returns the
    /// number of anchors removed.
    pub fn prune_history(&mut self, floor: u64) -> Result<usize, CiteError> {
        Ok(self.backend.prune_history(floor)?)
    }

    /// Reconstructs the database **as of** `version` from the nearest
    /// retained checkpoint at or below it plus WAL replay, together with
    /// the citation-view registry that governed that version. Returns
    /// `Ok(None)` when no retained checkpoint covers `version` — the
    /// point-in-time read path's fallback for versions older than the
    /// in-memory store's base (e.g. after a restart truncated the
    /// in-memory log to the latest checkpoint).
    pub fn database_at(
        &self,
        version: u64,
    ) -> Result<Option<(Arc<Database>, CitationRegistry)>, CiteError> {
        let Some((checkpoint, tail)) = self.backend.checkpoint_at(version)? else {
            return Ok(None);
        };
        let database_text = checkpoint
            .section(SECTION_DATABASE)
            .ok_or_else(|| derr("anchor checkpoint lacks its database section"))?;
        let mut store = versioned_from_text(database_text).map_err(derr)?;
        if store.latest_version() != checkpoint.version {
            return Err(derr(format!(
                "anchor claims version {} but its database section is at {}",
                checkpoint.version,
                store.latest_version()
            )));
        }
        for record in &tail {
            let expected = store.latest_version() + 1;
            if record.version != expected {
                return Err(derr(format!(
                    "anchor WAL record for version {} but the replay is at {} \
                     (expected {expected})",
                    record.version,
                    store.latest_version()
                )));
            }
            store.apply_changeset(&record.changes)?;
            store.commit();
        }
        if store.latest_version() != version {
            return Err(derr(format!(
                "anchor replay reached version {} but {} was requested",
                store.latest_version(),
                version
            )));
        }
        let registry = match checkpoint.section(SECTION_REGISTRY) {
            Some(text) => CitationRegistry::from_text(text)?,
            None => CitationRegistry::new(),
        };
        let snapshot = store.snapshot(version)?;
        Ok(Some((snapshot, registry)))
    }
}

/// Rebuilds a warm `(store, service)` pair from one checkpoint's
/// sections — the versioned database, the registry, the plan cache and
/// the pre-materialized views — without touching any backend.
///
/// This is the section-decoding half of recovery, shared by
/// [`CitationService::open_with`] (which then replays the local WAL on
/// top) and by replication followers (which install a checkpoint
/// shipped over the wire and then apply streamed changesets).
pub fn rebuild_from_checkpoint(
    checkpoint: &CheckpointData,
) -> Result<(VersionedDatabase, CitationService), CiteError> {
    let database_text = checkpoint
        .section(SECTION_DATABASE)
        .ok_or_else(|| derr("checkpoint lacks its database section"))?;
    let store = versioned_from_text(database_text).map_err(derr)?;
    if store.latest_version() != checkpoint.version {
        return Err(derr(format!(
            "checkpoint claims version {} but its database section is at {}",
            checkpoint.version,
            store.latest_version()
        )));
    }
    let registry = match checkpoint.section(SECTION_REGISTRY) {
        Some(text) => CitationRegistry::from_text(text)?,
        None => CitationRegistry::new(),
    };
    let plans = Arc::new(PlanCache::new(DEFAULT_PLAN_CACHE_CAPACITY));
    if let Some(text) = checkpoint.section(SECTION_PLANS) {
        plans
            .load_text(text)
            .map_err(|e| derr(format!("checkpointed plan cache: {e}")))?;
    }
    let snapshot = store.snapshot(checkpoint.version)?;
    let mut builder = CitationService::builder()
        .database(snapshot)
        .registry(registry)
        .shared_plan_cache(Arc::clone(&plans));
    if let Some(text) = checkpoint.section(SECTION_VIEWS) {
        builder = builder.warm_views(
            database_from_text(text).map_err(|e| derr(format!("checkpointed views: {e}")))?,
        );
    }
    let service = builder.build()?;
    Ok((store, service))
}

/// The outcome of opening a durable directory that held state: the
/// warm-restarted store and service, plus recovery telemetry.
#[derive(Debug)]
pub struct RecoveredService {
    /// The versioned store, replayed to the last acknowledged commit.
    pub store: VersionedDatabase,
    /// A warm service over the store's latest snapshot: views seeded
    /// from the checkpoint and carried across the WAL replay by delta
    /// maintenance, plans loaded from the checkpoint.
    pub service: CitationService,
    /// How many WAL records were replayed on top of the checkpoint.
    pub replayed: usize,
    /// True when a torn final WAL record was truncated during open.
    pub wal_truncated: bool,
}

impl CitationService {
    /// Opens a durable directory (the default file backend), recovering
    /// the checkpointed stack and replaying the WAL. Returns the handle
    /// plus `Some(recovered)` when the directory held state, `None` for
    /// a fresh directory.
    pub fn open(
        dir: impl AsRef<Path>,
    ) -> Result<(DurableHandle, Option<RecoveredService>), CiteError> {
        Self::open_with(DurableHandle::file(dir)?)
    }

    /// [`open`](Self::open) over an already-constructed backend handle
    /// (e.g. [`MemStore`](citesys_storage::MemStore) in tests).
    pub fn open_with(
        mut handle: DurableHandle,
    ) -> Result<(DurableHandle, Option<RecoveredService>), CiteError> {
        let recovery = handle.take_recovery();
        let Some(checkpoint) = recovery.checkpoint else {
            if !recovery.wal.is_empty() {
                return Err(derr(
                    "WAL records without a checkpoint: the schemas needed to replay \
                     them were never persisted",
                ));
            }
            return Ok((handle, None));
        };
        let (mut store, mut service) = rebuild_from_checkpoint(&checkpoint)?;
        // Replay the WAL through the normal delta-maintenance path: the
        // recovered service crosses every logged commit exactly like the
        // live one did, keeping its materializations warm.
        let mut replayed = 0usize;
        for record in &recovery.wal {
            let expected = store.latest_version() + 1;
            if record.version != expected {
                return Err(derr(format!(
                    "WAL record for version {} but the store is at {} (expected {expected})",
                    record.version,
                    store.latest_version()
                )));
            }
            let pending = service.stage_batch(&record.changes);
            store.apply_changeset(&record.changes)?;
            let v = store.commit();
            let snapshot = store.snapshot(v)?;
            service = service.with_database_delta(snapshot, pending);
            replayed += 1;
        }
        Ok((
            handle,
            Some(RecoveredService {
                store,
                service,
                replayed,
                wal_truncated: recovery.wal_truncated,
            }),
        ))
    }

    /// Checkpoints the whole stack — the store's committed state, this
    /// service's registry, its published materialized views and its plan
    /// cache — as one atomic manifest, then resets the WAL. The service
    /// must be the one serving `store`'s latest version (the normal
    /// serving-layer invariant); pending (uncommitted) ops are *not*
    /// checkpointed.
    pub fn checkpoint(
        &self,
        store: &VersionedDatabase,
        handle: &mut DurableHandle,
    ) -> Result<u64, CiteError> {
        let version = store.latest_version();
        let data = CheckpointData {
            version,
            sections: vec![
                (
                    SECTION_DATABASE.to_string(),
                    versioned_to_text(store).map_err(derr)?,
                ),
                (SECTION_REGISTRY.to_string(), self.registry().to_text()),
                (
                    SECTION_VIEWS.to_string(),
                    database_to_text(&self.materialized_views()),
                ),
                (SECTION_PLANS.to_string(), self.plan_cache().to_text()),
            ],
        };
        handle.write_checkpoint(&data)?;
        Ok(version)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper;
    use citesys_storage::MemStore;

    /// Builds the paper's store + service and commits its data as v1.
    fn paper_stack() -> (VersionedDatabase, CitationService) {
        let schemas = paper::paper_database()
            .relations()
            .map(|(_, rel)| rel.schema().clone())
            .collect::<Vec<_>>();
        let mut store = VersionedDatabase::new(schemas).unwrap();
        for (name, rel) in paper::paper_database().relations() {
            for t in rel.scan() {
                store.insert(name.as_str(), t.clone()).unwrap();
            }
        }
        let v = store.commit();
        let service = CitationService::builder()
            .database(store.snapshot(v).unwrap())
            .registry(paper::paper_registry())
            .build()
            .unwrap();
        (store, service)
    }

    #[test]
    fn checkpoint_recover_round_trip_is_warm() {
        let (store, service) = paper_stack();
        // Warm the caches: one cite materializes views and caches a plan.
        service.cite(&paper::paper_query()).unwrap();
        let warm = service.view_cache_stats();
        assert!(warm.materializations > 0);

        let backend = MemStore::new();
        let mut handle = DurableHandle::new(Box::new(backend.reopen()));
        assert_eq!(service.checkpoint(&store, &mut handle).unwrap(), 1);

        // "Restart": recover through a fresh handle on the same state.
        let (_, recovered) =
            CitationService::open_with(DurableHandle::new(Box::new(backend.reopen()))).unwrap();
        let recovered = recovered.expect("state recovered");
        assert_eq!(recovered.store.latest_version(), 1);
        assert_eq!(recovered.replayed, 0);

        // Same answers, zero re-materialization, plan served from disk.
        let cited = recovered.service.cite(&paper::paper_query()).unwrap();
        let expected = service.cite(&paper::paper_query()).unwrap();
        assert_eq!(cited.answer, expected.answer);
        assert_eq!(cited.rewrite_stats.plan_cache_hits, 1, "plan recovered");
        let stats = recovered.service.view_cache_stats();
        assert_eq!(stats.materializations, 0, "views recovered warm: {stats:?}");
        // Fixity carries across the restart.
        assert_eq!(
            recovered.store.digest_at(1).unwrap(),
            store.digest_at(1).unwrap()
        );
    }

    #[test]
    fn wal_replay_delta_maintains_the_recovered_service() {
        let (mut store, mut service) = paper_stack();
        service.cite(&paper::paper_query()).unwrap();
        let backend = MemStore::new();
        let mut handle = DurableHandle::new(Box::new(backend.reopen()));
        service.checkpoint(&store, &mut handle).unwrap();

        // Two post-checkpoint commits, logged like the serving layer
        // does: WAL append before the ack.
        for (fid, name) in [(14, "Ghrelin"), (15, "Orexin")] {
            let mut changes = Changeset::new();
            changes
                .insert("Family", citesys_storage::tuple![fid, name, "D"])
                .insert("FamilyIntro", citesys_storage::tuple![fid, "intro"]);
            let pending = service.stage_batch(&changes);
            store.apply_changeset(&changes).unwrap();
            let v = store.commit();
            handle.log_commit(v, &changes).unwrap();
            service = service.with_database_delta(store.snapshot(v).unwrap(), pending);
        }
        let expected = service.cite(&paper::paper_query()).unwrap();

        let (_, recovered) =
            CitationService::open_with(DurableHandle::new(Box::new(backend.reopen()))).unwrap();
        let recovered = recovered.expect("state recovered");
        assert_eq!(recovered.store.latest_version(), 3);
        assert_eq!(recovered.replayed, 2);
        let cited = recovered.service.cite(&paper::paper_query()).unwrap();
        assert_eq!(
            cited.answer, expected.answer,
            "replay reaches the acked state"
        );
        let stats = recovered.service.view_cache_stats();
        assert_eq!(stats.materializations, 0, "replay stayed warm: {stats:?}");
        assert!(stats.deltas_applied > 0, "{stats:?}");
    }

    #[test]
    fn fresh_backend_recovers_nothing() {
        let (_, recovered) =
            CitationService::open_with(DurableHandle::new(Box::new(MemStore::new()))).unwrap();
        assert!(recovered.is_none());
    }

    #[test]
    fn wal_without_checkpoint_is_rejected() {
        let mut backend = MemStore::new();
        let mut c = Changeset::new();
        c.insert("R", citesys_storage::tuple![1]);
        backend.log_changeset(1, &c).unwrap();
        let e =
            CitationService::open_with(DurableHandle::new(Box::new(backend.reopen()))).unwrap_err();
        assert!(e.to_string().contains("without a checkpoint"), "{e}");
    }
}

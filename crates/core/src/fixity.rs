//! Fixity: citations that can bring back the data as cited (§3).
//!
//! "Data may evolve over time, and a citation should bring back the data as
//! seen at the time it was cited. Thus the citation must include a
//! mechanism of obtaining the data." A [`FixityToken`] stores the database
//! version, the query text, and a SHA-256 digest of the canonical answer;
//! [`dereference`] re-executes against the cited snapshot and
//! [`verify`] checks the digest.

use citesys_cq::{parse_query, ConjunctiveQuery};
use citesys_obs::{SpanSet, SpanTimer};
use citesys_storage::{digest_answer, evaluate, Digest, QueryAnswer, VersionedDatabase};

use crate::engine::{CitedAnswer, EngineOptions};
use crate::error::CiteError;
use crate::registry::CitationRegistry;
use crate::service::CitationService;

/// The machine-actionable part of a citation: enough to retrieve and
/// verify the cited data.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FixityToken {
    /// Database version the citation was generated against.
    pub version: u64,
    /// The cited query, in re-parseable surface syntax.
    pub query: String,
    /// SHA-256 digest of the canonical serialization of the answer.
    pub digest: Digest,
}

impl std::fmt::Display for FixityToken {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "v{} sha256:{} query:{}",
            self.version, self.digest, self.query
        )
    }
}

/// Computes a citation against a specific committed version of a versioned
/// database, returning the cited answer together with its fixity token.
///
/// Convenience one-shot: each call clones `registry` into a fresh service
/// with a cold plan cache. Callers citing in a loop should build one
/// service over the snapshot and use [`cite_with_service`] instead — it
/// keeps the plan cache (and materialized views) warm across calls.
pub fn cite_at_version(
    vdb: &VersionedDatabase,
    registry: &CitationRegistry,
    options: EngineOptions,
    version: u64,
    q: &ConjunctiveQuery,
) -> Result<(CitedAnswer, FixityToken), CiteError> {
    let service = CitationService::builder()
        .database(vdb.snapshot(version)?)
        .registry(registry.clone())
        .options(options)
        .build()?;
    cite_with_service(&service, version, q)
}

/// Like [`cite_at_version`], but against an already-built service whose
/// database is the snapshot of `version` — long-lived callers (the CLI's
/// `serve` loop) reuse one service and its warm plan cache across
/// citations instead of re-running the rewriting search each time.
pub fn cite_with_service(
    service: &CitationService,
    version: u64,
    q: &ConjunctiveQuery,
) -> Result<(CitedAnswer, FixityToken), CiteError> {
    cite_with_service_spanned(service, version, q, &mut SpanSet::disabled())
}

/// [`cite_with_service`] with per-stage tracing spans: the service
/// records `plan_lookup`/`rewrite`/`eval` (see
/// [`CitationService::cite_spanned`]) and the answer digest is recorded
/// as `digest`. The serving layer feeds these into its stage histograms
/// and the slow-cite log.
pub fn cite_with_service_spanned(
    service: &CitationService,
    version: u64,
    q: &ConjunctiveQuery,
    spans: &mut SpanSet,
) -> Result<(CitedAnswer, FixityToken), CiteError> {
    let cited = service.cite_spanned(q, spans)?;
    let digest = SpanTimer::start(spans.enabled());
    let token = FixityToken {
        version,
        query: q.to_string(),
        digest: digest_answer(&cited.answer),
    };
    spans.record_micros("digest", digest.elapsed_micros());
    Ok((cited, token))
}

/// Brings back the data exactly as cited: re-parses the token's query and
/// evaluates it against the cited snapshot.
pub fn dereference(vdb: &VersionedDatabase, token: &FixityToken) -> Result<QueryAnswer, CiteError> {
    let q = parse_query(&token.query)?;
    let snapshot = vdb.snapshot(token.version)?;
    Ok(evaluate(&snapshot, &q)?)
}

/// Verifies fixity: re-executes the cited query and compares digests.
pub fn verify(vdb: &VersionedDatabase, token: &FixityToken) -> Result<(), CiteError> {
    let answer = dereference(vdb, token)?;
    let got = digest_answer(&answer);
    if got == token.digest {
        Ok(())
    } else {
        Err(CiteError::FixityViolation {
            expected: token.digest.to_hex(),
            got: got.to_hex(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper;
    use citesys_storage::tuple;

    /// A versioned copy of the paper database: version 1 = the paper
    /// instance; version 2 adds an intro for Dopamine.
    fn versioned_fixture() -> VersionedDatabase {
        let mut vdb = VersionedDatabase::new(paper::paper_schemas()).unwrap();
        let base = paper::paper_database();
        for (name, rel) in base.relations() {
            for t in rel.scan() {
                vdb.insert(name.as_str(), t.clone()).unwrap();
            }
        }
        vdb.commit(); // version 1
        vdb.insert("FamilyIntro", tuple![13, "3rd"]).unwrap();
        vdb.commit(); // version 2
        vdb
    }

    #[test]
    fn cite_and_verify_round_trip() {
        let vdb = versioned_fixture();
        let reg = paper::paper_registry();
        let (cited, token) = cite_at_version(
            &vdb,
            &reg,
            EngineOptions::default(),
            1,
            &paper::paper_query(),
        )
        .unwrap();
        assert_eq!(cited.answer.len(), 1);
        assert_eq!(token.version, 1);
        verify(&vdb, &token).unwrap();
    }

    #[test]
    fn dereference_returns_data_as_cited() {
        let vdb = versioned_fixture();
        let reg = paper::paper_registry();
        let (cited_v1, token_v1) = cite_at_version(
            &vdb,
            &reg,
            EngineOptions::default(),
            1,
            &paper::paper_query(),
        )
        .unwrap();
        let (cited_v2, _) = cite_at_version(
            &vdb,
            &reg,
            EngineOptions::default(),
            2,
            &paper::paper_query(),
        )
        .unwrap();
        // Version 2 sees Dopamine too; version 1 must not.
        assert_eq!(cited_v1.answer.len(), 1);
        assert_eq!(cited_v2.answer.len(), 2);
        let recovered = dereference(&vdb, &token_v1).unwrap();
        assert_eq!(recovered, cited_v1.answer);
    }

    #[test]
    fn tampered_digest_detected() {
        let vdb = versioned_fixture();
        let reg = paper::paper_registry();
        let (_, mut token) = cite_at_version(
            &vdb,
            &reg,
            EngineOptions::default(),
            1,
            &paper::paper_query(),
        )
        .unwrap();
        token.digest = citesys_storage::sha256(b"tampered");
        let e = verify(&vdb, &token).unwrap_err();
        assert!(matches!(e, CiteError::FixityViolation { .. }));
    }

    #[test]
    fn wrong_version_detected_via_digest() {
        let vdb = versioned_fixture();
        let reg = paper::paper_registry();
        let (_, mut token) = cite_at_version(
            &vdb,
            &reg,
            EngineOptions::default(),
            1,
            &paper::paper_query(),
        )
        .unwrap();
        // Re-pointing the token at version 2 changes the answer set.
        token.version = 2;
        let e = verify(&vdb, &token).unwrap_err();
        assert!(matches!(e, CiteError::FixityViolation { .. }));
    }

    #[test]
    fn unknown_version_errors() {
        let vdb = versioned_fixture();
        let reg = paper::paper_registry();
        let e = cite_at_version(
            &vdb,
            &reg,
            EngineOptions::default(),
            99,
            &paper::paper_query(),
        )
        .unwrap_err();
        assert!(matches!(e, CiteError::Storage(_)));
    }

    #[test]
    fn token_display_round_trips_query() {
        let vdb = versioned_fixture();
        let reg = paper::paper_registry();
        let (_, token) = cite_at_version(
            &vdb,
            &reg,
            EngineOptions::default(),
            1,
            &paper::paper_query(),
        )
        .unwrap();
        let text = token.to_string();
        assert!(text.starts_with("v1 sha256:"));
        assert!(parse_query(&token.query).is_ok());
    }
}

//! # citesys-core — fine-grained data citation
//!
//! The primary contribution of *“Data Citation: A Computational Challenge”*
//! (Davidson, Buneman, Deutch, Milo, Silvello — PODS 2017), as a library:
//!
//! * **Citation views** ([`registry`]): conjunctive-query views with
//!   λ-parameters, citation queries and citation functions, exactly as in
//!   §2 of the paper.
//! * **The citation algebra** ([`expr`]): symbolic expressions over `·`
//!   (joint), `+` (alternative bindings) and `+R` (alternative
//!   rewritings), e.g. the paper's
//!   `(CV1(11)·CV3 + CV1(12)·CV3) +R (CV2·CV3)`.
//! * **Policies** ([`policy`]): owner-chosen interpretations (union, join,
//!   first, minimum estimated size) of the abstract operators.
//! * **The service** ([`service`]): the owned, `Send + Sync`
//!   [`CitationService`] — rewrite → evaluate → annotate → render with a
//!   formal-semantics mode and a cost-pruned mode (§3), prepared queries,
//!   a sharded LRU plan cache keyed modulo λ-parameter constants (with
//!   text persistence), a delta-maintained materialized-view cache
//!   ([`viewcache`]), and batch citation. (The borrowing
//!   [`CitationEngine`] shim remains for source compatibility; see
//!   `MIGRATION.md`.)
//! * **Rendering** ([`mod@format`]): text, BibTeX, RIS, XML, JSON.
//! * **Fixity** ([`fixity`]): versioned citations with SHA-256 digests,
//!   dereference and verification.
//! * **Evolution** ([`evolve`]): cached citations with precise
//!   invalidation under updates.
//! * **View selection** ([`select`]): covering a query workload with few
//!   views (greedy vs exhaustive).
//! * **The paper's running example** ([`paper`]): the GtoPdb fragment as a
//!   reusable fixture.
//!
//! ## Quickstart
//!
//! ```
//! use citesys_core::format::{format_citation, CitationFormat};
//! use citesys_core::paper;
//! use citesys_core::{CitationMode, CitationService};
//!
//! let service = CitationService::builder()
//!     .database(paper::paper_database())
//!     .registry(paper::paper_registry())
//!     .mode(CitationMode::Formal)
//!     .build()
//!     .unwrap();
//!
//! let cited = service.cite(&paper::paper_query()).unwrap();
//! // The min-size policy picks the paper's answer: CV2·CV3.
//! let atoms: Vec<String> =
//!     cited.tuples[0].atoms.iter().map(ToString::to_string).collect();
//! assert_eq!(atoms, vec!["CV2", "CV3"]);
//!
//! let text = format_citation(&cited.tuples[0].snippets, None, CitationFormat::Text);
//! assert!(text.contains("IUPHAR/BPS Guide to PHARMACOLOGY..."));
//!
//! // Re-citing the same query shape skips the rewriting search entirely.
//! let prepared = service.prepare(&paper::paper_query()).unwrap();
//! let again = prepared.execute().unwrap();
//! assert_eq!(again.rewrite_stats.search_effort(), 0);
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod durable;
pub mod engine;
pub mod error;
pub mod evolve;
pub mod expr;
pub mod fixity;
pub mod format;
pub mod paper;
pub mod policy;
pub mod registry;
pub mod select;
pub mod service;
pub mod snippet;
pub mod trace;
pub mod viewcache;

pub use citesys_storage::{Changeset, NetChanges};
pub use durable::{
    rebuild_from_checkpoint, DurableHandle, RecoveredService, SECTION_DATABASE, SECTION_PLANS,
    SECTION_REGISTRY, SECTION_VIEWS,
};
#[allow(deprecated)]
pub use engine::CitationEngine;
pub use engine::{
    AggregateCitation, CitationMode, CitedAnswer, Coverage, EngineOptions, TupleCitation,
};
pub use error::CiteError;
pub use evolve::{EvolveStats, IncrementalEngine, Transaction};
pub use expr::{CiteAtom, CiteExpr};
pub use fixity::{
    cite_at_version, cite_with_service, cite_with_service_spanned, dereference, verify, FixityToken,
};
pub use format::{format_citation, format_citation_with, CitationFormat, FormatOptions};
pub use policy::{AggPolicy, AltPolicy, JointPolicy, PolicySet, RewritePolicy, RewritingChoice};
pub use registry::{CitationRegistry, CitationView};
pub use select::{covers, exhaustive_select, greedy_select, Selection};
pub use service::{
    AsOfCache, CitationService, CitationServiceBuilder, PlanCache, PlanCacheStats,
    PreparedCitation, DEFAULT_PLAN_CACHE_CAPACITY, DEFAULT_PLAN_CACHE_SHARDS,
};
pub use snippet::{CitationFunction, CitationQuery, CitationSnippet};
pub use trace::{trace_answer, trace_tuple};
pub use viewcache::{DeltaOp, PendingViewDelta, ViewCache, ViewCacheStats};

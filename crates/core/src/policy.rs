//! Combination policies for the citation algebra.
//!
//! §2: "The abstract functions `·`, `+`, `+R` and `Agg` are policies to be
//! specified by the database owner. … For `·`, `+` and `Agg`, union or
//! join are natural. For `+R`, the 'minimum' in some ordering would also be
//! natural", with *estimated citation size* as the ordering in the paper's
//! closing example. The defaults here reproduce exactly that example:
//! union everywhere, minimum size across rewritings.

use std::collections::BTreeSet;

use crate::expr::{CiteAtom, CiteExpr};

/// Interpretation of `·` (joint use within one binding).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum JointPolicy {
    /// Keep the contributing view citations as separate snippets.
    #[default]
    Union,
    /// Merge the contributing snippets' fields into a single snippet.
    Join,
}

/// Interpretation of `+` (alternatives across bindings).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum AltPolicy {
    /// Keep every alternative (union of citation sets).
    #[default]
    Union,
    /// Keep only the first alternative (deterministic: bindings are
    /// sorted).
    First,
}

/// Interpretation of `+R` (alternatives across rewritings).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum RewritePolicy {
    /// Choose the rewriting with the smallest estimated citation size for
    /// the whole answer (the paper's closing example).
    #[default]
    MinSize,
    /// Keep citations from every rewriting.
    Union,
    /// Use the first rewriting (deterministic order).
    First,
}

/// Interpretation of `Agg` (combining the citations of all answer tuples).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum AggPolicy {
    /// Union of all per-tuple citations (the paper's example).
    #[default]
    Union,
    /// No aggregate citation; only per-tuple citations are produced.
    PerTupleOnly,
}

/// The owner's policy choices.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct PolicySet {
    /// Interpretation of `·`.
    pub joint: JointPolicy,
    /// Interpretation of `+`.
    pub alt: AltPolicy,
    /// Interpretation of `+R`.
    pub rewritings: RewritePolicy,
    /// Interpretation of `Agg`.
    pub agg: AggPolicy,
}

impl PolicySet {
    /// The paper's policy from the closing example: union for `·`, `+`,
    /// `Agg`; minimum estimated size for `+R`.
    pub fn paper_default() -> Self {
        Self::default()
    }
}

/// The `+R` choice made for a whole answer.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RewritingChoice {
    /// Use this rewriting branch index everywhere.
    Index(usize),
    /// Union the branches.
    All,
}

/// Applies the `+R` policy **globally** over the whole answer: the paper
/// estimates citation size per rewriting for the entire result ("the
/// estimated size of the citation using Q1 would therefore be proportional
/// to the size of Family"), so the choice must be made across tuples, not
/// per tuple.
///
/// `per_tuple_branches[t][r]` is the citation expression of tuple `t` under
/// rewriting `r` (all tuples have the same number of branches).
pub fn choose_rewriting(
    policy: RewritePolicy,
    per_tuple_branches: &[Vec<CiteExpr>],
) -> RewritingChoice {
    match policy {
        RewritePolicy::Union => RewritingChoice::All,
        RewritePolicy::First => RewritingChoice::Index(0),
        RewritePolicy::MinSize => {
            let n = per_tuple_branches.first().map_or(0, Vec::len);
            if n == 0 {
                return RewritingChoice::Index(0);
            }
            let mut best = 0usize;
            let mut best_size = usize::MAX;
            for r in 0..n {
                let mut atoms: BTreeSet<&CiteAtom> = BTreeSet::new();
                for branches in per_tuple_branches {
                    atoms.extend(branches[r].atoms());
                }
                if atoms.len() < best_size {
                    best_size = atoms.len();
                    best = r;
                }
            }
            RewritingChoice::Index(best)
        }
    }
}

/// Interprets one tuple's branches under the already-made `+R` choice and
/// the `+` policy, yielding the set of citation atoms to render.
pub fn atoms_for_tuple(
    policies: &PolicySet,
    branches: &[CiteExpr],
    choice: RewritingChoice,
) -> BTreeSet<CiteAtom> {
    let exprs: Vec<&CiteExpr> = match choice {
        RewritingChoice::All => branches.iter().collect(),
        RewritingChoice::Index(i) => branches.get(i).into_iter().collect(),
    };
    let mut out = BTreeSet::new();
    for e in exprs {
        collect(policies, e, &mut out);
    }
    out
}

/// Recursive interpretation of a (normalized) expression under `+`/`·`.
fn collect(policies: &PolicySet, e: &CiteExpr, out: &mut BTreeSet<CiteAtom>) {
    match e {
        CiteExpr::Atom(a) => {
            out.insert(a.clone());
        }
        CiteExpr::Prod(cs) => {
            // `·` always contributes all factors; Union vs Join differs at
            // snippet-rendering time (separate vs merged snippets).
            for c in cs {
                collect(policies, c, out);
            }
        }
        CiteExpr::Sum(cs) => match policies.alt {
            AltPolicy::Union => {
                for c in cs {
                    collect(policies, c, out);
                }
            }
            AltPolicy::First => {
                if let Some(first) = cs.first() {
                    collect(policies, first, out);
                }
            }
        },
        CiteExpr::AltR(cs) => {
            // An inner +R only appears if the caller skipped global
            // resolution; treat it like +.
            for c in cs {
                collect(policies, c, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use citesys_cq::Value;

    fn cv(view: &str, params: Vec<i64>) -> CiteExpr {
        CiteExpr::Atom(CiteAtom::new(
            view,
            params.into_iter().map(Value::Int).collect(),
        ))
    }

    /// Branches for the paper's Calcitonin tuple:
    /// Q1 branch: CV1(11)·CV3 + CV1(12)·CV3; Q2 branch: CV2·CV3.
    fn paper_branches() -> Vec<CiteExpr> {
        vec![
            CiteExpr::sum(vec![
                CiteExpr::prod(vec![cv("V1", vec![11]), cv("V3", vec![])]),
                CiteExpr::prod(vec![cv("V1", vec![12]), cv("V3", vec![])]),
            ]),
            CiteExpr::prod(vec![cv("V2", vec![]), cv("V3", vec![])]),
        ]
    }

    #[test]
    fn min_size_picks_q2() {
        // The paper: "The final citation for Q would therefore be … the one
        // using Q2 (CV2·CV3)".
        let choice = choose_rewriting(RewritePolicy::MinSize, &[paper_branches()]);
        assert_eq!(choice, RewritingChoice::Index(1));
        let atoms = atoms_for_tuple(&PolicySet::default(), &paper_branches(), choice);
        let names: Vec<String> = atoms.iter().map(ToString::to_string).collect();
        assert_eq!(names, vec!["CV2", "CV3"]);
    }

    #[test]
    fn union_keeps_everything() {
        let choice = choose_rewriting(RewritePolicy::Union, &[paper_branches()]);
        assert_eq!(choice, RewritingChoice::All);
        let atoms = atoms_for_tuple(&PolicySet::default(), &paper_branches(), choice);
        assert_eq!(atoms.len(), 4); // CV1(11), CV1(12), CV2, CV3
    }

    #[test]
    fn first_rewriting_policy() {
        let choice = choose_rewriting(RewritePolicy::First, &[paper_branches()]);
        assert_eq!(choice, RewritingChoice::Index(0));
        let atoms = atoms_for_tuple(&PolicySet::default(), &paper_branches(), choice);
        assert_eq!(atoms.len(), 3); // CV1(11), CV1(12), CV3
    }

    #[test]
    fn alt_first_takes_first_binding() {
        let policies = PolicySet {
            alt: AltPolicy::First,
            ..Default::default()
        };
        let atoms = atoms_for_tuple(&policies, &paper_branches(), RewritingChoice::Index(0));
        // Only the first binding's product: CV1(11)·CV3.
        assert_eq!(atoms.len(), 2);
        assert!(atoms.iter().any(|a| a.to_string() == "CV1(11)"));
    }

    #[test]
    fn min_size_is_global_across_tuples() {
        // Tuple 1: parameterized branch has 2 atoms, constant branch 1.
        // Tuple 2: parameterized branch has 2 *new* atoms, constant branch
        // reuses the same atom ⇒ globally constant branch wins even though
        // per-tuple sizes tie at first sight.
        let t1 = vec![
            CiteExpr::prod(vec![cv("P", vec![1]), cv("X", vec![])]),
            cv("K", vec![]),
        ];
        let t2 = vec![
            CiteExpr::prod(vec![cv("P", vec![2]), cv("X", vec![])]),
            cv("K", vec![]),
        ];
        let choice = choose_rewriting(RewritePolicy::MinSize, &[t1, t2]);
        assert_eq!(choice, RewritingChoice::Index(1));
    }

    #[test]
    fn min_size_tie_prefers_lower_index() {
        let t = vec![cv("A", vec![]), cv("B", vec![])];
        assert_eq!(
            choose_rewriting(RewritePolicy::MinSize, &[t]),
            RewritingChoice::Index(0)
        );
    }

    #[test]
    fn empty_answer_defaults() {
        assert_eq!(
            choose_rewriting(RewritePolicy::MinSize, &[]),
            RewritingChoice::Index(0)
        );
        let atoms = atoms_for_tuple(&PolicySet::default(), &[], RewritingChoice::Index(0));
        assert!(atoms.is_empty());
    }
}

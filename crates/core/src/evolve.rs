//! Citation evolution: incremental recomputation under updates (§3).
//!
//! "An intriguing computational challenge is how to compute citations in an
//! incremental manner in this setting." The [`IncrementalEngine`] caches
//! cited answers per query and invalidates them only when an update can
//! actually affect them — decided by *pattern matching* the delta tuple
//! against the base atoms the citation depends on (the query body, the
//! bodies of all schema-relevant views, and their citation queries).
//! Experiment E7 measures the win over full recomputation.
//!
//! The engine is built on [`CitationService`]: data updates swap the
//! service's database snapshot while the **plan cache survives** (rewrite
//! plans depend only on the query shape and the registry) and the
//! **materialized-view cache is delta-maintained** (the inserted/deleted
//! tuple is carried into affected views by the semi-naive rules of
//! [`citesys_storage::delta`]; unaffected views are kept verbatim),
//! whereas view registrations and schema changes **clear both caches**
//! (they can change the rewriting space and the view definitions).
//! Cached *citations* are invalidated by data updates through the pattern
//! matching above.

use std::collections::BTreeMap;
use std::sync::Arc;

use citesys_cq::{Atom, ConjunctiveQuery, Term};
use citesys_storage::{Changeset, Database, Op, RelationSchema, Tuple};

use crate::engine::{CitedAnswer, EngineOptions};
use crate::error::CiteError;
use crate::registry::{CitationRegistry, CitationView};
use crate::service::CitationService;

/// Cache statistics for the incremental engine.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct EvolveStats {
    /// Citations served from cache.
    pub hits: usize,
    /// Citations computed from scratch.
    pub misses: usize,
    /// Cache entries invalidated by updates.
    pub invalidations: usize,
    /// Updates that invalidated nothing.
    pub unaffected_updates: usize,
    /// Times the rewrite-plan cache was cleared (view/schema changes).
    pub plan_invalidations: usize,
}

struct CacheEntry {
    cited: CitedAnswer,
    /// Base-relation atom patterns this citation depends on; a delta tuple
    /// that matches none of them cannot change the citation.
    patterns: Vec<Atom>,
}

/// A citation engine that owns its database, caches cited answers, and
/// invalidates them precisely under updates.
pub struct IncrementalEngine {
    db: Arc<Database>,
    registry: Arc<CitationRegistry>,
    options: EngineOptions,
    service: CitationService,
    cache: BTreeMap<String, CacheEntry>,
    stats: EvolveStats,
}

impl IncrementalEngine {
    /// Creates an incremental engine owning `db`.
    pub fn new(db: Database, registry: CitationRegistry, options: EngineOptions) -> Self {
        let db = Arc::new(db);
        let registry = Arc::new(registry);
        let service = CitationService::builder()
            .database(Arc::clone(&db))
            .registry(Arc::clone(&registry))
            .options(options)
            .build()
            .expect("database and registry provided");
        IncrementalEngine {
            db,
            registry,
            options,
            service,
            cache: BTreeMap::new(),
            stats: EvolveStats::default(),
        }
    }

    /// Read access to the database.
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// Cache statistics so far.
    pub fn stats(&self) -> EvolveStats {
        self.stats
    }

    /// Materialized-view cache counters of the underlying service —
    /// after data updates these show how many views were delta-maintained
    /// or carried over untouched instead of being re-materialized.
    pub fn view_cache_stats(&self) -> crate::viewcache::ViewCacheStats {
        self.service.view_cache_stats()
    }

    /// Number of live cache entries.
    pub fn cached(&self) -> usize {
        self.cache.len()
    }

    /// A service over the engine's **current** snapshot, sharing its plan
    /// cache. Prepared citations obtained from it stay pinned to this
    /// snapshot; after updates, obtain a fresh one (the shared plan cache
    /// makes re-preparation search-free).
    pub fn snapshot_service(&self) -> CitationService {
        self.service.clone()
    }

    /// Computes (or returns the cached) citation for `q`.
    pub fn cite(&mut self, q: &ConjunctiveQuery) -> Result<CitedAnswer, CiteError> {
        let key = q.canonical().to_string();
        if let Some(entry) = self.cache.get(&key) {
            self.stats.hits += 1;
            return Ok(entry.cited.clone());
        }
        self.stats.misses += 1;
        let cited = self.service.cite(q)?;
        let patterns = self.dependency_patterns(q);
        self.cache.insert(
            key,
            CacheEntry {
                cited: cited.clone(),
                patterns,
            },
        );
        Ok(cited)
    }

    /// Applies a mutation to the owned database and swaps the service's
    /// snapshot (keeping the plan cache warm). The service's `Arc` to the
    /// old snapshot is dropped *before* `Arc::make_mut`, so steady-state
    /// updates mutate in place instead of cloning the database.
    fn mutate<R>(
        &mut self,
        f: impl FnOnce(&mut Database) -> Result<R, citesys_storage::StorageError>,
    ) -> Result<R, CiteError> {
        self.service.release_database();
        // Restore the service before propagating any error — a failed
        // mutation must not leave it pointing at the empty placeholder.
        let out = f(Arc::make_mut(&mut self.db));
        self.service = self.service.with_database(Arc::clone(&self.db));
        Ok(out?)
    }

    /// Applies a whole [`Changeset`] — mixed inserts and deletes — as one
    /// transaction: the view-cache delta is staged against the pre-batch
    /// snapshot, the ops run **atomically** (a failing op rolls back the
    /// already-applied ones; see [`Changeset::apply`]), and the staged
    /// net delta is applied to the successor service against the single
    /// post-batch database — plan cache **and** materialized views stay
    /// warm, readers observe exactly **one** snapshot swap, and affected
    /// cached citations are invalidated per effective op. Returns how
    /// many ops actually changed the data.
    ///
    /// Applying the staged delta after a failed (rolled-back) batch is
    /// harmless: the delta rules evaluate against the unchanged database
    /// (see [`CitationService::with_database_delta`]).
    pub fn apply(&mut self, changes: &Changeset) -> Result<usize, CiteError> {
        let pending = self.service.stage_batch(changes);
        self.service.release_database();
        let out = changes.apply(Arc::make_mut(&mut self.db));
        self.service = self
            .service
            .with_database_delta(Arc::clone(&self.db), pending);
        let applied = out?;
        for op in &applied {
            match op {
                Op::Insert(rel, t) | Op::Delete(rel, t) => self.invalidate(rel.as_str(), t),
            }
        }
        Ok(applied.len())
    }

    /// Starts a buffered transaction: `insert`/`delete` calls on the
    /// returned handle accumulate into a [`Changeset`], and
    /// [`commit`](Transaction::commit) lands the whole batch through
    /// [`apply`](Self::apply) — one snapshot swap, all-or-nothing.
    /// Dropping the handle without committing discards the buffer.
    pub fn begin(&mut self) -> Transaction<'_> {
        Transaction {
            engine: self,
            changes: Changeset::new(),
        }
    }

    /// Inserts a tuple, invalidating affected citations (a one-op
    /// [`apply`](Self::apply)).
    pub fn insert(&mut self, rel: &str, t: Tuple) -> Result<bool, CiteError> {
        let mut changes = Changeset::new();
        changes.insert(rel, t);
        Ok(self.apply(&changes)? == 1)
    }

    /// Deletes a tuple, invalidating affected citations (a one-op
    /// [`apply`](Self::apply)).
    pub fn delete(&mut self, rel: &str, t: &Tuple) -> Result<bool, CiteError> {
        let mut changes = Changeset::new();
        changes.delete(rel, t.clone());
        Ok(self.apply(&changes)? == 1)
    }

    /// Registers a new citation view. This can change the rewriting space
    /// of *any* query, so both the plan cache and every cached citation
    /// are invalidated.
    pub fn register_view(&mut self, cv: CitationView) -> Result<(), CiteError> {
        Arc::make_mut(&mut self.registry).add(cv)?;
        let dropped = self.cache.len();
        self.cache.clear();
        self.stats.invalidations += dropped;
        self.rebuild_service_with_fresh_plans();
        Ok(())
    }

    /// Declares a new base relation. Conservatively treated as a schema
    /// change: cached plans are dropped (cached citations are unaffected —
    /// a brand-new relation is empty and referenced by no existing view).
    pub fn create_relation(&mut self, schema: RelationSchema) -> Result<(), CiteError> {
        self.mutate(|db| db.create_relation(schema))?;
        self.rebuild_service_with_fresh_plans();
        Ok(())
    }

    /// Swaps in a service with a **new, empty** plan cache. Replacing the
    /// `Arc` (rather than clearing the shared cache) matters: service
    /// clones handed out by [`snapshot_service`](Self::snapshot_service)
    /// before the change keep writing plans for *their* (old) registry
    /// into *their* cache — clearing the shared one would let those
    /// old-registry plans flow back in afterwards and be served as if
    /// current.
    fn rebuild_service_with_fresh_plans(&mut self) {
        let capacity = self.service.plan_cache().capacity();
        self.service = CitationService::builder()
            .database(Arc::clone(&self.db))
            .registry(Arc::clone(&self.registry))
            .options(self.options)
            .plan_cache_capacity(capacity)
            .build()
            .expect("database and registry provided");
        self.stats.plan_invalidations += 1;
    }

    /// Removes cache entries whose dependency patterns match the delta.
    fn invalidate(&mut self, rel: &str, t: &Tuple) {
        let before = self.cache.len();
        self.cache
            .retain(|_, entry| !entry.patterns.iter().any(|p| pattern_matches(p, rel, t)));
        let dropped = before - self.cache.len();
        self.stats.invalidations += dropped;
        if dropped == 0 {
            self.stats.unaffected_updates += 1;
        }
    }

    /// Conservative dependency set for a query's citation: the query's own
    /// body, plus — for every registered view that could participate in a
    /// rewriting (schema-relevant) — the view body and its citation-query
    /// bodies.
    ///
    /// Conservatism is required because an update can change which
    /// rewriting the min-size policy selects, not just the selected
    /// rewriting's output.
    fn dependency_patterns(&self, q: &ConjunctiveQuery) -> Vec<Atom> {
        let mut out: Vec<Atom> = q.body.clone();
        for cv in self.registry.iter() {
            let relevant = matches!(
                citesys_rewrite::classify_view(q, &cv.view),
                citesys_rewrite::ViewRelevance::Relevant
            );
            if !relevant {
                continue;
            }
            out.extend(cv.view.body.iter().cloned());
            for cq in &cv.citation_queries {
                out.extend(cq.query.body.iter().cloned());
            }
        }
        out
    }
}

/// A buffered batch of updates on an [`IncrementalEngine`], started with
/// [`begin`](IncrementalEngine::begin).
///
/// Operations accumulate in order and touch nothing until
/// [`commit`](Self::commit), which applies the whole buffer as one
/// atomic changeset (one snapshot swap, delta-maintained caches).
/// Dropping the handle without committing discards the buffer.
pub struct Transaction<'e> {
    engine: &'e mut IncrementalEngine,
    changes: Changeset,
}

impl Transaction<'_> {
    /// Buffers an insertion.
    pub fn insert(&mut self, rel: &str, t: Tuple) -> &mut Self {
        self.changes.insert(rel, t);
        self
    }

    /// Buffers a deletion.
    pub fn delete(&mut self, rel: &str, t: Tuple) -> &mut Self {
        self.changes.delete(rel, t);
        self
    }

    /// The operations buffered so far.
    pub fn changes(&self) -> &Changeset {
        &self.changes
    }

    /// Applies the buffered ops as one atomic batch (see
    /// [`IncrementalEngine::apply`]); returns how many ops changed the
    /// data.
    pub fn commit(self) -> Result<usize, CiteError> {
        let Transaction { engine, changes } = self;
        engine.apply(&changes)
    }
}

/// True when a delta `(rel, t)` can match the pattern atom: same predicate,
/// same arity, and every constant position agrees. Variables (including
/// repeated ones) are checked for consistent assignment.
fn pattern_matches(pattern: &Atom, rel: &str, t: &Tuple) -> bool {
    if pattern.predicate != rel || pattern.arity() != t.arity() {
        return false;
    }
    let mut bound: BTreeMap<&citesys_cq::Symbol, &citesys_cq::Value> = BTreeMap::new();
    for (p, v) in pattern.terms.iter().zip(t.values()) {
        match p {
            Term::Const(c) => {
                if c != v {
                    return false;
                }
            }
            Term::Var(var) => match bound.get(var) {
                Some(&prev) => {
                    if prev != v {
                        return false;
                    }
                }
                None => {
                    bound.insert(var, v);
                }
            },
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper;
    use citesys_cq::parse_query;
    use citesys_storage::tuple;

    fn engine() -> IncrementalEngine {
        IncrementalEngine::new(
            paper::paper_database(),
            paper::paper_registry(),
            EngineOptions::default(),
        )
    }

    #[test]
    fn cache_hit_on_repeat() {
        let mut e = engine();
        let q = paper::paper_query();
        let a1 = e.cite(&q).unwrap();
        let a2 = e.cite(&q).unwrap();
        assert_eq!(a1.answer, a2.answer);
        assert_eq!(e.stats().hits, 1);
        assert_eq!(e.stats().misses, 1);
    }

    #[test]
    fn alpha_renamed_query_hits_cache() {
        let mut e = engine();
        e.cite(&paper::paper_query()).unwrap();
        let renamed = parse_query("Q(N) :- Family(I, N, D), FamilyIntro(I, T)").unwrap();
        e.cite(&renamed).unwrap();
        assert_eq!(e.stats().hits, 1);
    }

    #[test]
    fn relevant_update_invalidates_and_recomputes() {
        let mut e = engine();
        let q = paper::paper_query();
        let before = e.cite(&q).unwrap();
        assert_eq!(before.answer.len(), 1);
        // New intro makes Dopamine visible to Q.
        e.insert("FamilyIntro", tuple![13, "3rd"]).unwrap();
        assert_eq!(e.cached(), 0, "cache invalidated");
        let after = e.cite(&q).unwrap();
        assert_eq!(after.answer.len(), 2);
        assert_eq!(e.stats().invalidations, 1);
    }

    #[test]
    fn data_updates_keep_the_plan_cache_warm() {
        let mut e = engine();
        let q = paper::paper_query();
        e.cite(&q).unwrap();
        e.insert("FamilyIntro", tuple![13, "3rd"]).unwrap();
        let recomputed = e.cite(&q).unwrap();
        // The citation was recomputed (data changed) but the rewriting
        // search was not re-run — the plan survived the snapshot swap.
        assert_eq!(recomputed.rewrite_stats.plan_cache_hits, 1);
        assert_eq!(recomputed.rewrite_stats.search_effort(), 0);
        assert_eq!(recomputed.answer.len(), 2);
    }

    #[test]
    fn register_view_clears_plans_and_citations() {
        let db = paper::paper_database();
        let mut reg = CitationRegistry::new();
        // Start with only V3: the committee query is uncoverable.
        reg.add(paper::paper_registry().get("V3").unwrap().clone())
            .unwrap();
        let mut e = IncrementalEngine::new(db, reg, EngineOptions::default());
        let q = parse_query("Q(P) :- Committee(F, P)").unwrap();
        assert!(e.cite(&q).is_err());
        // Registering a covering view must invalidate the cached empty
        // plan, or the query stays wrongly uncoverable forever.
        e.register_view(
            CitationView::new(
                parse_query("VC(F, P) :- Committee(F, P)").unwrap(),
                vec![crate::snippet::CitationQuery::new(
                    parse_query("CVC(D) :- D = 'committee'").unwrap(),
                )],
                crate::snippet::CitationFunction::new(),
            )
            .unwrap(),
        )
        .unwrap();
        let cited = e.cite(&q).unwrap();
        assert_eq!(cited.answer.len(), 4);
        assert_eq!(e.stats().plan_invalidations, 1);
    }

    #[test]
    fn create_relation_clears_plans() {
        let mut e = engine();
        e.cite(&paper::paper_query()).unwrap();
        let plans_before = e.snapshot_service().plan_cache().len();
        assert!(plans_before > 0);
        e.create_relation(RelationSchema::from_parts(
            "Extra",
            &[("X", citesys_cq::ValueType::Int)],
            &[],
        ))
        .unwrap();
        assert_eq!(e.snapshot_service().plan_cache().len(), 0);
    }

    #[test]
    fn irrelevant_update_keeps_cache() {
        let mut e = engine();
        let q = parse_query("Q(N) :- Family(F, N, D), FamilyIntro(F, T)").unwrap();
        e.cite(&q).unwrap();
        // Committee is not in Q's body; it IS in CV1's citation query, so
        // it invalidates. Use a fresh unrelated relation instead.
        // (Committee updates are the *affected* case below.)
        let stats_before = e.stats();
        assert_eq!(stats_before.invalidations, 0);
        // Delete a tuple that does not exist: no change, no invalidation.
        e.delete("Family", &tuple![99, "Ghost", "X"]).unwrap();
        assert_eq!(e.cached(), 1);
        assert_eq!(e.stats().invalidations, 0);
    }

    #[test]
    fn committee_update_invalidates_via_citation_query() {
        // The citation (not the answer) depends on Committee through CV1.
        let mut e = engine();
        e.cite(&paper::paper_query()).unwrap();
        e.insert("Committee", tuple![11, "Eve"]).unwrap();
        assert_eq!(e.cached(), 0, "citation-query dependency tracked");
    }

    #[test]
    fn pattern_matching_respects_constants() {
        let p = parse_query("Q(X) :- R(X, 5)").unwrap().body[0].clone();
        assert!(pattern_matches(&p, "R", &tuple![1, 5]));
        assert!(!pattern_matches(&p, "R", &tuple![1, 6]));
        assert!(!pattern_matches(&p, "S", &tuple![1, 5]));
        assert!(!pattern_matches(&p, "R", &tuple![1]));
    }

    #[test]
    fn failed_mutation_leaves_service_usable() {
        // A rejected update (unknown relation / key violation) must not
        // wedge the service on the empty placeholder snapshot.
        let mut e = engine();
        e.cite(&paper::paper_query()).unwrap();
        assert!(e.insert("NoSuchRelation", tuple![1]).is_err());
        assert!(
            e.insert("Family", tuple![11, "Clash", "X"]).is_err(),
            "key violation"
        );
        // Cache was NOT invalidated (no change happened), and a fresh
        // (uncached) query still evaluates against the real data.
        let q = parse_query("Q2(T) :- FamilyIntro(F, T)").unwrap();
        let cited = e.cite(&q).unwrap();
        assert_eq!(cited.answer.len(), 2);
    }

    #[test]
    fn pattern_matching_repeated_vars() {
        let p = parse_query("Q(X) :- R(X, X)").unwrap().body[0].clone();
        assert!(pattern_matches(&p, "R", &tuple![3, 3]));
        assert!(!pattern_matches(&p, "R", &tuple![3, 4]));
    }

    #[test]
    fn multiple_queries_selective_invalidation() {
        let mut e = engine();
        // Q1 touches Family+FamilyIntro (+Committee via CV1).
        let q1 = paper::paper_query();
        // Q2 touches only FamilyIntro (rewritable via V3 alone).
        let q2 = parse_query("Q2(T) :- FamilyIntro(F, T)").unwrap();
        e.cite(&q1).unwrap();
        e.cite(&q2).unwrap();
        assert_eq!(e.cached(), 2);
        // A Committee insert affects q1 (via CV1) but not q2 (V3's
        // citation query is constant; V1 is not schema-relevant to q2).
        e.insert("Committee", tuple![12, "Frank"]).unwrap();
        assert_eq!(e.cached(), 1);
        assert_eq!(e.stats().invalidations, 1);
    }

    #[test]
    fn updates_mutate_in_place() {
        // `mutate` must not trigger an `Arc::make_mut` deep clone in
        // steady state: after the swap dance, the engine's Arc is unique.
        let mut e = engine();
        e.cite(&paper::paper_query()).unwrap();
        for i in 0..100 {
            e.insert("Committee", tuple![11, format!("P{i}")]).unwrap();
        }
        assert_eq!(Arc::strong_count(&e.db), 2, "engine + service only");
    }
}

//! View selection for an expected query workload (§3, *Defining
//! citations*): "interesting questions around defining and efficiently
//! deciding whether these views represent the 'best' ones given an expected
//! query workload, i.e. the ones that 'cover' the expected queries".
//!
//! A view set *covers* a query when at least one equivalent rewriting
//! exists. Selection looks for a small subset of candidate views covering
//! the whole workload: [`greedy_select`] is the practical algorithm,
//! [`exhaustive_select`] the optimal baseline for small instances
//! (experiment E8 compares them).

use citesys_cq::ConjunctiveQuery;
use citesys_rewrite::{rewrite, RewriteOptions, ViewSet};

/// Result of a selection run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Selection {
    /// Indices (into the candidate list) of the chosen views.
    pub chosen: Vec<usize>,
    /// Which workload queries the chosen views cover.
    pub covered: Vec<bool>,
    /// How many cover tests (rewrite calls) were spent.
    pub cover_checks: usize,
}

impl Selection {
    /// True when every workload query is covered.
    pub fn covers_all(&self) -> bool {
        self.covered.iter().all(|&c| c)
    }
}

/// Does `views` admit an equivalent rewriting for `q`?
pub fn covers(q: &ConjunctiveQuery, views: &[ConjunctiveQuery], opts: &RewriteOptions) -> bool {
    let Ok(set) = ViewSet::new(views.to_vec()) else {
        return false;
    };
    rewrite(q, &set, opts).is_ok_and(|o| !o.rewritings.is_empty())
}

/// Greedy workload cover: repeatedly add the candidate view (or, when no
/// single view helps, the candidate *pair*) that newly covers the most
/// uncovered queries (ties: lowest index); stop when everything is covered
/// or no step helps.
///
/// Coverage is *not* monotone per-view — a query may need several views
/// together (e.g. `V1 ⋈ V3` in the paper), so single-view gains can all be
/// zero while a pair makes progress; the pair lookahead handles exactly the
/// join-of-two-views case, which dominates real citation views.
pub fn greedy_select(
    workload: &[ConjunctiveQuery],
    candidates: &[ConjunctiveQuery],
    opts: &RewriteOptions,
) -> Selection {
    let mut chosen: Vec<usize> = Vec::new();
    let mut covered = vec![false; workload.len()];
    let mut checks = 0usize;

    // Gain of adding `extra` to the current selection.
    let gain_of =
        |chosen: &[usize], extra: &[usize], covered: &[bool], checks: &mut usize| -> usize {
            let trial: Vec<ConjunctiveQuery> = chosen
                .iter()
                .chain(extra)
                .map(|&i| candidates[i].clone())
                .collect();
            let mut gain = 0;
            for (qi, q) in workload.iter().enumerate() {
                if covered[qi] {
                    continue;
                }
                *checks += 1;
                if covers(q, &trial, opts) {
                    gain += 1;
                }
            }
            gain
        };

    while !covered.iter().all(|&c| c) {
        // Best single candidate.
        let mut best: Option<(usize, Vec<usize>)> = None; // (gain, additions)
        for ci in 0..candidates.len() {
            if chosen.contains(&ci) {
                continue;
            }
            let g = gain_of(&chosen, &[ci], &covered, &mut checks);
            if g > 0 && best.as_ref().is_none_or(|(bg, _)| g > *bg) {
                best = Some((g, vec![ci]));
            }
        }
        // Pair lookahead when no single view makes progress.
        if best.is_none() {
            'pairs: for ci in 0..candidates.len() {
                if chosen.contains(&ci) {
                    continue;
                }
                for cj in (ci + 1)..candidates.len() {
                    if chosen.contains(&cj) {
                        continue;
                    }
                    let g = gain_of(&chosen, &[ci, cj], &covered, &mut checks);
                    if g > 0 {
                        best = Some((g, vec![ci, cj]));
                        break 'pairs;
                    }
                }
            }
        }
        match best {
            None => break,
            Some((_, additions)) => {
                chosen.extend(additions);
                let views: Vec<ConjunctiveQuery> =
                    chosen.iter().map(|&i| candidates[i].clone()).collect();
                for (qi, q) in workload.iter().enumerate() {
                    if !covered[qi] {
                        checks += 1;
                        covered[qi] = covers(q, &views, opts);
                    }
                }
            }
        }
    }
    Selection {
        chosen,
        covered,
        cover_checks: checks,
    }
}

/// Exhaustive minimal cover: tries candidate subsets in order of increasing
/// size (then lexicographically) and returns the first that covers the
/// whole workload. Exponential — usable only for small candidate sets, as
/// the optimal baseline.
pub fn exhaustive_select(
    workload: &[ConjunctiveQuery],
    candidates: &[ConjunctiveQuery],
    opts: &RewriteOptions,
) -> Option<Selection> {
    let n = candidates.len();
    assert!(
        n <= 20,
        "exhaustive selection is exponential; got {n} candidates"
    );
    let mut checks = 0usize;
    // Enumerate subsets grouped by popcount.
    for size in 0..=n {
        let mut best_for_size: Option<Vec<usize>> = None;
        for mask in 0u32..(1u32 << n) {
            if mask.count_ones() as usize != size {
                continue;
            }
            let subset: Vec<usize> = (0..n).filter(|i| mask & (1 << i) != 0).collect();
            let views: Vec<ConjunctiveQuery> =
                subset.iter().map(|&i| candidates[i].clone()).collect();
            let mut all = true;
            for q in workload {
                checks += 1;
                if !covers(q, &views, opts) {
                    all = false;
                    break;
                }
            }
            if all {
                best_for_size = Some(subset);
                break;
            }
        }
        if let Some(chosen) = best_for_size {
            return Some(Selection {
                covered: vec![true; workload.len()],
                chosen,
                cover_checks: checks,
            });
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use citesys_cq::parse_query;

    fn q(s: &str) -> ConjunctiveQuery {
        parse_query(s).unwrap()
    }

    fn paper_candidates() -> Vec<ConjunctiveQuery> {
        vec![
            q("λ FID. V1(FID, FName, Desc) :- Family(FID, FName, Desc)"),
            q("V2(FID, FName, Desc) :- Family(FID, FName, Desc)"),
            q("V3(FID, Text) :- FamilyIntro(FID, Text)"),
            q("V4(FID, PName) :- Committee(FID, PName)"),
        ]
    }

    #[test]
    fn covers_needs_the_right_views() {
        let opts = RewriteOptions::default();
        let query = q("Q(N) :- Family(F, N, D), FamilyIntro(F, T)");
        let cands = paper_candidates();
        assert!(
            !covers(&query, &cands[0..1], &opts),
            "V1 alone is not enough"
        );
        assert!(covers(&query, &cands[0..3], &opts));
    }

    #[test]
    fn greedy_covers_paper_workload() {
        let opts = RewriteOptions::default();
        let workload = vec![
            q("Q1(N) :- Family(F, N, D), FamilyIntro(F, T)"),
            q("Q2(P) :- Committee(F, P)"),
        ];
        let sel = greedy_select(&workload, &paper_candidates(), &opts);
        assert!(sel.covers_all(), "covered: {:?}", sel.covered);
        // Needs one Family view, V3 and V4 — three views.
        assert_eq!(sel.chosen.len(), 3);
        assert!(sel.chosen.contains(&2));
        assert!(sel.chosen.contains(&3));
    }

    #[test]
    fn exhaustive_matches_greedy_size_here() {
        let opts = RewriteOptions::default();
        let workload = vec![
            q("Q1(N) :- Family(F, N, D), FamilyIntro(F, T)"),
            q("Q2(P) :- Committee(F, P)"),
        ];
        let g = greedy_select(&workload, &paper_candidates(), &opts);
        let e = exhaustive_select(&workload, &paper_candidates(), &opts).unwrap();
        assert!(e.covers_all());
        assert_eq!(e.chosen.len(), g.chosen.len());
    }

    #[test]
    fn uncoverable_workload_reported() {
        let opts = RewriteOptions::default();
        let workload = vec![q("Q(X) :- Unknown(X)")];
        let sel = greedy_select(&workload, &paper_candidates(), &opts);
        assert!(!sel.covers_all());
        assert!(sel.chosen.is_empty());
        assert!(exhaustive_select(&workload, &paper_candidates(), &opts).is_none());
    }

    #[test]
    fn empty_workload_trivially_covered() {
        let opts = RewriteOptions::default();
        let sel = greedy_select(&[], &paper_candidates(), &opts);
        assert!(sel.covers_all());
        assert!(sel.chosen.is_empty());
        let e = exhaustive_select(&[], &paper_candidates(), &opts).unwrap();
        assert!(e.chosen.is_empty());
    }

    #[test]
    fn greedy_handles_joint_coverage() {
        // A query needing two views simultaneously: no single view has
        // positive gain at step 1 — the pair lookahead covers it.
        let opts = RewriteOptions::default();
        let workload = vec![q("Q(N) :- Family(F, N, D), FamilyIntro(F, T)")];
        let cands = vec![
            q("VA(F, N, D) :- Family(F, N, D)"),
            q("VB(F, T) :- FamilyIntro(F, T)"),
        ];
        let sel = greedy_select(&workload, &cands, &opts);
        assert!(sel.covers_all());
        assert_eq!(sel.chosen.len(), 2);
        let e = exhaustive_select(&workload, &cands, &opts).unwrap();
        assert_eq!(e.chosen.len(), 2);
    }
}

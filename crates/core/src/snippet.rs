//! Citation snippets and citation functions.
//!
//! §2 of the paper: "The citation queries pull snippets of information from
//! the database to be included in the citation; the citation function takes
//! the output of the citation queries as input and outputs a citation in
//! some appropriate format."

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use citesys_cq::{ConjunctiveQuery, Symbol, Term, Value};
use citesys_storage::QueryAnswer;

/// The structured output of a citation function: named fields with one or
/// more values each (e.g. `committee -> [Alice, Bob]`), tagged with the
/// view and parameter values it was generated for.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug, Serialize, Deserialize)]
pub struct CitationSnippet {
    /// View that produced this snippet.
    pub view: Symbol,
    /// λ-parameter values the citation queries were instantiated with.
    pub params: Vec<Value>,
    /// Field name → values (sorted, deduplicated).
    pub fields: BTreeMap<String, Vec<String>>,
}

impl CitationSnippet {
    /// All values of one field (empty slice when absent).
    pub fn field(&self, name: &str) -> &[String] {
        self.fields.get(name).map_or(&[], Vec::as_slice)
    }

    /// Merges another snippet's fields into this one (used by the *join*
    /// interpretation of `·`).
    pub fn absorb(&mut self, other: &CitationSnippet) {
        for (k, vs) in &other.fields {
            let slot = self.fields.entry(k.clone()).or_default();
            for v in vs {
                if !slot.contains(v) {
                    slot.push(v.clone());
                }
            }
            slot.sort();
        }
    }
}

impl fmt::Display for CitationSnippet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}", self.view)?;
        if !self.params.is_empty() {
            let ps: Vec<String> = self.params.iter().map(ToString::to_string).collect();
            write!(f, "({})", ps.join(", "))?;
        }
        write!(f, "]")?;
        for (i, (k, vs)) in self.fields.iter().enumerate() {
            write!(
                f,
                "{} {k}: {}",
                if i == 0 { "" } else { ";" },
                vs.join(", ")
            )?;
        }
        Ok(())
    }
}

/// A citation query with named output fields.
///
/// Field names default to the head variable names of the query (e.g.
/// `CV1(FID, PName) :- Committee(FID, PName)` yields fields `FID` and
/// `PName`); constant head positions get positional names.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CitationQuery {
    /// The conjunctive query pulling the snippet data.
    pub query: ConjunctiveQuery,
    /// One field name per head position.
    pub fields: Vec<String>,
}

impl CitationQuery {
    /// Builds a citation query with default field names.
    pub fn new(query: ConjunctiveQuery) -> Self {
        let fields = query
            .head
            .terms
            .iter()
            .enumerate()
            .map(|(i, t)| match t {
                Term::Var(v) => v.to_string(),
                Term::Const(_) => format!("field{i}"),
            })
            .collect();
        CitationQuery { query, fields }
    }

    /// Builds a citation query with explicit field names (must match the
    /// head arity).
    pub fn with_fields(query: ConjunctiveQuery, fields: Vec<String>) -> Option<Self> {
        (fields.len() == query.arity()).then_some(CitationQuery { query, fields })
    }
}

/// A citation function: turns citation-query answers into a
/// [`CitationSnippet`]. Static fields (database name, license, year …) are
/// merged with the dynamic fields pulled by the citation queries.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct CitationFunction {
    /// Fields attached verbatim to every snippet this function renders.
    pub static_fields: BTreeMap<String, String>,
}

impl CitationFunction {
    /// A function with no static fields.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a static field (builder style).
    pub fn with_static(mut self, field: impl Into<String>, value: impl Into<String>) -> Self {
        self.static_fields.insert(field.into(), value.into());
        self
    }

    /// Renders a snippet from instantiated citation-query answers.
    ///
    /// `answers` pairs each citation query's field names with its answer;
    /// every output tuple contributes its values to the corresponding
    /// fields (sorted, deduplicated) — e.g. all committee members of a
    /// family end up in one `PName` field.
    pub fn render(
        &self,
        view: &Symbol,
        params: &[Value],
        answers: &[(&[String], &QueryAnswer)],
    ) -> CitationSnippet {
        let mut fields: BTreeMap<String, Vec<String>> = BTreeMap::new();
        for (k, v) in &self.static_fields {
            fields.entry(k.clone()).or_default().push(v.clone());
        }
        for (names, answer) in answers {
            for row in &answer.rows {
                for (name, value) in names.iter().zip(row.tuple.values()) {
                    let slot = fields.entry(name.clone()).or_default();
                    let rendered = value.to_string();
                    if !slot.contains(&rendered) {
                        slot.push(rendered);
                    }
                }
            }
        }
        for vs in fields.values_mut() {
            vs.sort();
        }
        CitationSnippet {
            view: view.clone(),
            params: params.to_vec(),
            fields,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use citesys_cq::parse_query;
    use citesys_cq::ValueType;
    use citesys_storage::{evaluate, tuple, Database, RelationSchema};

    fn committee_db() -> Database {
        let mut d = Database::new();
        d.create_relation(RelationSchema::from_parts(
            "Committee",
            &[("FID", ValueType::Int), ("PName", ValueType::Text)],
            &[0, 1],
        ))
        .unwrap();
        d.insert("Committee", tuple![11, "Bob"]).unwrap();
        d.insert("Committee", tuple![11, "Alice"]).unwrap();
        d.insert("Committee", tuple![12, "Carol"]).unwrap();
        d
    }

    #[test]
    fn citation_query_default_fields() {
        let cq = CitationQuery::new(
            parse_query("λ FID. CV1(FID, PName) :- Committee(FID, PName)").unwrap(),
        );
        assert_eq!(cq.fields, vec!["FID", "PName"]);
    }

    #[test]
    fn constant_head_positions_get_positional_names() {
        let cq = CitationQuery::new(parse_query("CV2(D) :- D = 'GtoPdb'").unwrap());
        assert_eq!(cq.fields, vec!["field0"]);
    }

    #[test]
    fn with_fields_checks_arity() {
        let q = parse_query("CV(A, B) :- R(A, B)").unwrap();
        assert!(CitationQuery::with_fields(q.clone(), vec!["x".into()]).is_none());
        let cq = CitationQuery::with_fields(q, vec!["x".into(), "y".into()]).unwrap();
        assert_eq!(cq.fields, vec!["x", "y"]);
    }

    #[test]
    fn render_collects_and_sorts_values() {
        let db = committee_db();
        let cq = CitationQuery::new(
            parse_query("λ FID. CV1(FID, PName) :- Committee(FID, PName)").unwrap(),
        );
        let inst = cq.query.instantiate(&[Value::Int(11)]).unwrap();
        let ans = evaluate(&db, &inst).unwrap();
        let f = CitationFunction::new().with_static("database", "GtoPdb");
        let snip = f.render(&Symbol::new("V1"), &[Value::Int(11)], &[(&cq.fields, &ans)]);
        assert_eq!(snip.field("PName"), ["Alice", "Bob"]);
        assert_eq!(snip.field("database"), ["GtoPdb"]);
        assert_eq!(snip.field("FID"), ["11"]);
        assert!(snip.field("missing").is_empty());
    }

    #[test]
    fn absorb_merges_fields() {
        let mut a = CitationSnippet {
            view: Symbol::new("V1"),
            params: vec![],
            fields: BTreeMap::from([("p".to_string(), vec!["x".to_string()])]),
        };
        let b = CitationSnippet {
            view: Symbol::new("V2"),
            params: vec![],
            fields: BTreeMap::from([
                ("p".to_string(), vec!["a".to_string(), "x".to_string()]),
                ("q".to_string(), vec!["z".to_string()]),
            ]),
        };
        a.absorb(&b);
        assert_eq!(a.field("p"), ["a", "x"]);
        assert_eq!(a.field("q"), ["z"]);
    }

    #[test]
    fn snippet_display() {
        let s = CitationSnippet {
            view: Symbol::new("V1"),
            params: vec![Value::Int(11)],
            fields: BTreeMap::from([("PName".to_string(), vec!["Alice".to_string()])]),
        };
        assert_eq!(s.to_string(), "[V1(11)] PName: Alice");
    }
}

//! The citation pipeline: the paper's §2 pipeline, end to end.
//!
//! Given a database, a registry of citation views and a conjunctive query
//! `Q`:
//!
//! 1. compute the minimal equivalent rewritings `{Q1, …, Qn}` of `Q` over
//!    the views (`citesys-rewrite`) — the cacheable [`RewritePlan`];
//! 2. materialize the views used and evaluate each rewriting, collecting
//!    **every binding** per output tuple;
//! 3. per binding, build the joint citation `CV1(B1) · … · CVn(Bn)`
//!    (Definition 2.1); per tuple, sum bindings with `+`
//!    (Definition 2.2); across rewritings combine with `+R`;
//! 4. interpret the symbolic expressions under the owner's policies and
//!    render citation snippets; aggregate with `Agg`.
//!
//! Two modes address §3's "Calculating citations" concern: `Formal`
//! evaluates every rewriting (the paper's semantics, used as the measured
//! baseline), `CostPruned` selects the cheapest rewriting by a schema-level
//! size estimate *before* touching the data.
//!
//! The preferred entry point is the owned, thread-safe
//! [`CitationService`](crate::service::CitationService), which caches
//! rewrite plans across calls. The borrowing [`CitationEngine`] remains as
//! a deprecated shim over the same pipeline.

use std::collections::{BTreeMap, BTreeSet};

use citesys_cq::{ConjunctiveQuery, Symbol, Term, Value, ValueType};
use citesys_rewrite::{rewrite, RewritePlan, RewriteStats, Rewriting};
use citesys_storage::{evaluate, Attribute, Database, QueryAnswer, RelationSchema, Tuple};

use crate::error::CiteError;
use crate::expr::{CiteAtom, CiteExpr};
use crate::policy::{
    atoms_for_tuple, choose_rewriting, AggPolicy, JointPolicy, PolicySet, RewritingChoice,
};
use crate::registry::CitationRegistry;
use crate::snippet::CitationSnippet;

/// How the engine handles multiple rewritings.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum CitationMode {
    /// Evaluate every rewriting — the paper's formal semantics
    /// ("going through all rewritings would be impractical" — this is the
    /// baseline experiment E3/E5 measures).
    Formal,
    /// Choose one rewriting up front using a schema-level cost estimate,
    /// then evaluate only that one (§3's cost-based pruning).
    ///
    /// The estimate is not exact: when branches tie (or cardinality upper
    /// bounds are loose) the pruned choice may differ from the formal
    /// minimum — never producing a *smaller* citation than `Formal` with
    /// the min-size policy, but possibly a different same-size or larger
    /// one. E3 measures the time gap, `tests/proptests.rs` pins the
    /// one-sided guarantee.
    #[default]
    CostPruned,
}

/// Engine configuration.
#[derive(Clone, Copy, Debug, Default)]
pub struct EngineOptions {
    /// Rewriting search options.
    pub rewrite: citesys_rewrite::RewriteOptions,
    /// The owner's combination policies.
    pub policies: PolicySet,
    /// Formal vs cost-pruned evaluation.
    pub mode: CitationMode,
    /// When no equivalent rewriting exists, fall back to **maximally
    /// contained** rewritings (Definition 2.1's "(partial) rewriting"):
    /// tuples derivable through some contained rewriting get citations,
    /// the rest are reported uncited in [`CitedAnswer::coverage`].
    pub allow_partial: bool,
}

/// How much of the answer the citations cover.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Coverage {
    /// Every answer tuple carries a citation (equivalent rewritings).
    Full,
    /// Citations come from contained rewritings; `uncited` answer tuples
    /// have no citation.
    Partial {
        /// Number of answer tuples without any citation.
        uncited: usize,
    },
}

/// The citation of one output tuple.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TupleCitation {
    /// The output tuple.
    pub tuple: Tuple,
    /// One citation expression per evaluated rewriting (aligned with
    /// [`CitedAnswer::rewritings`]).
    pub branches: Vec<CiteExpr>,
    /// Citation atoms selected by the policies.
    pub atoms: BTreeSet<CiteAtom>,
    /// Rendered snippets (one per atom under `JointPolicy::Union`, a
    /// single merged snippet under `JointPolicy::Join`).
    pub snippets: Vec<CitationSnippet>,
}

impl TupleCitation {
    /// The full symbolic citation `(… + …) +R (…)` for this tuple.
    pub fn expr(&self) -> CiteExpr {
        CiteExpr::alt_r(self.branches.clone())
    }
}

/// The aggregate citation for the whole query answer (`Agg`).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct AggregateCitation {
    /// Union of the per-tuple citation atoms.
    pub atoms: BTreeSet<CiteAtom>,
    /// Rendered snippets.
    pub snippets: Vec<CitationSnippet>,
}

/// Everything the engine produces for one query.
#[derive(Clone, Debug)]
pub struct CitedAnswer {
    /// The query answer (evaluated directly over the base database).
    pub answer: QueryAnswer,
    /// The rewritings that were evaluated (after mode-based selection).
    pub rewritings: Vec<ConjunctiveQuery>,
    /// The `+R` choice the policies made.
    pub choice: RewritingChoice,
    /// Whether citations cover the whole answer.
    pub coverage: Coverage,
    /// Per-tuple citations, aligned with `answer.rows`.
    pub tuples: Vec<TupleCitation>,
    /// The aggregate citation (`None` under `AggPolicy::PerTupleOnly`).
    pub aggregate: Option<AggregateCitation>,
    /// Rewriting-search statistics. A re-cite through a prepared plan has
    /// `plan_cache_hits == 1` and zero search-effort counters.
    pub rewrite_stats: RewriteStats,
}

// ---------------------------------------------------------------------------
// The shared pipeline: free functions over borrowed state, used by both the
// owned `CitationService` and the deprecated borrowing `CitationEngine`.
// ---------------------------------------------------------------------------

/// Runs the rewriting search for `q` (with the contained-rewriting
/// fallback when `allow_partial` is set) and packages the result as a
/// cacheable plan. The plan may be empty — citation then fails with
/// [`CiteError::NoRewriting`], and caching the empty plan makes the
/// failure cheap to repeat.
pub(crate) fn compute_plan(
    registry: &CitationRegistry,
    options: &EngineOptions,
    q: &ConjunctiveQuery,
) -> Result<RewritePlan, CiteError> {
    let views = registry.view_set();
    let outcome = rewrite(q, &views, &options.rewrite)?;
    let mut partial = false;
    let outcome = if outcome.rewritings.is_empty() && options.allow_partial {
        partial = true;
        let contained_opts = citesys_rewrite::RewriteOptions {
            goal: citesys_rewrite::RewriteGoal::Contained,
            ..options.rewrite
        };
        rewrite(q, &views, &contained_opts)?
    } else {
        outcome
    };
    Ok(RewritePlan {
        rewritings: outcome.rewritings,
        stats: outcome.stats,
        partial,
    })
}

/// Mode-based selection: which of the plan's rewritings to evaluate.
/// Partial rewritings are incomparable — dropping one loses coverage — so
/// the partial fallback always evaluates all of them.
pub(crate) fn select_rewritings<'p>(
    db: &Database,
    registry: &CitationRegistry,
    options: &EngineOptions,
    plan: &'p RewritePlan,
) -> Vec<&'p Rewriting> {
    match (options.mode, plan.partial) {
        (CitationMode::Formal, _) | (_, true) => plan.rewritings.iter().collect(),
        (CitationMode::CostPruned, false) => plan
            .rewritings
            .iter()
            .enumerate()
            .min_by_key(|(i, r)| (schema_estimate(db, registry, &r.query), *i))
            .map(|(_, r)| vec![r])
            .unwrap_or_default(),
    }
}

/// The view predicates the selected rewritings evaluate over.
pub(crate) fn needed_views<'r>(selected: &[&'r Rewriting]) -> BTreeSet<&'r Symbol> {
    selected
        .iter()
        .flat_map(|r| r.query.body.iter().map(|a| &a.predicate))
        .collect()
}

/// Materializes each named view into `vdb` (skipping views already
/// present), so rewritings — queries over view predicates — can be
/// evaluated by the standard evaluator. Incremental by design: the
/// service's cross-query view cache calls this repeatedly on one scratch
/// database.
pub(crate) fn materialize_views_into(
    db: &Database,
    registry: &CitationRegistry,
    needed: &BTreeSet<&Symbol>,
    vdb: &mut Database,
) -> Result<(), CiteError> {
    for name in needed {
        if vdb.has_relation(name.as_str()) {
            continue;
        }
        let cv = registry
            .get(name.as_str())
            .ok_or_else(|| CiteError::BadCitationView {
                view: name.to_string(),
                reason: "rewriting references unregistered view".to_string(),
            })?;
        let schema = infer_view_schema(db, &cv.view)?;
        vdb.create_relation(schema)?;
        let ans = evaluate(db, &cv.view)?;
        for row in &ans.rows {
            vdb.insert(name.as_str(), row.tuple.clone())?;
        }
    }
    Ok(())
}

/// Steps 4–7 of the pipeline: evaluate the selected rewritings over the
/// materialized views, assemble the per-tuple citation expressions, apply
/// the policies and render snippets. `stats` is embedded verbatim in the
/// result (the caller decides whether it reflects a fresh search or a plan
/// cache hit).
#[allow(clippy::too_many_arguments)] // internal seam between engine/service
pub(crate) fn cite_selected(
    db: &Database,
    registry: &CitationRegistry,
    options: &EngineOptions,
    q: &ConjunctiveQuery,
    selected: &[&Rewriting],
    partial: bool,
    view_db: &Database,
    stats: RewriteStats,
) -> Result<CitedAnswer, CiteError> {
    if selected.is_empty() {
        return Err(CiteError::NoRewriting {
            query: q.to_string(),
        });
    }

    // Ground-truth answer (also the digest basis for fixity).
    let answer = evaluate(db, q)?;

    // Per-rewriting, per-tuple citation expressions.
    let mut branch_map: BTreeMap<Tuple, Vec<CiteExpr>> = BTreeMap::new();
    for row in &answer.rows {
        branch_map.insert(row.tuple.clone(), vec![CiteExpr::zero(); selected.len()]);
    }
    for (ri, r) in selected.iter().enumerate() {
        let ans = evaluate(view_db, &r.query)?;
        for row in &ans.rows {
            let summands: Vec<CiteExpr> = row
                .bindings
                .iter()
                .map(|b| {
                    let factors: Vec<CiteExpr> = r
                        .query
                        .body
                        .iter()
                        .map(|atom| {
                            let cv = registry
                                .get(atom.predicate.as_str())
                                .expect("rewriting uses registered views");
                            let params: Vec<Value> = cv
                                .view
                                .param_positions()
                                .iter()
                                .map(|(_, pos)| {
                                    b.eval_term(&atom.terms[*pos])
                                        .expect("distinguished view position bound by binding")
                                })
                                .collect();
                            CiteExpr::Atom(CiteAtom::new(atom.predicate.clone(), params))
                        })
                        .collect();
                    CiteExpr::prod(factors)
                })
                .collect();
            let expr = CiteExpr::sum(summands);
            // Equivalent rewritings produce the same tuple set as the
            // direct evaluation; tolerate (and ignore) discrepancies in
            // release builds rather than corrupting citations.
            debug_assert!(
                branch_map.contains_key(&row.tuple),
                "rewriting produced tuple {:?} absent from direct answer",
                row.tuple
            );
            if let Some(branches) = branch_map.get_mut(&row.tuple) {
                branches[ri] = expr;
            }
        }
    }

    // Global +R choice, per-tuple interpretation.
    let branch_matrix: Vec<Vec<CiteExpr>> = answer
        .rows
        .iter()
        .map(|row| branch_map[&row.tuple].clone())
        .collect();
    let choice = if partial {
        // Contained rewritings each cover different tuples; union them.
        RewritingChoice::All
    } else {
        match options.mode {
            CitationMode::CostPruned => RewritingChoice::Index(0),
            CitationMode::Formal => choose_rewriting(options.policies.rewritings, &branch_matrix),
        }
    };

    // Render snippets (cached per atom).
    let mut snippet_cache: BTreeMap<CiteAtom, CitationSnippet> = BTreeMap::new();
    let mut tuples = Vec::with_capacity(answer.rows.len());
    let mut agg_atoms: BTreeSet<CiteAtom> = BTreeSet::new();
    for (row, branches) in answer.rows.iter().zip(branch_matrix) {
        let atoms = atoms_for_tuple(&options.policies, &branches, choice);
        agg_atoms.extend(atoms.iter().cloned());
        let snippets = render_atoms(db, registry, options, &atoms, &mut snippet_cache)?;
        tuples.push(TupleCitation {
            tuple: row.tuple.clone(),
            branches,
            atoms,
            snippets,
        });
    }

    let aggregate = match options.policies.agg {
        AggPolicy::PerTupleOnly => None,
        AggPolicy::Union => {
            let snippets = render_atoms(db, registry, options, &agg_atoms, &mut snippet_cache)?;
            Some(AggregateCitation {
                atoms: agg_atoms,
                snippets,
            })
        }
    };

    let coverage = if partial {
        Coverage::Partial {
            uncited: tuples.iter().filter(|t| t.atoms.is_empty()).count(),
        }
    } else {
        Coverage::Full
    };

    Ok(CitedAnswer {
        answer,
        rewritings: selected.iter().map(|r| r.query.clone()).collect(),
        choice,
        coverage,
        tuples,
        aggregate,
        rewrite_stats: stats,
    })
}

/// One-shot pipeline over borrowed state: plan, select, materialize into a
/// fresh scratch database, annotate. The service layers caching over the
/// same pieces.
pub(crate) fn cite_uncached(
    db: &Database,
    registry: &CitationRegistry,
    options: &EngineOptions,
    q: &ConjunctiveQuery,
) -> Result<CitedAnswer, CiteError> {
    let plan = compute_plan(registry, options, q)?;
    if plan.rewritings.is_empty() {
        return Err(CiteError::NoRewriting {
            query: q.to_string(),
        });
    }
    let selected = select_rewritings(db, registry, options, &plan);
    let mut view_db = Database::new();
    materialize_views_into(db, registry, &needed_views(&selected), &mut view_db)?;
    cite_selected(
        db,
        registry,
        options,
        q,
        &selected,
        plan.partial,
        &view_db,
        plan.stats,
    )
}

/// Renders the snippets for a set of atoms under the joint policy.
pub(crate) fn render_atoms(
    db: &Database,
    registry: &CitationRegistry,
    options: &EngineOptions,
    atoms: &BTreeSet<CiteAtom>,
    cache: &mut BTreeMap<CiteAtom, CitationSnippet>,
) -> Result<Vec<CitationSnippet>, CiteError> {
    let mut snippets = Vec::with_capacity(atoms.len());
    for atom in atoms {
        if let Some(hit) = cache.get(atom) {
            snippets.push(hit.clone());
            continue;
        }
        let rendered = render_atom(db, registry, atom)?;
        cache.insert(atom.clone(), rendered.clone());
        snippets.push(rendered);
    }
    if options.policies.joint == JointPolicy::Join && snippets.len() > 1 {
        let mut merged = snippets[0].clone();
        for s in &snippets[1..] {
            merged.absorb(s);
        }
        merged.view = Symbol::new("joined");
        merged.params = Vec::new();
        snippets = vec![merged];
    }
    Ok(snippets)
}

/// Instantiates and evaluates one view's citation queries at the atom's
/// parameter values and renders the snippet.
fn render_atom(
    db: &Database,
    registry: &CitationRegistry,
    atom: &CiteAtom,
) -> Result<CitationSnippet, CiteError> {
    let cv = registry
        .get(atom.view.as_str())
        .ok_or_else(|| CiteError::BadCitationView {
            view: atom.view.to_string(),
            reason: "atom references unregistered view".to_string(),
        })?;
    let mut answers: Vec<(&[String], QueryAnswer)> = Vec::new();
    for cq in &cv.citation_queries {
        let inst = cq.query.instantiate(&atom.params)?;
        let ans = evaluate(db, &inst)?;
        answers.push((cq.fields.as_slice(), ans));
    }
    let borrowed: Vec<(&[String], &QueryAnswer)> = answers.iter().map(|(f, a)| (*f, a)).collect();
    Ok(cv.function.render(&atom.view, &atom.params, &borrowed))
}

/// Schema-level citation-size estimate of a rewriting (no data access
/// beyond catalog statistics): a parameterized view contributes one
/// citation per distinct parameter valuation — estimated as the product
/// of the per-parameter distinct counts in the underlying base columns —
/// while an unparameterized view contributes exactly one.
pub(crate) fn schema_estimate(
    db: &Database,
    registry: &CitationRegistry,
    rewriting: &ConjunctiveQuery,
) -> usize {
    rewriting
        .body
        .iter()
        .map(|atom| {
            let Some(cv) = registry.get(atom.predicate.as_str()) else {
                return usize::MAX / 2;
            };
            if !cv.is_parameterized() {
                return 1;
            }
            cv.view
                .params
                .iter()
                .map(|p| param_distinct_estimate(db, &cv.view, p))
                .product::<usize>()
                .max(1)
        })
        .sum()
}

/// Distinct-count estimate for one λ-parameter: the number of distinct
/// values in the base column where the parameter first occurs in the
/// view body (falls back to the relation's cardinality).
fn param_distinct_estimate(db: &Database, view: &ConjunctiveQuery, param: &Symbol) -> usize {
    for atom in &view.body {
        for (pos, t) in atom.terms.iter().enumerate() {
            if t.as_var() == Some(param) {
                if let Ok(rel) = db.relation(atom.predicate.as_str()) {
                    return rel.distinct_count(pos);
                }
            }
        }
    }
    db.relation(
        view.body
            .first()
            .map(|a| a.predicate.as_str())
            .unwrap_or_default(),
    )
    .map_or(1, citesys_storage::Relation::len)
}

/// Infers the relation schema of a view from the base catalog.
fn infer_view_schema(db: &Database, view: &ConjunctiveQuery) -> Result<RelationSchema, CiteError> {
    let mut attrs = Vec::with_capacity(view.arity());
    for (i, t) in view.head.terms.iter().enumerate() {
        let (name, ty) = match t {
            Term::Const(c) => (format!("c{i}"), c.type_name()),
            Term::Var(v) => {
                let ty = type_of_var(db, view, v)?;
                (v.to_string(), ty)
            }
        };
        attrs.push((name, ty));
    }
    // Disambiguate duplicate attribute names positionally.
    let mut seen: BTreeSet<String> = BTreeSet::new();
    let attributes = attrs
        .into_iter()
        .enumerate()
        .map(|(i, (name, ty))| {
            let unique = if seen.insert(name.clone()) {
                name
            } else {
                format!("{name}_{i}")
            };
            Attribute::new(unique, ty)
        })
        .collect();
    Ok(RelationSchema::new(view.name().clone(), attributes, vec![]))
}

/// Resolves a view variable's type from its first occurrence in the
/// view body.
fn type_of_var(db: &Database, view: &ConjunctiveQuery, v: &Symbol) -> Result<ValueType, CiteError> {
    for atom in &view.body {
        for (pos, t) in atom.terms.iter().enumerate() {
            if t.as_var() == Some(v) {
                let rel = db.relation(atom.predicate.as_str())?;
                return Ok(rel.schema().attributes[pos].ty);
            }
        }
    }
    Err(CiteError::BadCitationView {
        view: view.name().to_string(),
        reason: format!("cannot infer type of head variable {v}"),
    })
}

// ---------------------------------------------------------------------------
// The deprecated borrowing shim.
// ---------------------------------------------------------------------------

/// The original borrowing citation engine, kept as a thin shim over the
/// shared pipeline.
///
/// Prefer [`CitationService`](crate::service::CitationService): it owns its
/// database and registry behind `Arc`s, is `Send + Sync`, caches rewrite
/// plans across calls (`prepare`), and batches (`cite_batch`). See
/// `MIGRATION.md` at the repository root for a mapping.
#[deprecated(
    since = "0.2.0",
    note = "use CitationService::builder() — owned, thread-safe, and amortizes \
            the rewriting search across calls (see MIGRATION.md)"
)]
#[derive(Clone, Copy, Debug)]
pub struct CitationEngine<'a> {
    db: &'a Database,
    registry: &'a CitationRegistry,
    options: EngineOptions,
}

#[allow(deprecated)]
impl<'a> CitationEngine<'a> {
    /// Creates an engine over a database and a citation-view registry.
    pub fn new(db: &'a Database, registry: &'a CitationRegistry, options: EngineOptions) -> Self {
        CitationEngine {
            db,
            registry,
            options,
        }
    }

    /// Read access to the options.
    pub fn options(&self) -> &EngineOptions {
        &self.options
    }

    /// Computes the citation for a general query (the paper's central
    /// operation).
    ///
    /// ```
    /// use citesys_core::paper;
    /// # #[allow(deprecated)]
    /// use citesys_core::{CitationEngine, CitationMode, EngineOptions};
    ///
    /// let db = paper::paper_database();
    /// let registry = paper::paper_registry();
    /// # #[allow(deprecated)]
    /// let engine = CitationEngine::new(&db, &registry, EngineOptions {
    ///     mode: CitationMode::Formal, ..Default::default()
    /// });
    /// let cited = engine.cite(&paper::paper_query()).unwrap();
    /// // Two rewritings (the paper's Q1, Q2), min-size picks CV2·CV3.
    /// assert_eq!(cited.rewritings.len(), 2);
    /// let atoms: Vec<String> =
    ///     cited.tuples[0].atoms.iter().map(ToString::to_string).collect();
    /// assert_eq!(atoms, ["CV2", "CV3"]);
    /// ```
    pub fn cite(&self, q: &ConjunctiveQuery) -> Result<CitedAnswer, CiteError> {
        cite_uncached(self.db, self.registry, &self.options, q)
    }

    /// Schema-level citation-size estimate of a rewriting (see the
    /// pipeline documentation).
    pub fn schema_estimate(&self, rewriting: &ConjunctiveQuery) -> usize {
        schema_estimate(self.db, self.registry, rewriting)
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::paper;
    use crate::policy::RewritePolicy;
    use citesys_cq::parse_query;
    use citesys_storage::tuple;

    fn engine_fixture() -> (Database, CitationRegistry) {
        (paper::paper_database(), paper::paper_registry())
    }

    #[test]
    fn paper_example_formal_mode() {
        let (db, reg) = engine_fixture();
        let engine = CitationEngine::new(
            &db,
            &reg,
            EngineOptions {
                mode: CitationMode::Formal,
                ..Default::default()
            },
        );
        let q =
            parse_query("Q(FName) :- Family(FID, FName, Desc), FamilyIntro(FID, Text)").unwrap();
        let cited = engine.cite(&q).unwrap();

        // One output tuple: (Calcitonin).
        assert_eq!(cited.answer.len(), 1);
        assert_eq!(cited.tuples[0].tuple, tuple!["Calcitonin"]);

        // Two rewritings evaluated; the symbolic expression matches §2:
        // (CV1(11)·CV3 + CV1(12)·CV3) +R (CV2·CV3)  (branch order may put
        // V2 first since rewritings are sorted deterministically).
        assert_eq!(cited.rewritings.len(), 2);
        let expr = cited.tuples[0].expr().to_string();
        assert!(
            expr.contains("CV1(11)·CV3") && expr.contains("CV1(12)·CV3"),
            "Q1 branch missing: {expr}"
        );
        assert!(expr.contains("CV2·CV3"), "Q2 branch missing: {expr}");
        assert!(
            expr.contains("+R"),
            "two rewritings must be +R-combined: {expr}"
        );

        // Min-size +R picks the V2 branch: final atoms CV2, CV3.
        let atoms: Vec<String> = cited.tuples[0]
            .atoms
            .iter()
            .map(ToString::to_string)
            .collect();
        assert_eq!(atoms, vec!["CV2", "CV3"]);

        // Snippets rendered for both atoms.
        assert_eq!(cited.tuples[0].snippets.len(), 2);
        let agg = cited.aggregate.as_ref().unwrap();
        assert_eq!(agg.atoms.len(), 2);
    }

    #[test]
    fn paper_example_union_policy_keeps_committee() {
        let (db, reg) = engine_fixture();
        let engine = CitationEngine::new(
            &db,
            &reg,
            EngineOptions {
                mode: CitationMode::Formal,
                policies: PolicySet {
                    rewritings: RewritePolicy::Union,
                    ..Default::default()
                },
                ..Default::default()
            },
        );
        let q =
            parse_query("Q(FName) :- Family(FID, FName, Desc), FamilyIntro(FID, Text)").unwrap();
        let cited = engine.cite(&q).unwrap();
        // Union keeps CV1(11), CV1(12), CV2, CV3.
        assert_eq!(cited.tuples[0].atoms.len(), 4);
        // The parameterized snippets carry the committee names.
        let snips = &cited.tuples[0].snippets;
        let committee: Vec<&str> = snips
            .iter()
            .filter(|s| s.view == "V1")
            .flat_map(|s| s.field("PName").iter().map(String::as_str))
            .collect();
        assert!(committee.contains(&"Alice"));
        assert!(committee.contains(&"Carol"));
    }

    #[test]
    fn cost_pruned_mode_evaluates_one_rewriting() {
        let (db, reg) = engine_fixture();
        let engine = CitationEngine::new(
            &db,
            &reg,
            EngineOptions {
                mode: CitationMode::CostPruned,
                ..Default::default()
            },
        );
        let q =
            parse_query("Q(FName) :- Family(FID, FName, Desc), FamilyIntro(FID, Text)").unwrap();
        let cited = engine.cite(&q).unwrap();
        assert_eq!(cited.rewritings.len(), 1);
        // The schema estimate prefers the unparameterized V2 branch.
        let atoms: Vec<String> = cited.tuples[0]
            .atoms
            .iter()
            .map(ToString::to_string)
            .collect();
        assert_eq!(atoms, vec!["CV2", "CV3"]);
    }

    #[test]
    fn formal_and_pruned_agree_on_paper_example() {
        let (db, reg) = engine_fixture();
        let q =
            parse_query("Q(FName) :- Family(FID, FName, Desc), FamilyIntro(FID, Text)").unwrap();
        let formal = CitationEngine::new(
            &db,
            &reg,
            EngineOptions {
                mode: CitationMode::Formal,
                ..Default::default()
            },
        )
        .cite(&q)
        .unwrap();
        let pruned = CitationEngine::new(
            &db,
            &reg,
            EngineOptions {
                mode: CitationMode::CostPruned,
                ..Default::default()
            },
        )
        .cite(&q)
        .unwrap();
        assert_eq!(formal.tuples[0].atoms, pruned.tuples[0].atoms);
    }

    #[test]
    fn uncoverable_query_reports_no_rewriting() {
        let (db, reg) = engine_fixture();
        let engine = CitationEngine::new(&db, &reg, EngineOptions::default());
        let q = parse_query("Q(P) :- Committee(F, P)").unwrap();
        let e = engine.cite(&q).unwrap_err();
        assert!(matches!(e, CiteError::NoRewriting { .. }));
    }

    #[test]
    fn empty_answer_still_cites() {
        let (db, reg) = engine_fixture();
        let engine = CitationEngine::new(&db, &reg, EngineOptions::default());
        let q = parse_query("Q(N) :- Family(99, N, D), FamilyIntro(99, T)").unwrap();
        let cited = engine.cite(&q).unwrap();
        assert!(cited.answer.is_empty());
        assert!(cited.tuples.is_empty());
        let agg = cited.aggregate.unwrap();
        assert!(agg.atoms.is_empty());
    }

    #[test]
    fn join_policy_merges_snippets() {
        let (db, reg) = engine_fixture();
        let engine = CitationEngine::new(
            &db,
            &reg,
            EngineOptions {
                mode: CitationMode::Formal,
                policies: PolicySet {
                    joint: JointPolicy::Join,
                    ..Default::default()
                },
                ..Default::default()
            },
        );
        let q =
            parse_query("Q(FName) :- Family(FID, FName, Desc), FamilyIntro(FID, Text)").unwrap();
        let cited = engine.cite(&q).unwrap();
        assert_eq!(cited.tuples[0].snippets.len(), 1, "joined into one snippet");
    }

    #[test]
    fn per_tuple_only_agg() {
        let (db, reg) = engine_fixture();
        let engine = CitationEngine::new(
            &db,
            &reg,
            EngineOptions {
                policies: PolicySet {
                    agg: AggPolicy::PerTupleOnly,
                    ..Default::default()
                },
                ..Default::default()
            },
        );
        let q =
            parse_query("Q(FName) :- Family(FID, FName, Desc), FamilyIntro(FID, Text)").unwrap();
        let cited = engine.cite(&q).unwrap();
        assert!(cited.aggregate.is_none());
        assert!(!cited.tuples.is_empty());
    }

    #[test]
    fn parameterized_view_used_twice_in_one_rewriting() {
        // Chain query rewritten as VE(A,B) ⋈ VE(B,C): the SAME
        // parameterized view instantiated at two parameter values inside
        // one binding — the paper's `CV(p1)·CV(p2)` joint case.
        let mut db = Database::new();
        db.create_relation(citesys_storage::RelationSchema::from_parts(
            "E",
            &[("A", ValueType::Int), ("B", ValueType::Int)],
            &[],
        ))
        .unwrap();
        db.insert("E", citesys_storage::tuple![1, 2]).unwrap();
        db.insert("E", citesys_storage::tuple![2, 3]).unwrap();
        let mut reg = crate::registry::CitationRegistry::new();
        reg.add(
            crate::registry::CitationView::new(
                citesys_cq::parse_query("λ X. VE(X, Y) :- E(X, Y)").unwrap(),
                vec![crate::snippet::CitationQuery::new(
                    citesys_cq::parse_query("λ X. CVE(X, W) :- E(X, W)").unwrap(),
                )],
                crate::snippet::CitationFunction::new(),
            )
            .unwrap(),
        )
        .unwrap();
        let engine = CitationEngine::new(
            &db,
            &reg,
            EngineOptions {
                mode: CitationMode::Formal,
                ..Default::default()
            },
        );
        let q = parse_query("Q(A, C) :- E(A, B), E(B, C)").unwrap();
        let cited = engine.cite(&q).unwrap();
        assert_eq!(cited.answer.len(), 1);
        let t = &cited.tuples[0];
        assert_eq!(t.tuple, tuple![1, 3]);
        assert_eq!(t.expr().to_string(), "CVE(1)·CVE(2)");
        assert_eq!(t.atoms.len(), 2);
        // Each snippet carries the endpoint pulled by its citation query.
        let params: Vec<i64> = t
            .atoms
            .iter()
            .map(|a| a.params[0].as_int().unwrap())
            .collect();
        assert_eq!(params, vec![1, 2]);
    }

    #[test]
    fn multi_parameter_view() {
        // λ FID, PName — one citation per (family, member) pair.
        let (db, _) = engine_fixture();
        let mut reg = crate::registry::CitationRegistry::new();
        reg.add(
            crate::registry::CitationView::new(
                citesys_cq::parse_query("λ FID, PName. VC(FID, PName) :- Committee(FID, PName)")
                    .unwrap(),
                vec![crate::snippet::CitationQuery::new(
                    citesys_cq::parse_query(
                        "λ FID, PName. CVC(FID, PName) :- Committee(FID, PName)",
                    )
                    .unwrap(),
                )],
                crate::snippet::CitationFunction::new(),
            )
            .unwrap(),
        )
        .unwrap();
        let engine = CitationEngine::new(
            &db,
            &reg,
            EngineOptions {
                mode: CitationMode::Formal,
                ..Default::default()
            },
        );
        let q = parse_query("Q(P) :- Committee(11, P)").unwrap();
        let cited = engine.cite(&q).unwrap();
        assert_eq!(cited.answer.len(), 2); // Alice, Bob
        for t in &cited.tuples {
            assert_eq!(t.atoms.len(), 1);
            let atom = t.atoms.iter().next().unwrap();
            assert_eq!(atom.params.len(), 2, "both λ-parameters instantiated");
            assert_eq!(atom.params[0], Value::Int(11));
        }
        // Distinct members ⇒ distinct second parameter.
        let seconds: std::collections::BTreeSet<_> = cited
            .tuples
            .iter()
            .map(|t| t.atoms.iter().next().unwrap().params[1].clone())
            .collect();
        assert_eq!(seconds.len(), 2);
    }

    #[test]
    fn query_with_constant_cites_pinned_view() {
        // Constants in the query flow into the rewriting and parameters.
        let (db, reg) = engine_fixture();
        let engine = CitationEngine::new(
            &db,
            &reg,
            EngineOptions {
                mode: CitationMode::Formal,
                ..Default::default()
            },
        );
        let q = parse_query("Q(N) :- Family(11, N, D), FamilyIntro(11, T)").unwrap();
        let cited = engine.cite(&q).unwrap();
        assert_eq!(cited.answer.len(), 1);
        let expr = cited.tuples[0].expr().to_string();
        assert!(expr.contains("CV1(11)"), "pinned parameter: {expr}");
        assert!(!expr.contains("CV1(12)"), "other family excluded: {expr}");
    }

    #[test]
    fn partial_fallback_cites_covered_tuples() {
        // Registry with only a narrow view: families that HAVE an intro.
        let db = paper::paper_database();
        let mut reg = crate::registry::CitationRegistry::new();
        reg.add(
            crate::registry::CitationView::new(
                citesys_cq::parse_query(
                    "VN(FID, FName) :- Family(FID, FName, D), FamilyIntro(FID, T)",
                )
                .unwrap(),
                vec![crate::snippet::CitationQuery::with_fields(
                    citesys_cq::parse_query("CVN(D) :- D = 'narrow'").unwrap(),
                    vec!["citation".to_string()],
                )
                .unwrap()],
                crate::snippet::CitationFunction::new(),
            )
            .unwrap(),
        )
        .unwrap();

        // Q = all family names. Dopamine (no intro) cannot be cited.
        let q = parse_query("Q(FName) :- Family(FID, FName, D)").unwrap();
        let strict = CitationEngine::new(&db, &reg, EngineOptions::default());
        assert!(matches!(
            strict.cite(&q),
            Err(CiteError::NoRewriting { .. })
        ));

        let lenient = CitationEngine::new(
            &db,
            &reg,
            EngineOptions {
                allow_partial: true,
                ..Default::default()
            },
        );
        let cited = lenient.cite(&q).unwrap();
        assert_eq!(cited.answer.len(), 2); // Calcitonin, Dopamine
        assert_eq!(cited.coverage, Coverage::Partial { uncited: 1 });
        let calc = cited
            .tuples
            .iter()
            .find(|t| t.tuple == tuple!["Calcitonin"])
            .unwrap();
        assert!(!calc.atoms.is_empty(), "covered tuple is cited");
        let dopa = cited
            .tuples
            .iter()
            .find(|t| t.tuple == tuple!["Dopamine"])
            .unwrap();
        assert!(dopa.atoms.is_empty(), "uncovered tuple stays uncited");
    }

    #[test]
    fn full_coverage_reported_when_equivalent() {
        let (db, reg) = engine_fixture();
        let engine = CitationEngine::new(
            &db,
            &reg,
            EngineOptions {
                allow_partial: true,
                ..Default::default()
            },
        );
        let cited = engine.cite(&paper::paper_query()).unwrap();
        assert_eq!(cited.coverage, Coverage::Full);
    }

    #[test]
    fn parameterized_identity_query_cites_per_family() {
        let (db, reg) = engine_fixture();
        let engine = CitationEngine::new(
            &db,
            &reg,
            EngineOptions {
                mode: CitationMode::Formal,
                ..Default::default()
            },
        );
        // Q = all families: rewritable via V1 (param) or V2 (constant).
        let q = parse_query("Q(FID, FName, Desc) :- Family(FID, FName, Desc)").unwrap();
        let cited = engine.cite(&q).unwrap();
        assert_eq!(cited.answer.len(), 3);
        // Min-size picks V2 (one citation) over V1 (three).
        for t in &cited.tuples {
            assert_eq!(t.atoms.len(), 1);
            assert_eq!(t.atoms.iter().next().unwrap().view.as_str(), "V2");
        }
    }
}

//! Derivation traces: human-readable explanations of *why* a tuple is
//! cited the way it is.
//!
//! The paper leans on the observation that "citations and provenance are
//! both forms of annotation that are manipulated through queries"; a trace
//! makes that annotation inspectable — per rewriting, per binding — which
//! is how a database owner debugs a citation-view specification.

use std::fmt::Write as _;

use crate::engine::{CitedAnswer, TupleCitation};
use crate::expr::CiteExpr;
use crate::policy::RewritingChoice;

/// Renders a per-tuple trace: each rewriting branch with its bindings'
/// joint citations, then the policy outcome.
pub fn trace_tuple(t: &TupleCitation, cited: &CitedAnswer) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "tuple {}", t.tuple);
    for (ri, (branch, rw)) in t.branches.iter().zip(&cited.rewritings).enumerate() {
        let marker = match cited.choice {
            RewritingChoice::Index(i) if i == ri => " ← chosen by +R",
            RewritingChoice::All => " (kept: +R = union)",
            _ => "",
        };
        let _ = writeln!(out, "├─ rewriting {}: {}{}", ri + 1, rw, marker);
        let summands = summands_of(branch);
        if summands.is_empty() {
            let _ = writeln!(out, "│    (no derivation through this rewriting)");
        }
        for (bi, s) in summands.iter().enumerate() {
            let connector = if bi + 1 == summands.len() {
                "└"
            } else {
                "├"
            };
            let _ = writeln!(out, "│  {connector}─ binding {}: {}", bi + 1, s);
        }
    }
    let atoms: Vec<String> = t.atoms.iter().map(ToString::to_string).collect();
    let _ = writeln!(out, "└─ final citation: {}", atoms.join(" · "));
    out
}

/// Renders the trace of an entire answer.
pub fn trace_answer(cited: &CitedAnswer) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} tuple(s), {} rewriting(s) evaluated, choice {:?}",
        cited.tuples.len(),
        cited.rewritings.len(),
        cited.choice
    );
    for t in &cited.tuples {
        out.push_str(&trace_tuple(t, cited));
    }
    out
}

/// The `+`-summands of a branch: one per binding.
fn summands_of(e: &CiteExpr) -> Vec<&CiteExpr> {
    match e {
        CiteExpr::Sum(cs) => cs.iter().collect(),
        other => vec![other],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{CitationMode, EngineOptions};
    use crate::paper;
    use crate::service::CitationService;

    fn service(options: EngineOptions) -> CitationService {
        CitationService::builder()
            .database(paper::paper_database())
            .registry(paper::paper_registry())
            .options(options)
            .build()
            .unwrap()
    }

    #[test]
    fn paper_example_trace() {
        let svc = service(EngineOptions {
            mode: CitationMode::Formal,
            ..Default::default()
        });
        let cited = svc.cite(&paper::paper_query()).unwrap();
        let trace = trace_tuple(&cited.tuples[0], &cited);
        assert!(trace.contains("tuple (Calcitonin)"));
        assert!(trace.contains("rewriting 1"));
        assert!(trace.contains("rewriting 2"));
        // Two bindings under the parameterized rewriting.
        assert!(trace.contains("binding 1: CV1(11)·CV3"), "{trace}");
        assert!(trace.contains("binding 2: CV1(12)·CV3"), "{trace}");
        // The min-size +R marker sits on the V2 rewriting.
        assert!(trace.contains("← chosen by +R"), "{trace}");
        assert!(trace.contains("final citation: CV2 · CV3"), "{trace}");
    }

    #[test]
    fn answer_trace_covers_all_tuples() {
        let svc = service(EngineOptions {
            mode: CitationMode::Formal,
            ..Default::default()
        });
        let q = citesys_cq::parse_query("Q(FID, N, D) :- Family(FID, N, D)").unwrap();
        let cited = svc.cite(&q).unwrap();
        let trace = trace_answer(&cited);
        assert_eq!(trace.matches("tuple (").count(), 3);
        assert!(trace.contains("3 tuple(s)"));
    }

    #[test]
    fn union_choice_marks_all_branches() {
        let svc = service(EngineOptions {
            mode: CitationMode::Formal,
            policies: crate::policy::PolicySet {
                rewritings: crate::policy::RewritePolicy::Union,
                ..Default::default()
            },
            ..Default::default()
        });
        let cited = svc.cite(&paper::paper_query()).unwrap();
        let trace = trace_tuple(&cited.tuples[0], &cited);
        assert_eq!(trace.matches("(kept: +R = union)").count(), 2);
    }
}

//! Citation views and the registry the engine works against.

use std::collections::BTreeMap;

use citesys_cq::{ConjunctiveQuery, Symbol};
use citesys_rewrite::ViewSet;

use crate::error::CiteError;
use crate::snippet::{CitationFunction, CitationQuery};

/// A citation view: a view query, its citation queries, and the citation
/// function (§2 of the paper).
///
/// Invariant (the paper: parameters "must … be consistent across the view
/// and associated citation queries"): every citation query declares exactly
/// the same λ-parameter list as the view.
#[derive(Clone, Debug)]
pub struct CitationView {
    /// The view query (head predicate = view name).
    pub view: ConjunctiveQuery,
    /// Citation queries pulling snippet data (same λ-parameters).
    pub citation_queries: Vec<CitationQuery>,
    /// The citation function rendering snippets.
    pub function: CitationFunction,
}

impl CitationView {
    /// Builds and validates a citation view.
    pub fn new(
        view: ConjunctiveQuery,
        citation_queries: Vec<CitationQuery>,
        function: CitationFunction,
    ) -> Result<Self, CiteError> {
        for cq in &citation_queries {
            if cq.query.params != view.params {
                return Err(CiteError::BadCitationView {
                    view: view.name().to_string(),
                    reason: format!(
                        "citation query {} declares parameters {:?}, view declares {:?}",
                        cq.query.name(),
                        cq.query.params,
                        view.params
                    ),
                });
            }
        }
        if citation_queries.is_empty() {
            return Err(CiteError::BadCitationView {
                view: view.name().to_string(),
                reason: "at least one citation query is required".to_string(),
            });
        }
        Ok(CitationView {
            view,
            citation_queries,
            function,
        })
    }

    /// The view's name (head predicate).
    pub fn name(&self) -> &Symbol {
        self.view.name()
    }

    /// True when the view is parameterized.
    pub fn is_parameterized(&self) -> bool {
        self.view.is_parameterized()
    }
}

/// The registry of citation views owned by the database owner.
#[derive(Clone, Debug, Default)]
pub struct CitationRegistry {
    views: Vec<CitationView>,
    by_name: BTreeMap<Symbol, usize>,
}

impl CitationRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a citation view (names must be unique).
    pub fn add(&mut self, cv: CitationView) -> Result<(), CiteError> {
        let name = cv.name().clone();
        if self.by_name.contains_key(&name) {
            return Err(CiteError::BadCitationView {
                view: name.to_string(),
                reason: "duplicate view name".to_string(),
            });
        }
        self.by_name.insert(name, self.views.len());
        self.views.push(cv);
        Ok(())
    }

    /// Builder-style [`add`](Self::add).
    pub fn with(mut self, cv: CitationView) -> Result<Self, CiteError> {
        self.add(cv)?;
        Ok(self)
    }

    /// Number of registered views.
    pub fn len(&self) -> usize {
        self.views.len()
    }

    /// True when the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.views.is_empty()
    }

    /// Looks up a citation view by name.
    pub fn get(&self, name: &str) -> Option<&CitationView> {
        self.by_name.get(name).map(|&i| &self.views[i])
    }

    /// Iterates over the views in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &CitationView> {
        self.views.iter()
    }

    /// The plain view set used by the rewriting layer.
    pub fn view_set(&self) -> ViewSet {
        ViewSet::new(self.views.iter().map(|v| v.view.clone()).collect())
            .expect("registry enforces unique names")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use citesys_cq::parse_query;

    fn v1() -> CitationView {
        CitationView::new(
            parse_query("λ FID. V1(FID, FName, Desc) :- Family(FID, FName, Desc)").unwrap(),
            vec![CitationQuery::new(
                parse_query("λ FID. CV1(FID, PName) :- Committee(FID, PName)").unwrap(),
            )],
            CitationFunction::new(),
        )
        .unwrap()
    }

    #[test]
    fn valid_view_registers() {
        let mut reg = CitationRegistry::new();
        reg.add(v1()).unwrap();
        assert_eq!(reg.len(), 1);
        assert!(reg.get("V1").is_some());
        assert!(reg.get("V1").unwrap().is_parameterized());
        assert_eq!(reg.view_set().len(), 1);
    }

    #[test]
    fn parameter_mismatch_rejected() {
        let e = CitationView::new(
            parse_query("λ FID. V1(FID, N, D) :- Family(FID, N, D)").unwrap(),
            vec![CitationQuery::new(
                // Unparameterized citation query for a parameterized view.
                parse_query("CV1(D) :- D = 'x'").unwrap(),
            )],
            CitationFunction::new(),
        )
        .unwrap_err();
        assert!(matches!(e, CiteError::BadCitationView { .. }));
    }

    #[test]
    fn empty_citation_queries_rejected() {
        let e = CitationView::new(
            parse_query("V(X) :- R(X)").unwrap(),
            vec![],
            CitationFunction::new(),
        )
        .unwrap_err();
        assert!(matches!(e, CiteError::BadCitationView { .. }));
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut reg = CitationRegistry::new();
        reg.add(v1()).unwrap();
        let e = reg.add(v1()).unwrap_err();
        assert!(matches!(e, CiteError::BadCitationView { .. }));
    }

    #[test]
    fn multiple_citation_queries_allowed() {
        let cv = CitationView::new(
            parse_query("λ FID. V1(FID, N, D) :- Family(FID, N, D)").unwrap(),
            vec![
                CitationQuery::new(parse_query("λ FID. CVa(FID, P) :- Committee(FID, P)").unwrap()),
                CitationQuery::new(parse_query("λ FID. CVb(FID, N) :- Family(FID, N, D)").unwrap()),
            ],
            CitationFunction::new().with_static("database", "GtoPdb"),
        )
        .unwrap();
        assert_eq!(cv.citation_queries.len(), 2);
    }
}

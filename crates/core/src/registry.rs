//! Citation views and the registry the engine works against.

use std::collections::BTreeMap;

use citesys_cq::{ConjunctiveQuery, Symbol};
use citesys_rewrite::ViewSet;

use crate::error::CiteError;
use crate::snippet::{CitationFunction, CitationQuery};

/// A citation view: a view query, its citation queries, and the citation
/// function (§2 of the paper).
///
/// Invariant (the paper: parameters "must … be consistent across the view
/// and associated citation queries"): every citation query declares exactly
/// the same λ-parameter list as the view.
#[derive(Clone, Debug)]
pub struct CitationView {
    /// The view query (head predicate = view name).
    pub view: ConjunctiveQuery,
    /// Citation queries pulling snippet data (same λ-parameters).
    pub citation_queries: Vec<CitationQuery>,
    /// The citation function rendering snippets.
    pub function: CitationFunction,
}

impl CitationView {
    /// Builds and validates a citation view.
    pub fn new(
        view: ConjunctiveQuery,
        citation_queries: Vec<CitationQuery>,
        function: CitationFunction,
    ) -> Result<Self, CiteError> {
        for cq in &citation_queries {
            if cq.query.params != view.params {
                return Err(CiteError::BadCitationView {
                    view: view.name().to_string(),
                    reason: format!(
                        "citation query {} declares parameters {:?}, view declares {:?}",
                        cq.query.name(),
                        cq.query.params,
                        view.params
                    ),
                });
            }
        }
        if citation_queries.is_empty() {
            return Err(CiteError::BadCitationView {
                view: view.name().to_string(),
                reason: "at least one citation query is required".to_string(),
            });
        }
        Ok(CitationView {
            view,
            citation_queries,
            function,
        })
    }

    /// The view's name (head predicate).
    pub fn name(&self) -> &Symbol {
        self.view.name()
    }

    /// True when the view is parameterized.
    pub fn is_parameterized(&self) -> bool {
        self.view.is_parameterized()
    }
}

/// The registry of citation views owned by the database owner.
#[derive(Clone, Debug, Default)]
pub struct CitationRegistry {
    views: Vec<CitationView>,
    by_name: BTreeMap<Symbol, usize>,
}

impl CitationRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a citation view (names must be unique).
    pub fn add(&mut self, cv: CitationView) -> Result<(), CiteError> {
        let name = cv.name().clone();
        if self.by_name.contains_key(&name) {
            return Err(CiteError::BadCitationView {
                view: name.to_string(),
                reason: "duplicate view name".to_string(),
            });
        }
        self.by_name.insert(name, self.views.len());
        self.views.push(cv);
        Ok(())
    }

    /// Builder-style [`add`](Self::add).
    pub fn with(mut self, cv: CitationView) -> Result<Self, CiteError> {
        self.add(cv)?;
        Ok(self)
    }

    /// Number of registered views.
    pub fn len(&self) -> usize {
        self.views.len()
    }

    /// True when the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.views.is_empty()
    }

    /// Looks up a citation view by name.
    pub fn get(&self, name: &str) -> Option<&CitationView> {
        self.by_name.get(name).map(|&i| &self.views[i])
    }

    /// Iterates over the views in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &CitationView> {
        self.views.iter()
    }

    /// A SHA-256 content fingerprint over the registry's canonical text
    /// form. Two registries fingerprint equal iff they serialize
    /// identically — the time-travel read path uses this to detect when
    /// a historical version was governed by a different set of citation
    /// views than the live one (DDL happened in between).
    pub fn fingerprint(&self) -> citesys_storage::Digest {
        citesys_storage::sha256(self.to_text().as_bytes())
    }

    /// The plain view set used by the rewriting layer.
    pub fn view_set(&self) -> ViewSet {
        ViewSet::new(self.views.iter().map(|v| v.view.clone()).collect())
            .expect("registry enforces unique names")
    }

    /// Serializes the registry to the line-oriented text form
    /// [`from_text`](Self::from_text) reads back — the checkpoint
    /// section format of the durability layer. Queries print through
    /// their canonical `Display` (λ-parameters included), so anything
    /// the surface parser produced round-trips.
    pub fn to_text(&self) -> String {
        let mut out = String::from("citesys-registry v1\n");
        for cv in &self.views {
            out.push_str(&format!("view {}\n", cv.view));
            for cq in &cv.citation_queries {
                out.push_str(&format!("cq {}\n", cq.query));
                for field in &cq.fields {
                    out.push_str(&format!("field {field}\n"));
                }
            }
            for (k, v) in &cv.function.static_fields {
                out.push_str(&format!("static {k} {v}\n"));
            }
            out.push_str("end\n");
        }
        out
    }

    /// Parses text produced by [`to_text`](Self::to_text), re-validating
    /// every view. Tolerant of CRLF line endings and trailing blank
    /// lines, like the other durable text formats.
    pub fn from_text(text: &str) -> Result<CitationRegistry, CiteError> {
        fn err(message: impl Into<String>) -> CiteError {
            CiteError::Durability {
                message: message.into(),
            }
        }
        let mut lines = text
            .lines()
            .map(|l| l.strip_suffix('\r').unwrap_or(l))
            .peekable();
        match lines.next() {
            Some("citesys-registry v1") => {}
            other => return Err(err(format!("bad registry header: {other:?}"))),
        }
        let mut registry = CitationRegistry::new();
        while let Some(line) = lines.next() {
            if line.trim().is_empty() {
                continue;
            }
            let view_src = line
                .strip_prefix("view ")
                .ok_or_else(|| err(format!("expected 'view …', got '{line}'")))?;
            let view = citesys_cq::parse_query(view_src)
                .map_err(|e| err(format!("bad view query '{view_src}': {e}")))?;
            let mut cites: Vec<CitationQuery> = Vec::new();
            let mut function = CitationFunction::new();
            let mut ended = false;
            for line in lines.by_ref() {
                if line == "end" {
                    ended = true;
                    break;
                }
                if let Some(src) = line.strip_prefix("cq ") {
                    let q = citesys_cq::parse_query(src)
                        .map_err(|e| err(format!("bad citation query '{src}': {e}")))?;
                    // Fields follow as `field` lines; start empty and
                    // fill in (the count is validated against the head
                    // arity once the view block ends).
                    cites.push(CitationQuery {
                        query: q,
                        fields: Vec::new(),
                    });
                } else if let Some(name) = line.strip_prefix("field ") {
                    let cq = cites
                        .last_mut()
                        .ok_or_else(|| err("'field' line before any 'cq' line"))?;
                    cq.fields.push(name.to_string());
                } else if let Some(kv) = line.strip_prefix("static ") {
                    let (k, v) = kv
                        .split_once(' ')
                        .ok_or_else(|| err(format!("static line '{kv}' lacks a value")))?;
                    function = function.with_static(k, v);
                } else {
                    return Err(err(format!("unexpected registry line '{line}'")));
                }
            }
            if !ended {
                return Err(err("unterminated registry view (missing 'end')"));
            }
            for cq in &cites {
                if cq.fields.len() != cq.query.arity() {
                    return Err(err(format!(
                        "citation query {} has {} field(s) for arity {}",
                        cq.query.name(),
                        cq.fields.len(),
                        cq.query.arity()
                    )));
                }
            }
            let cv = CitationView::new(view, cites, function)
                .map_err(|e| err(format!("invalid checkpointed view: {e}")))?;
            registry.add(cv)?;
        }
        Ok(registry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use citesys_cq::parse_query;

    fn v1() -> CitationView {
        CitationView::new(
            parse_query("λ FID. V1(FID, FName, Desc) :- Family(FID, FName, Desc)").unwrap(),
            vec![CitationQuery::new(
                parse_query("λ FID. CV1(FID, PName) :- Committee(FID, PName)").unwrap(),
            )],
            CitationFunction::new(),
        )
        .unwrap()
    }

    #[test]
    fn valid_view_registers() {
        let mut reg = CitationRegistry::new();
        reg.add(v1()).unwrap();
        assert_eq!(reg.len(), 1);
        assert!(reg.get("V1").is_some());
        assert!(reg.get("V1").unwrap().is_parameterized());
        assert_eq!(reg.view_set().len(), 1);
    }

    #[test]
    fn parameter_mismatch_rejected() {
        let e = CitationView::new(
            parse_query("λ FID. V1(FID, N, D) :- Family(FID, N, D)").unwrap(),
            vec![CitationQuery::new(
                // Unparameterized citation query for a parameterized view.
                parse_query("CV1(D) :- D = 'x'").unwrap(),
            )],
            CitationFunction::new(),
        )
        .unwrap_err();
        assert!(matches!(e, CiteError::BadCitationView { .. }));
    }

    #[test]
    fn empty_citation_queries_rejected() {
        let e = CitationView::new(
            parse_query("V(X) :- R(X)").unwrap(),
            vec![],
            CitationFunction::new(),
        )
        .unwrap_err();
        assert!(matches!(e, CiteError::BadCitationView { .. }));
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut reg = CitationRegistry::new();
        reg.add(v1()).unwrap();
        let e = reg.add(v1()).unwrap_err();
        assert!(matches!(e, CiteError::BadCitationView { .. }));
    }

    #[test]
    fn text_round_trip_preserves_views_fields_and_statics() {
        let mut reg = CitationRegistry::new();
        reg.add(v1()).unwrap();
        reg.add(
            CitationView::new(
                parse_query("V2(FID, N) :- Family(FID, N, D)").unwrap(),
                vec![CitationQuery::with_fields(
                    parse_query("CV2(D) :- D = 'IUPHAR/BPS Guide'").unwrap(),
                    vec!["citation".to_string()],
                )
                .unwrap()],
                CitationFunction::new()
                    .with_static("database", "GtoPdb")
                    .with_static("license", "CC BY-SA 4.0"),
            )
            .unwrap(),
        )
        .unwrap();
        let text = reg.to_text();
        assert!(text.starts_with("citesys-registry v1\n"));
        let back = CitationRegistry::from_text(&text).unwrap();
        assert_eq!(back.len(), 2);
        let v1b = back.get("V1").unwrap();
        assert!(v1b.is_parameterized(), "λ-parameters survive");
        assert_eq!(v1b.view, reg.get("V1").unwrap().view);
        let v2b = back.get("V2").unwrap();
        assert_eq!(v2b.citation_queries[0].fields, vec!["citation"]);
        assert_eq!(
            v2b.function
                .static_fields
                .get("license")
                .map(String::as_str),
            Some("CC BY-SA 4.0"),
            "static values keep their spaces"
        );
        // CRLF + trailing blanks tolerated; round-trip is a fixpoint.
        let crlf = format!("{}\r\n", text.replace('\n', "\r\n"));
        assert_eq!(CitationRegistry::from_text(&crlf).unwrap().to_text(), text);
        // Malformed inputs are rejected, not mis-parsed.
        assert!(CitationRegistry::from_text("bogus\n").is_err());
        assert!(CitationRegistry::from_text("citesys-registry v1\nview V(X) :- R(X)\n").is_err());
        assert!(
            CitationRegistry::from_text(
                "citesys-registry v1\nview V(X) :- R(X)\ncq CV(D) :- D = 'x'\nend\n"
            )
            .is_err(),
            "field count must match arity"
        );
    }

    #[test]
    fn multiple_citation_queries_allowed() {
        let cv = CitationView::new(
            parse_query("λ FID. V1(FID, N, D) :- Family(FID, N, D)").unwrap(),
            vec![
                CitationQuery::new(parse_query("λ FID. CVa(FID, P) :- Committee(FID, P)").unwrap()),
                CitationQuery::new(parse_query("λ FID. CVb(FID, N) :- Family(FID, N, D)").unwrap()),
            ],
            CitationFunction::new().with_static("database", "GtoPdb"),
        )
        .unwrap();
        assert_eq!(cv.citation_queries.len(), 2);
    }
}

//! Symbolic citation expressions — the paper's citation algebra.
//!
//! A citation for an output tuple is built from three levels of structure
//! (§2, Definitions 2.1 and 2.2):
//!
//! * `·` — **joint** use of view citations within a single binding of a
//!   single rewriting (`FV1(CV1(B1)) · … · FVn(CVn(Bn))`),
//! * `+` — **alternative** citations from multiple bindings yielding the
//!   same tuple,
//! * `+R` — alternatives across different rewritings (kept distinct from
//!   `+` because the combination policy may differ, e.g. minimum size).
//!
//! Expressions are kept *symbolic* and interpreted later under
//! owner-specified policies ([`crate::policy`]); this mirrors the paper's
//! observation that the semantics is a formal object, "not a means of
//! computation".

use std::collections::BTreeSet;
use std::fmt;

use serde::{Deserialize, Serialize};

use citesys_cq::{Symbol, Value};

/// A citation atom `CV(p1, …, pn)`: a view's citation instantiated at
/// specific parameter values (empty for unparameterized views).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct CiteAtom {
    /// The view whose citation this is.
    pub view: Symbol,
    /// λ-parameter values, in declaration order.
    pub params: Vec<Value>,
}

impl CiteAtom {
    /// Builds an atom.
    pub fn new(view: impl Into<Symbol>, params: Vec<Value>) -> Self {
        CiteAtom {
            view: view.into(),
            params,
        }
    }
}

impl fmt::Display for CiteAtom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C{}", self.view)?;
        if !self.params.is_empty() {
            write!(f, "(")?;
            for (i, p) in self.params.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{p}")?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

/// A symbolic citation expression.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug, Serialize, Deserialize)]
pub enum CiteExpr {
    /// A view citation instance.
    Atom(CiteAtom),
    /// Joint use (`·`) — one binding's view citations.
    Prod(Vec<CiteExpr>),
    /// Alternatives (`+`) — multiple bindings.
    Sum(Vec<CiteExpr>),
    /// Alternatives across rewritings (`+R`).
    AltR(Vec<CiteExpr>),
}

impl CiteExpr {
    /// The empty alternative (no derivation — identity of `+`).
    pub fn zero() -> Self {
        CiteExpr::Sum(Vec::new())
    }

    /// The empty joint combination (identity of `·`).
    pub fn one() -> Self {
        CiteExpr::Prod(Vec::new())
    }

    /// Builds a normalized joint combination.
    pub fn prod(children: Vec<CiteExpr>) -> Self {
        CiteExpr::Prod(children).normalize()
    }

    /// Builds a normalized alternative combination.
    pub fn sum(children: Vec<CiteExpr>) -> Self {
        CiteExpr::Sum(children).normalize()
    }

    /// Builds a normalized across-rewritings combination.
    pub fn alt_r(children: Vec<CiteExpr>) -> Self {
        CiteExpr::AltR(children).normalize()
    }

    /// Normalizes the expression:
    /// * nested `Prod`/`Sum`/`AltR` of the same kind are flattened,
    /// * children of `Prod` and `Sum` are sorted and deduplicated (both
    ///   operators are associative, commutative and idempotent under the
    ///   union-style interpretations the paper suggests),
    /// * `AltR` children are deduplicated but keep rewriting order,
    /// * single-child combinations unwrap.
    pub fn normalize(&self) -> CiteExpr {
        match self {
            CiteExpr::Atom(_) => self.clone(),
            CiteExpr::Prod(cs) => {
                let mut flat = Vec::new();
                for c in cs {
                    match c.normalize() {
                        CiteExpr::Prod(inner) => flat.extend(inner),
                        other => flat.push(other),
                    }
                }
                flat.sort();
                flat.dedup();
                if flat.len() == 1 {
                    flat.pop().expect("len checked")
                } else {
                    CiteExpr::Prod(flat)
                }
            }
            CiteExpr::Sum(cs) => {
                let mut flat = Vec::new();
                for c in cs {
                    match c.normalize() {
                        CiteExpr::Sum(inner) => flat.extend(inner),
                        other => flat.push(other),
                    }
                }
                flat.sort();
                flat.dedup();
                if flat.len() == 1 {
                    flat.pop().expect("len checked")
                } else {
                    CiteExpr::Sum(flat)
                }
            }
            CiteExpr::AltR(cs) => {
                let mut flat = Vec::new();
                for c in cs {
                    let n = c.normalize();
                    match n {
                        CiteExpr::AltR(inner) => {
                            for i in inner {
                                if !flat.contains(&i) {
                                    flat.push(i);
                                }
                            }
                        }
                        other => {
                            if !flat.contains(&other) {
                                flat.push(other);
                            }
                        }
                    }
                }
                if flat.len() == 1 {
                    flat.pop().expect("len checked")
                } else {
                    CiteExpr::AltR(flat)
                }
            }
        }
    }

    /// All distinct citation atoms in the expression.
    pub fn atoms(&self) -> BTreeSet<&CiteAtom> {
        let mut out = BTreeSet::new();
        self.collect_atoms(&mut out);
        out
    }

    fn collect_atoms<'a>(&'a self, out: &mut BTreeSet<&'a CiteAtom>) {
        match self {
            CiteExpr::Atom(a) => {
                out.insert(a);
            }
            CiteExpr::Prod(cs) | CiteExpr::Sum(cs) | CiteExpr::AltR(cs) => {
                for c in cs {
                    c.collect_atoms(out);
                }
            }
        }
    }

    /// Estimated size of the final citation under union-style
    /// interpretations: the number of distinct citation atoms. This is the
    /// paper's size estimate ("the estimated size of the citation using Q1
    /// would be proportional to the size of Family, whereas … Q2 would
    /// be 1").
    pub fn estimated_size(&self) -> usize {
        self.atoms().len()
    }

    /// The alternatives under `+R` (a single-rewriting expression is one
    /// alternative).
    pub fn rewriting_branches(&self) -> Vec<&CiteExpr> {
        match self {
            CiteExpr::AltR(cs) => cs.iter().collect(),
            other => vec![other],
        }
    }
}

impl From<CiteAtom> for CiteExpr {
    fn from(a: CiteAtom) -> Self {
        CiteExpr::Atom(a)
    }
}

impl fmt::Display for CiteExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn go(e: &CiteExpr, f: &mut fmt::Formatter<'_>, parent: u8) -> fmt::Result {
            // Precedence: Atom (3) > Prod (2) > Sum (1) > AltR (0).
            let (prec, sep, cs): (u8, &str, &[CiteExpr]) = match e {
                CiteExpr::Atom(a) => return write!(f, "{a}"),
                CiteExpr::Prod(cs) => (2, "·", cs),
                CiteExpr::Sum(cs) => (1, " + ", cs),
                CiteExpr::AltR(cs) => (0, " +R ", cs),
            };
            if cs.is_empty() {
                return match e {
                    CiteExpr::Prod(_) => write!(f, "1"),
                    _ => write!(f, "0"),
                };
            }
            let need_parens = prec < parent;
            if need_parens {
                write!(f, "(")?;
            }
            // +R alternatives are fully parenthesized when composite, the
            // way the paper writes `(…) +R (CV2·CV3)`.
            let child_parent = if matches!(e, CiteExpr::AltR(_)) {
                3
            } else {
                prec + 1
            };
            for (i, c) in cs.iter().enumerate() {
                if i > 0 {
                    write!(f, "{sep}")?;
                }
                go(c, f, child_parent)?;
            }
            if need_parens {
                write!(f, ")")?;
            }
            Ok(())
        }
        go(self, f, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cv(view: &str, params: Vec<i64>) -> CiteExpr {
        CiteExpr::Atom(CiteAtom::new(
            view,
            params.into_iter().map(Value::Int).collect(),
        ))
    }

    /// Builds the paper's final expression for the Calcitonin tuple:
    /// `(CV1(11)·CV3 + CV1(12)·CV3) +R (CV2·CV3)`.
    fn paper_expr() -> CiteExpr {
        let q1 = CiteExpr::sum(vec![
            CiteExpr::prod(vec![cv("V1", vec![11]), cv("V3", vec![])]),
            CiteExpr::prod(vec![cv("V1", vec![12]), cv("V3", vec![])]),
        ]);
        let q2 = CiteExpr::prod(vec![cv("V2", vec![]), cv("V3", vec![])]);
        CiteExpr::alt_r(vec![q1, q2])
    }

    #[test]
    fn paper_expression_renders() {
        assert_eq!(
            paper_expr().to_string(),
            "(CV1(11)·CV3 + CV1(12)·CV3) +R (CV2·CV3)"
        );
    }

    #[test]
    fn normalization_flattens_and_sorts() {
        let e = CiteExpr::Prod(vec![
            cv("B", vec![]),
            CiteExpr::Prod(vec![cv("A", vec![]), cv("B", vec![])]),
        ])
        .normalize();
        assert_eq!(e.to_string(), "CA·CB");
    }

    #[test]
    fn idempotent_operators_dedupe() {
        let e = CiteExpr::sum(vec![cv("A", vec![]), cv("A", vec![])]);
        assert_eq!(e, cv("A", vec![]));
        let p = CiteExpr::prod(vec![cv("A", vec![]), cv("A", vec![])]);
        assert_eq!(p, cv("A", vec![]));
    }

    #[test]
    fn singletons_unwrap() {
        let e = CiteExpr::Sum(vec![cv("A", vec![1])]).normalize();
        assert_eq!(e, cv("A", vec![1]));
        let r = CiteExpr::AltR(vec![cv("A", vec![1])]).normalize();
        assert_eq!(r, cv("A", vec![1]));
    }

    #[test]
    fn altr_keeps_rewriting_order() {
        let e = CiteExpr::alt_r(vec![cv("Z", vec![]), cv("A", vec![])]);
        assert_eq!(e.to_string(), "CZ +R CA");
    }

    #[test]
    fn atoms_and_size() {
        let e = paper_expr();
        let atoms = e.atoms();
        // CV1(11), CV1(12), CV3, CV2 — four distinct atoms.
        assert_eq!(atoms.len(), 4);
        assert_eq!(e.estimated_size(), 4);
        // The Q2 branch alone has estimated size 2 (CV2, CV3).
        let branches = e.rewriting_branches();
        assert_eq!(branches.len(), 2);
        assert_eq!(branches[0].estimated_size(), 3); // CV1(11), CV1(12), CV3
        assert_eq!(branches[1].estimated_size(), 2); // CV2, CV3
    }

    #[test]
    fn identities_render() {
        assert_eq!(CiteExpr::zero().to_string(), "0");
        assert_eq!(CiteExpr::one().to_string(), "1");
    }

    #[test]
    fn parenthesization_by_precedence() {
        // Sum inside Prod needs parens.
        let e = CiteExpr::Prod(vec![
            CiteExpr::Sum(vec![cv("A", vec![]), cv("B", vec![])]),
            cv("C", vec![]),
        ]);
        assert_eq!(e.to_string(), "(CA + CB)·CC");
        // Prod inside Sum does not.
        let e = CiteExpr::Sum(vec![
            CiteExpr::Prod(vec![cv("A", vec![]), cv("B", vec![])]),
            cv("C", vec![]),
        ]);
        assert_eq!(e.to_string(), "CA·CB + CC");
    }

    #[test]
    fn nested_altr_flattens_without_reordering() {
        let inner = CiteExpr::AltR(vec![cv("B", vec![]), cv("C", vec![])]);
        let e = CiteExpr::alt_r(vec![cv("A", vec![]), inner]);
        assert_eq!(e.to_string(), "CA +R CB +R CC");
    }

    #[test]
    fn multi_param_atom_displays() {
        let a = CiteAtom::new("V", vec![Value::Int(1), Value::text("x")]);
        assert_eq!(a.to_string(), "CV(1, x)");
    }

    #[test]
    fn serde_round_trip_shape() {
        // The expression model derives Serialize/Deserialize; check the
        // derived traits exist and equality survives a clone.
        let e = paper_expr();
        let e2 = e.clone();
        assert_eq!(e, e2);
    }
}

//! The paper's §2 running example as a reusable fixture.
//!
//! Schema (keys underlined in the paper):
//! `Family(FID, FName, Desc)`, `Committee(FID, PName)`,
//! `FamilyIntro(FID, Text)` — the GtoPdb drug-target families fragment.
//!
//! Instance: two families share the name *Calcitonin* (FIDs 11 and 12, the
//! source of the paper's multiple-bindings discussion), plus a *Dopamine*
//! family without an intro.
//!
//! Citation views:
//! * `V1` — parameterized by `FID`; its citation query pulls the committee
//!   members responsible for the family;
//! * `V2` — unparameterized; cites the whole database;
//! * `V3` — unparameterized view of `FamilyIntro`, same database-level
//!   citation.

use citesys_cq::{parse_query, ConjunctiveQuery, ValueType};
use citesys_storage::{tuple, Database, RelationSchema};

use crate::registry::{CitationRegistry, CitationView};
use crate::snippet::{CitationFunction, CitationQuery};

/// The constant citation text used by `CV2`/`CV3` in the paper.
pub const GTOPDB_CITATION: &str = "IUPHAR/BPS Guide to PHARMACOLOGY...";

/// The three relation schemas of the example.
pub fn paper_schemas() -> Vec<RelationSchema> {
    vec![
        RelationSchema::from_parts(
            "Family",
            &[
                ("FID", ValueType::Int),
                ("FName", ValueType::Text),
                ("Desc", ValueType::Text),
            ],
            &[0],
        ),
        RelationSchema::from_parts(
            "Committee",
            &[("FID", ValueType::Int), ("PName", ValueType::Text)],
            &[0, 1],
        ),
        RelationSchema::from_parts(
            "FamilyIntro",
            &[("FID", ValueType::Int), ("Text", ValueType::Text)],
            &[0],
        ),
    ]
}

/// The §2 instance, including the duplicated Calcitonin family
/// (`FID=11, Desc='C1', Text='1st'` and `FID=12, Desc='C2', Text='2nd'`).
pub fn paper_database() -> Database {
    let mut db = Database::new();
    for s in paper_schemas() {
        db.create_relation(s).expect("fresh database");
    }
    let rows = [
        ("Family", tuple![11, "Calcitonin", "C1"]),
        ("Family", tuple![12, "Calcitonin", "C2"]),
        ("Family", tuple![13, "Dopamine", "D1"]),
        ("FamilyIntro", tuple![11, "1st"]),
        ("FamilyIntro", tuple![12, "2nd"]),
        ("Committee", tuple![11, "Alice"]),
        ("Committee", tuple![11, "Bob"]),
        ("Committee", tuple![12, "Carol"]),
        ("Committee", tuple![13, "Dave"]),
    ];
    for (rel, t) in rows {
        db.insert(rel, t).expect("fixture rows are schema-valid");
    }
    db
}

/// The paper's three citation views (V1 parameterized, V2/V3 constant).
pub fn paper_registry() -> CitationRegistry {
    let mut reg = CitationRegistry::new();

    // λ FID. V1(FID,FName,Desc) :- Family(FID,FName,Desc)
    // λ FID. CV1(FID,PName)     :- Committee(FID,PName)
    reg.add(
        CitationView::new(
            parse_query("λ FID. V1(FID, FName, Desc) :- Family(FID, FName, Desc)")
                .expect("fixture view parses"),
            vec![CitationQuery::new(
                parse_query("λ FID. CV1(FID, PName) :- Committee(FID, PName)")
                    .expect("fixture citation query parses"),
            )],
            CitationFunction::new().with_static("database", "GtoPdb"),
        )
        .expect("V1 is well-formed"),
    )
    .expect("fresh registry");

    // V2(FID,FName,Desc) :- Family(FID,FName,Desc); CV2(D) :- D = "…".
    reg.add(
        CitationView::new(
            parse_query("V2(FID, FName, Desc) :- Family(FID, FName, Desc)")
                .expect("fixture view parses"),
            vec![CitationQuery::with_fields(
                parse_query(&format!("CV2(D) :- D = \"{GTOPDB_CITATION}\""))
                    .expect("fixture citation query parses"),
                vec!["citation".to_string()],
            )
            .expect("arity 1")],
            CitationFunction::new(),
        )
        .expect("V2 is well-formed"),
    )
    .expect("unique name");

    // V3(FID,Text) :- FamilyIntro(FID,Text); CV3(D) :- D = "…".
    reg.add(
        CitationView::new(
            parse_query("V3(FID, Text) :- FamilyIntro(FID, Text)").expect("fixture view parses"),
            vec![CitationQuery::with_fields(
                parse_query(&format!("CV3(D) :- D = \"{GTOPDB_CITATION}\""))
                    .expect("fixture citation query parses"),
                vec!["citation".to_string()],
            )
            .expect("arity 1")],
            CitationFunction::new(),
        )
        .expect("V3 is well-formed"),
    )
    .expect("unique name");

    reg
}

/// The paper's general query:
/// `Q(FName) :- Family(FID, FName, Desc), FamilyIntro(FID, Text)`.
pub fn paper_query() -> ConjunctiveQuery {
    parse_query("Q(FName) :- Family(FID, FName, Desc), FamilyIntro(FID, Text)")
        .expect("fixture query parses")
}

#[cfg(test)]
mod tests {
    use super::*;
    use citesys_storage::evaluate;

    #[test]
    fn fixture_matches_paper_counts() {
        let db = paper_database();
        assert_eq!(db.relation("Family").unwrap().len(), 3);
        assert_eq!(db.relation("FamilyIntro").unwrap().len(), 2);
        assert_eq!(db.relation("Committee").unwrap().len(), 4);
    }

    #[test]
    fn calcitonin_has_two_bindings() {
        let db = paper_database();
        let a = evaluate(&db, &paper_query()).unwrap();
        assert_eq!(a.len(), 1);
        assert_eq!(a.rows[0].bindings.len(), 2);
    }

    #[test]
    fn registry_has_three_views() {
        let reg = paper_registry();
        assert_eq!(reg.len(), 3);
        assert!(reg.get("V1").unwrap().is_parameterized());
        assert!(!reg.get("V2").unwrap().is_parameterized());
        assert!(!reg.get("V3").unwrap().is_parameterized());
    }
}

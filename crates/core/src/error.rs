//! Error type for the citation engine.

use std::fmt;

use citesys_cq::CqError;
use citesys_rewrite::RewriteError;
use citesys_storage::StorageError;

/// Errors produced by the citation engine.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CiteError {
    /// A query-layer error (parsing, validation).
    Query(CqError),
    /// A storage-layer error (evaluation, versions).
    Storage(StorageError),
    /// A rewriting-layer error (views, budget).
    Rewrite(RewriteError),
    /// The query admits no equivalent rewriting over the citation views —
    /// no citation can be constructed.
    NoRewriting {
        /// The query that could not be covered.
        query: String,
    },
    /// A citation view was registered with an inconsistent shape.
    BadCitationView {
        /// The view name.
        view: String,
        /// What is wrong.
        reason: String,
    },
    /// Fixity verification failed: re-execution did not reproduce the
    /// digest stored in the citation.
    FixityViolation {
        /// Expected digest (from the citation).
        expected: String,
        /// Digest obtained on re-execution.
        got: String,
    },
    /// The service builder was missing a required component or was given
    /// an inconsistent configuration.
    ServiceConfig {
        /// What is missing or inconsistent.
        reason: String,
    },
    /// The durability layer failed (I/O, corrupt on-disk state, or an
    /// unsupported format version).
    Durability {
        /// What went wrong.
        message: String,
    },
}

impl fmt::Display for CiteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CiteError::Query(e) => write!(f, "query error: {e}"),
            CiteError::Storage(e) => write!(f, "storage error: {e}"),
            CiteError::Rewrite(e) => write!(f, "rewrite error: {e}"),
            CiteError::NoRewriting { query } => {
                write!(
                    f,
                    "no equivalent rewriting over citation views for: {query}"
                )
            }
            CiteError::BadCitationView { view, reason } => {
                write!(f, "bad citation view {view}: {reason}")
            }
            CiteError::FixityViolation { expected, got } => {
                write!(f, "fixity violation: expected {expected}, got {got}")
            }
            CiteError::ServiceConfig { reason } => {
                write!(f, "service configuration error: {reason}")
            }
            CiteError::Durability { message } => {
                write!(f, "durability error: {message}")
            }
        }
    }
}

impl std::error::Error for CiteError {}

impl From<CqError> for CiteError {
    fn from(e: CqError) -> Self {
        CiteError::Query(e)
    }
}

impl From<StorageError> for CiteError {
    fn from(e: StorageError) -> Self {
        CiteError::Storage(e)
    }
}

impl From<RewriteError> for CiteError {
    fn from(e: RewriteError) -> Self {
        CiteError::Rewrite(e)
    }
}

impl From<citesys_storage::DurabilityError> for CiteError {
    fn from(e: citesys_storage::DurabilityError) -> Self {
        CiteError::Durability {
            message: e.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: CiteError = CqError::Unsatisfiable {
            left: "1".into(),
            right: "2".into(),
        }
        .into();
        assert!(e.to_string().contains("query error"));
        let e: CiteError = StorageError::UnknownRelation { name: "R".into() }.into();
        assert!(e.to_string().contains("storage error"));
        let e: CiteError = RewriteError::UnknownView { name: "V".into() }.into();
        assert!(e.to_string().contains("rewrite error"));
        let e = CiteError::NoRewriting {
            query: "Q(X) :- R(X)".into(),
        };
        assert!(e.to_string().contains("no equivalent rewriting"));
    }
}

//! Citation rendering: "human readable, BibTex, RIS or XML" (§2), plus
//! JSON for machine consumption.
//!
//! Formatters are generic over snippet fields. A few well-known field names
//! get special placement (`author`-like fields become author lists, `title`
//! becomes the title); everything else is carried in notes/keyword slots so
//! no curated information is dropped.

use crate::fixity::FixityToken;
use crate::snippet::CitationSnippet;

/// Output formats for citations.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CitationFormat {
    /// One human-readable line per snippet.
    Text,
    /// One `@misc` BibTeX entry per snippet.
    BibTex,
    /// RIS records (`TY - DBASE … ER -`).
    Ris,
    /// A `<citations>` XML document.
    Xml,
    /// A JSON array of snippet objects.
    Json,
    /// CSL-JSON (citeproc interchange): one `dataset`-type item per
    /// snippet, consumable by Zotero/pandoc/citeproc processors.
    CslJson,
}

/// Field names treated as contributor/author lists.
const AUTHOR_FIELDS: [&str; 6] = [
    "author",
    "authors",
    "PName",
    "CName",
    "Curator",
    "contributors",
];
/// Field names treated as the citation title.
const TITLE_FIELDS: [&str; 3] = ["title", "citation", "database"];

/// Rendering options.
///
/// §3 *Size of citations*: "when there is an extended author list (more
/// than 3 authors), we use 'et al' to abbreviate". `max_authors` applies
/// exactly that convention to contributor lists pulled from the database.
#[derive(Clone, Copy, Debug)]
pub struct FormatOptions {
    /// Keep at most this many contributors, appending "et al." beyond.
    /// `None` keeps everyone.
    pub max_authors: Option<usize>,
}

impl Default for FormatOptions {
    fn default() -> Self {
        // The paper's convention: abbreviate beyond three authors.
        FormatOptions {
            max_authors: Some(3),
        }
    }
}

impl FormatOptions {
    /// Keep every contributor (no abbreviation).
    pub fn unabridged() -> Self {
        FormatOptions { max_authors: None }
    }
}

fn authors_of(s: &CitationSnippet) -> Vec<String> {
    let mut out = Vec::new();
    for f in AUTHOR_FIELDS {
        out.extend(s.field(f).iter().cloned());
    }
    out.sort();
    out.dedup();
    out
}

/// Applies the "et al." convention to an author list.
fn abbreviate(mut authors: Vec<String>, opts: &FormatOptions) -> Vec<String> {
    if let Some(max) = opts.max_authors {
        if authors.len() > max {
            authors.truncate(max);
            authors.push("et al.".to_string());
        }
    }
    authors
}

fn title_of(s: &CitationSnippet) -> String {
    for f in TITLE_FIELDS {
        if let Some(first) = s.field(f).first() {
            return first.clone();
        }
    }
    format!("View {}", s.view)
}

fn other_fields(s: &CitationSnippet) -> Vec<(String, String)> {
    s.fields
        .iter()
        .filter(|(k, _)| {
            !AUTHOR_FIELDS.contains(&k.as_str()) && !TITLE_FIELDS.contains(&k.as_str())
        })
        .map(|(k, vs)| (k.clone(), vs.join(", ")))
        .collect()
}

fn key_of(s: &CitationSnippet, i: usize) -> String {
    let params: Vec<String> = s.params.iter().map(ToString::to_string).collect();
    if params.is_empty() {
        format!("{}_{i}", s.view)
    } else {
        format!("{}_{}", s.view, params.join("_"))
    }
}

/// Renders a list of snippets (one citation) in the requested format with
/// default options (the paper's 3-author "et al." convention), optionally
/// embedding the fixity token.
///
/// ```
/// use citesys_core::paper;
/// use citesys_core::{format_citation, CitationFormat, CitationMode,
///                    CitationService};
///
/// let service = CitationService::builder()
///     .database(paper::paper_database())
///     .registry(paper::paper_registry())
///     .mode(CitationMode::Formal)
///     .build()
///     .unwrap();
/// let cited = service.cite(&paper::paper_query()).unwrap();
/// let bib = format_citation(
///     &cited.tuples[0].snippets, None, CitationFormat::BibTex);
/// assert!(bib.starts_with("@misc{"));
/// assert!(bib.contains("IUPHAR/BPS Guide to PHARMACOLOGY..."));
/// ```
pub fn format_citation(
    snippets: &[CitationSnippet],
    fixity: Option<&FixityToken>,
    format: CitationFormat,
) -> String {
    format_citation_with(snippets, fixity, format, &FormatOptions::default())
}

/// Renders with explicit [`FormatOptions`].
pub fn format_citation_with(
    snippets: &[CitationSnippet],
    fixity: Option<&FixityToken>,
    format: CitationFormat,
    opts: &FormatOptions,
) -> String {
    match format {
        CitationFormat::Text => text(snippets, fixity, opts),
        CitationFormat::BibTex => bibtex(snippets, fixity, opts),
        CitationFormat::Ris => ris(snippets, fixity, opts),
        CitationFormat::Xml => xml(snippets, fixity),
        CitationFormat::Json => json(snippets, fixity),
        CitationFormat::CslJson => csl_json(snippets, fixity, opts),
    }
}

fn text(
    snippets: &[CitationSnippet],
    fixity: Option<&FixityToken>,
    opts: &FormatOptions,
) -> String {
    let mut out = String::new();
    for s in snippets {
        let authors = abbreviate(authors_of(s), opts);
        if !authors.is_empty() {
            out.push_str(&authors.join(", "));
            out.push_str(". ");
        }
        out.push_str(&title_of(s));
        for (k, v) in other_fields(s) {
            out.push_str(&format!(". {k}: {v}"));
        }
        if !s.params.is_empty() {
            let ps: Vec<String> = s.params.iter().map(ToString::to_string).collect();
            out.push_str(&format!(" [{}({})]", s.view, ps.join(", ")));
        }
        out.push('\n');
    }
    if let Some(t) = fixity {
        out.push_str(&format!(
            "Retrieved as: version {}, sha256 {}\n",
            t.version, t.digest
        ));
    }
    out
}

fn bibtex_escape(s: &str) -> String {
    s.replace('{', "\\{").replace('}', "\\}")
}

fn bibtex(
    snippets: &[CitationSnippet],
    fixity: Option<&FixityToken>,
    opts: &FormatOptions,
) -> String {
    let mut out = String::new();
    for (i, s) in snippets.iter().enumerate() {
        out.push_str(&format!("@misc{{{},\n", key_of(s, i)));
        let authors = abbreviate(authors_of(s), opts);
        if !authors.is_empty() {
            out.push_str(&format!(
                "  author = {{{}}},\n",
                bibtex_escape(&authors.join(" and "))
            ));
        }
        out.push_str(&format!("  title = {{{}}},\n", bibtex_escape(&title_of(s))));
        for (k, v) in other_fields(s) {
            out.push_str(&format!(
                "  note = {{{}: {}}},\n",
                bibtex_escape(&k),
                bibtex_escape(&v)
            ));
        }
        if let Some(t) = fixity {
            out.push_str(&format!(
                "  howpublished = {{version {}, sha256 {}}},\n",
                t.version, t.digest
            ));
        }
        out.push_str("}\n");
    }
    out
}

fn ris(snippets: &[CitationSnippet], fixity: Option<&FixityToken>, opts: &FormatOptions) -> String {
    let mut out = String::new();
    for s in snippets {
        out.push_str("TY  - DBASE\n");
        for a in abbreviate(authors_of(s), opts) {
            out.push_str(&format!("AU  - {a}\n"));
        }
        out.push_str(&format!("TI  - {}\n", title_of(s)));
        for (k, v) in other_fields(s) {
            out.push_str(&format!("KW  - {k}: {v}\n"));
        }
        if let Some(t) = fixity {
            out.push_str(&format!("VL  - {}\n", t.version));
            out.push_str(&format!("N1  - sha256 {}\n", t.digest));
        }
        out.push_str("ER  -\n");
    }
    out
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

fn xml(snippets: &[CitationSnippet], fixity: Option<&FixityToken>) -> String {
    let mut out = String::from("<citations>\n");
    for s in snippets {
        out.push_str(&format!(
            "  <citation view=\"{}\">\n",
            xml_escape(s.view.as_str())
        ));
        for p in &s.params {
            out.push_str(&format!(
                "    <param>{}</param>\n",
                xml_escape(&p.to_string())
            ));
        }
        for (k, vs) in &s.fields {
            out.push_str(&format!("    <field name=\"{}\">\n", xml_escape(k)));
            for v in vs {
                out.push_str(&format!("      <value>{}</value>\n", xml_escape(v)));
            }
            out.push_str("    </field>\n");
        }
        out.push_str("  </citation>\n");
    }
    if let Some(t) = fixity {
        out.push_str(&format!(
            "  <fixity version=\"{}\" sha256=\"{}\" query=\"{}\"/>\n",
            t.version,
            t.digest,
            xml_escape(&t.query)
        ));
    }
    out.push_str("</citations>\n");
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json(snippets: &[CitationSnippet], fixity: Option<&FixityToken>) -> String {
    let mut out = String::from("{\"citations\":[");
    for (i, s) in snippets.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"view\":\"{}\",\"params\":[",
            json_escape(s.view.as_str())
        ));
        for (j, p) in s.params.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\"", json_escape(&p.to_string())));
        }
        out.push_str("],\"fields\":{");
        for (j, (k, vs)) in s.fields.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":[", json_escape(k)));
            for (l, v) in vs.iter().enumerate() {
                if l > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\"{}\"", json_escape(v)));
            }
            out.push(']');
        }
        out.push_str("}}");
    }
    out.push(']');
    if let Some(t) = fixity {
        out.push_str(&format!(
            ",\"fixity\":{{\"version\":{},\"sha256\":\"{}\",\"query\":\"{}\"}}",
            t.version,
            t.digest,
            json_escape(&t.query)
        ));
    }
    out.push('}');
    out
}

/// CSL-JSON: an array of citeproc items. Each snippet becomes a `dataset`
/// item with `author` (literal names), `title`, `id`, and the fixity data
/// in `version`/`note`.
fn csl_json(
    snippets: &[CitationSnippet],
    fixity: Option<&FixityToken>,
    opts: &FormatOptions,
) -> String {
    let mut out = String::from("[");
    for (i, s) in snippets.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"type\":\"dataset\",\"id\":\"{}\"",
            json_escape(&key_of(s, i))
        ));
        let authors = abbreviate(authors_of(s), opts);
        if !authors.is_empty() {
            out.push_str(",\"author\":[");
            for (j, a) in authors.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("{{\"literal\":\"{}\"}}", json_escape(a)));
            }
            out.push(']');
        }
        out.push_str(&format!(",\"title\":\"{}\"", json_escape(&title_of(s))));
        let extras: Vec<String> = other_fields(s)
            .iter()
            .map(|(k, v)| format!("{k}: {v}"))
            .collect();
        if !extras.is_empty() {
            out.push_str(&format!(
                ",\"note\":\"{}\"",
                json_escape(&extras.join("; "))
            ));
        }
        if let Some(t) = fixity {
            out.push_str(&format!(
                ",\"version\":\"{}\",\"DOI\":null,\"custom\":{{\"sha256\":\"{}\",\"query\":\"{}\"}}",
                t.version,
                t.digest,
                json_escape(&t.query)
            ));
        }
        out.push('}');
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use citesys_cq::{Symbol, Value};
    use citesys_storage::sha256;
    use std::collections::BTreeMap;

    fn snippet() -> CitationSnippet {
        CitationSnippet {
            view: Symbol::new("V1"),
            params: vec![Value::Int(11)],
            fields: BTreeMap::from([
                (
                    "PName".to_string(),
                    vec!["Alice".to_string(), "Bob".to_string()],
                ),
                ("database".to_string(), vec!["GtoPdb".to_string()]),
                ("year".to_string(), vec!["2017".to_string()]),
            ]),
        }
    }

    fn token() -> FixityToken {
        FixityToken {
            version: 3,
            query: "Q(X) :- R(X, 'a\"b')".to_string(),
            digest: sha256(b"abc"),
        }
    }

    #[test]
    fn text_format() {
        let out = format_citation(&[snippet()], Some(&token()), CitationFormat::Text);
        assert!(out.contains("Alice, Bob. GtoPdb"));
        assert!(out.contains("year: 2017"));
        assert!(out.contains("[V1(11)]"));
        assert!(out.contains("version 3"));
    }

    #[test]
    fn bibtex_format() {
        let out = format_citation(&[snippet()], Some(&token()), CitationFormat::BibTex);
        assert!(out.starts_with("@misc{V1_11,"));
        assert!(out.contains("author = {Alice and Bob}"));
        assert!(out.contains("title = {GtoPdb}"));
        assert!(out.contains("note = {year: 2017}"));
        assert!(out.contains("howpublished = {version 3"));
        assert!(out.trim_end().ends_with('}'));
    }

    #[test]
    fn ris_format() {
        let out = format_citation(&[snippet()], Some(&token()), CitationFormat::Ris);
        assert!(out.starts_with("TY  - DBASE\n"));
        assert!(out.contains("AU  - Alice\nAU  - Bob\n"));
        assert!(out.contains("TI  - GtoPdb\n"));
        assert!(out.contains("VL  - 3\n"));
        assert!(out.ends_with("ER  -\n"));
    }

    #[test]
    fn xml_format_escapes() {
        let out = format_citation(&[snippet()], Some(&token()), CitationFormat::Xml);
        assert!(out.contains("<citation view=\"V1\">"));
        assert!(out.contains("<param>11</param>"));
        assert!(out.contains("<value>Alice</value>"));
        // The query contains a double quote, which must be escaped.
        assert!(out.contains("&quot;"));
        assert!(out.ends_with("</citations>\n"));
    }

    #[test]
    fn json_format_escapes_and_parses_shapewise() {
        let out = format_citation(&[snippet()], Some(&token()), CitationFormat::Json);
        assert!(out.starts_with("{\"citations\":["));
        assert!(out.contains("\"view\":\"V1\""));
        assert!(out.contains("\\\"")); // escaped quote from the query
        assert!(out.ends_with('}'));
        // Balanced braces/brackets (cheap well-formedness check).
        let opens = out.matches('{').count();
        let closes = out.matches('}').count();
        assert_eq!(opens, closes);
        assert_eq!(out.matches('[').count(), out.matches(']').count());
    }

    #[test]
    fn empty_snippets_render_empty_but_valid() {
        for fmt in [
            CitationFormat::Text,
            CitationFormat::BibTex,
            CitationFormat::Ris,
            CitationFormat::Xml,
            CitationFormat::Json,
        ] {
            let out = format_citation(&[], None, fmt);
            // No panics, and XML/JSON are still well-formed containers.
            if fmt == CitationFormat::Xml {
                assert!(out.contains("<citations>"));
            }
            if fmt == CitationFormat::Json {
                assert_eq!(out, "{\"citations\":[]}");
            }
        }
    }

    #[test]
    fn csl_json_shape() {
        let out = format_citation(&[snippet()], Some(&token()), CitationFormat::CslJson);
        assert!(out.starts_with("[{\"type\":\"dataset\""));
        assert!(out.contains("\"author\":[{\"literal\":\"Alice\"},{\"literal\":\"Bob\"}]"));
        assert!(out.contains("\"title\":\"GtoPdb\""));
        assert!(out.contains("\"note\":\"year: 2017\""));
        assert!(out.contains("\"version\":\"3\""));
        assert!(out.contains("\"sha256\":"));
        assert!(out.ends_with("}]"));
        assert_eq!(out.matches('{').count(), out.matches('}').count());
        // Empty list is valid CSL-JSON too.
        assert_eq!(format_citation(&[], None, CitationFormat::CslJson), "[]");
    }

    #[test]
    fn et_al_abbreviation() {
        // Six contributors; the paper's convention keeps 3 + "et al.".
        let s = CitationSnippet {
            view: Symbol::new("V1"),
            params: vec![],
            fields: BTreeMap::from([(
                "PName".to_string(),
                vec!["A", "B", "C", "D", "E", "F"]
                    .into_iter()
                    .map(String::from)
                    .collect(),
            )]),
        };
        let out = format_citation(std::slice::from_ref(&s), None, CitationFormat::Text);
        assert!(out.contains("A, B, C, et al."), "{out}");
        assert!(!out.contains("D,"));
        // Unabridged keeps everyone.
        let full = format_citation_with(
            std::slice::from_ref(&s),
            None,
            CitationFormat::Text,
            &FormatOptions::unabridged(),
        );
        assert!(full.contains("A, B, C, D, E, F"));
        // BibTeX joins with " and ".
        let bib = format_citation(std::slice::from_ref(&s), None, CitationFormat::BibTex);
        assert!(bib.contains("A and B and C and et al."));
        // RIS keeps one AU line each including the et-al marker.
        let ris = format_citation(&[s], None, CitationFormat::Ris);
        assert_eq!(ris.matches("AU  - ").count(), 4);
    }

    #[test]
    fn exactly_max_authors_not_abbreviated() {
        let s = CitationSnippet {
            view: Symbol::new("V1"),
            params: vec![],
            fields: BTreeMap::from([(
                "PName".to_string(),
                vec!["A".to_string(), "B".to_string(), "C".to_string()],
            )]),
        };
        let out = format_citation(&[s], None, CitationFormat::Text);
        assert!(out.contains("A, B, C."));
        assert!(!out.contains("et al."));
    }

    #[test]
    fn title_falls_back_to_view_name() {
        let s = CitationSnippet {
            view: Symbol::new("V9"),
            params: vec![],
            fields: BTreeMap::new(),
        };
        let out = format_citation(&[s], None, CitationFormat::Text);
        assert!(out.contains("View V9"));
    }
}

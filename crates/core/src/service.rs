//! The owned, thread-safe citation service.
//!
//! [`CitationService`] is the production entry point for the paper's
//! central operation: it owns its database and citation-view registry
//! behind `Arc`s (so it is `Send + Sync` and cheap to clone across
//! threads), and it amortizes the expensive part of citation — the
//! bucket/MiniCon rewriting search — through two caches:
//!
//! * a **plan cache**: a sharded (lock-striped) LRU keyed by the query's
//!   *signature modulo constants* (λ-parameterized workloads repeat the
//!   same query shape at different constants; one search serves them
//!   all). Read hits take only a shard's shared lock, so concurrent
//!   clones scale across threads; plans can also be persisted to disk
//!   ([`PlanCache::to_text`] / [`PlanCache::load_text`]) and reloaded by
//!   a later process.
//! * a **view cache**: citation views are materialized once into a shared
//!   scratch database ([`ViewCache`]) and reused across queries and
//!   batches. The cite read path is **lock-free**: materializations live
//!   behind a published arc-swap snapshot pointer, so readers pay one
//!   atomic load and only writers pay for publication. Data updates —
//!   single tuples ([`stage_update`](CitationService::stage_update)) or
//!   whole mixed insert/delete transactions
//!   ([`stage_batch`](CitationService::stage_batch) with a
//!   [`Changeset`]) — are carried into the materializations by delta
//!   maintenance and land in **one** snapshot swap
//!   ([`with_database_delta`](CitationService::with_database_delta))
//!   instead of dropping them.
//!
//! **Invalidation contract**: registering a view or declaring a relation
//! changes the rewriting space — both caches are replaced (see
//! [`IncrementalEngine`](crate::evolve::IncrementalEngine)). Data updates
//! must invalidate **neither**: plans are data-independent, and
//! materializations follow the data by delta.
//!
//! A plan-cache hit performs **zero rewriting-search work** — observable
//! in [`CitedAnswer::rewrite_stats`], whose `plan_cache_hits` counter is 1
//! and whose search-effort counters are all 0 (and whose
//! `plan_cache_shard` names the serving shard).
//!
//! ```
//! use citesys_core::paper;
//! use citesys_core::{CitationMode, CitationService};
//!
//! let service = CitationService::builder()
//!     .database(paper::paper_database())
//!     .registry(paper::paper_registry())
//!     .mode(CitationMode::Formal)
//!     .build()
//!     .unwrap();
//!
//! // First call runs the rewriting search and caches the plan…
//! let first = service.cite(&paper::paper_query()).unwrap();
//! assert_eq!(first.rewrite_stats.plan_cache_hits, 0);
//! // …the second call skips straight to evaluate + annotate.
//! let second = service.cite(&paper::paper_query()).unwrap();
//! assert_eq!(second.rewrite_stats.plan_cache_hits, 1);
//! assert_eq!(second.rewrite_stats.search_effort(), 0);
//! assert_eq!(first.tuples[0].atoms, second.tuples[0].atoms);
//! ```

use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use citesys_cq::{ConjunctiveQuery, Term, Value};
use citesys_obs::{SpanSet, SpanTimer};
use citesys_rewrite::{PlanParseError, RewritePlan, RewriteStats};
use citesys_storage::{Changeset, Database, Tuple, VersionedDatabase};
use parking_lot::{Mutex, RwLock};

use crate::engine::{
    cite_selected, compute_plan, needed_views, select_rewritings, CitationMode, CitedAnswer,
    EngineOptions,
};
use crate::error::CiteError;
use crate::fixity::{cite_with_service, FixityToken};
use crate::policy::PolicySet;
use crate::registry::CitationRegistry;
use crate::viewcache::{DeltaOp, PendingViewDelta, ViewCache, ViewCacheStats};

/// Default number of distinct query signatures the plan cache retains.
pub const DEFAULT_PLAN_CACHE_CAPACITY: usize = 256;

/// Default number of lock-striped shards in the plan cache.
pub const DEFAULT_PLAN_CACHE_SHARDS: usize = 8;

// ---------------------------------------------------------------------------
// Plan cache
// ---------------------------------------------------------------------------

/// Counters for one [`PlanCache`] — either the whole cache
/// ([`PlanCache::stats`], summed over shards) or a single shard
/// ([`PlanCache::shard_stats`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct PlanCacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that required a fresh rewriting search.
    pub misses: u64,
    /// Entries evicted by the LRU policy.
    pub evictions: u64,
    /// Explicit invalidations (view/schema changes).
    pub invalidations: u64,
}

impl PlanCacheStats {
    fn add(&mut self, other: PlanCacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
        self.invalidations += other.invalidations;
    }
}

struct PlanEntry {
    /// Constants of the query instance the plan was computed for, in
    /// signature-placeholder order.
    constants: Vec<Value>,
    plan: Arc<RewritePlan>,
    /// LRU clock value of the entry's last touch. Atomic so a read hit
    /// can refresh it under the shard's *shared* lock.
    last_used: AtomicU64,
}

/// One lock stripe of the cache: an independent LRU with its own clock
/// and counters.
struct Shard {
    capacity: usize,
    /// Monotonic LRU clock for this shard.
    tick: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    invalidations: AtomicU64,
    entries: RwLock<BTreeMap<String, PlanEntry>>,
}

impl Shard {
    fn new(capacity: usize) -> Self {
        Shard {
            capacity,
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
            entries: RwLock::new(BTreeMap::new()),
        }
    }

    fn stats(&self) -> PlanCacheStats {
        PlanCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
        }
    }
}

/// A sharable, sharded LRU cache of rewrite plans, keyed by query
/// signature.
///
/// The cache is internally synchronized and built to be **read-dominated
/// under concurrency**: entries are spread over `N` lock-striped shards by
/// signature hash, and a read hit takes only its shard's *shared* lock —
/// the LRU clock and all counters are atomics, so concurrent hits on the
/// same shard never serialize on an exclusive lock. Only a miss-then-insert
/// or an eviction takes a shard's exclusive lock, and it blocks just that
/// shard's traffic, not the other `N − 1`.
///
/// Clones of the owning service (and an
/// [`IncrementalEngine`](crate::evolve::IncrementalEngine) built on top)
/// share one cache through an `Arc`. LRU eviction is per shard; per-shard
/// hit/miss/eviction counters are exposed via [`shard_stats`]
/// (aggregate: [`stats`]), and each served citation reports the shard that
/// answered it in
/// [`RewriteStats::plan_cache_shard`](citesys_rewrite::RewriteStats::plan_cache_shard).
///
/// [`shard_stats`]: Self::shard_stats
/// [`stats`]: Self::stats
pub struct PlanCache {
    shards: Vec<Shard>,
    capacity: usize,
}

impl std::fmt::Debug for PlanCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlanCache")
            .field("capacity", &self.capacity)
            .field("shards", &self.shards.len())
            .field("len", &self.len())
            .field("stats", &self.stats())
            .finish()
    }
}

impl PlanCache {
    /// Creates a cache holding at most `capacity` plans (minimum 1),
    /// striped over [`DEFAULT_PLAN_CACHE_SHARDS`] shards (fewer when the
    /// capacity is smaller than the default shard count).
    pub fn new(capacity: usize) -> Self {
        PlanCache::with_shards(capacity, DEFAULT_PLAN_CACHE_SHARDS)
    }

    /// Creates a cache holding at most `capacity` plans spread over
    /// `shards` lock stripes. The shard count is clamped to
    /// `1..=capacity`; capacity is divided evenly per shard, **rounding
    /// up**, so the requested total never shrinks — which means the
    /// *effective* capacity is the next multiple of the shard count (e.g.
    /// capacity 10 over 8 shards yields 8 shards × 2 = 16). The cache
    /// admits up to that effective total, and [`capacity`](Self::capacity)
    /// reports it, so `len() <= capacity()` always holds. One shard gives
    /// the exact single-LRU semantics (and the exact capacity) of the
    /// pre-sharded cache.
    pub fn with_shards(capacity: usize, shards: usize) -> Self {
        let capacity = capacity.max(1);
        let shards = shards.clamp(1, capacity);
        let per_shard = capacity.div_ceil(shards);
        PlanCache {
            shards: (0..shards).map(|_| Shard::new(per_shard)).collect(),
            capacity: per_shard * shards,
        }
    }

    /// The shard index serving `signature` (stable for the lifetime of
    /// this cache).
    pub fn shard_of(&self, signature: &str) -> usize {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        signature.hash(&mut h);
        (h.finish() as usize) % self.shards.len()
    }

    /// Number of lock stripes.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Number of cached plans (across all shards).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.entries.read().len()).sum()
    }

    /// True when no plans are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Aggregate counter snapshot (sum over shards).
    pub fn stats(&self) -> PlanCacheStats {
        let mut out = PlanCacheStats::default();
        for s in &self.shards {
            out.add(s.stats());
        }
        out
    }

    /// Per-shard counter snapshots, indexed by shard.
    pub fn shard_stats(&self) -> Vec<PlanCacheStats> {
        self.shards.iter().map(Shard::stats).collect()
    }

    /// Drops every cached plan (view/schema change invalidation).
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut entries = shard.entries.write();
            let dropped = entries.len() as u64;
            entries.clear();
            shard.invalidations.fetch_add(dropped, Ordering::Relaxed);
        }
    }

    /// Number of distinct signatures the cache may hold (across all
    /// shards). This is the **effective** capacity: the requested one
    /// rounded up to a multiple of the shard count (see
    /// [`with_shards`](Self::with_shards)), so it is a true upper bound
    /// on [`len`](Self::len).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Looks up the plan for `signature`, re-targeted at `constants`
    /// (test-only convenience: production paths hash once and call
    /// [`get_in`](Self::get_in) with the precomputed shard).
    #[cfg(test)]
    fn get(&self, signature: &str, constants: &[Value]) -> Option<Arc<RewritePlan>> {
        self.get_in(self.shard_of(signature), signature, constants)
    }

    /// [`get`](Self::get) with the shard precomputed — the cite hot path
    /// hashes the signature once and reuses the index for lookup, insert
    /// and stats reporting.
    fn get_in(
        &self,
        shard: usize,
        signature: &str,
        constants: &[Value],
    ) -> Option<Arc<RewritePlan>> {
        let shard = &self.shards[shard];
        // Fast path: a hit needs only the shared lock — the LRU touch is
        // an atomic store, and the instantiation happens outside the lock
        // (λ-transfer hits would otherwise serialize threads on a deep
        // plan clone).
        let (plan, entry_constants) = {
            let entries = shard.entries.read();
            let Some(entry) = entries.get(signature) else {
                drop(entries);
                shard.misses.fetch_add(1, Ordering::Relaxed);
                return None;
            };
            let tick = shard.tick.fetch_add(1, Ordering::Relaxed) + 1;
            entry.last_used.store(tick, Ordering::Relaxed);
            shard.hits.fetch_add(1, Ordering::Relaxed);
            (Arc::clone(&entry.plan), entry.constants.clone())
        };
        if entry_constants == constants {
            return Some(plan);
        }
        // Same shape, different λ-constants: instantiate the cached plan
        // at the new constants (a bijective value mapping — the signature
        // guarantees equal equality-patterns).
        debug_assert_eq!(entry_constants.len(), constants.len());
        let mapping: BTreeMap<Value, Value> = entry_constants
            .into_iter()
            .zip(constants.iter().cloned())
            .collect();
        Some(Arc::new(plan.instantiate(&mapping)))
    }

    /// Inserts a freshly computed plan, evicting its shard's
    /// least-recently-used entry when that shard is full.
    fn insert(&self, signature: String, constants: Vec<Value>, plan: Arc<RewritePlan>) {
        self.insert_in(self.shard_of(&signature), signature, constants, plan);
    }

    /// [`insert`](Self::insert) with the shard precomputed (see
    /// [`get_in`](Self::get_in)).
    fn insert_in(
        &self,
        shard: usize,
        signature: String,
        constants: Vec<Value>,
        plan: Arc<RewritePlan>,
    ) {
        let shard = &self.shards[shard];
        let tick = shard.tick.fetch_add(1, Ordering::Relaxed) + 1;
        let mut entries = shard.entries.write();
        if entries.len() >= shard.capacity && !entries.contains_key(&signature) {
            if let Some(oldest) = entries
                .iter()
                .min_by_key(|(_, e)| e.last_used.load(Ordering::Relaxed))
                .map(|(k, _)| k.clone())
            {
                entries.remove(&oldest);
                shard.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        entries.insert(
            signature,
            PlanEntry {
                constants,
                plan,
                last_used: AtomicU64::new(tick),
            },
        );
    }

    /// Serializes every cached plan to a line-oriented text form that
    /// [`load_text`](Self::load_text) reads back — the persistence format
    /// behind `citesys serve --plan-cache` and `citesys plans export`.
    ///
    /// The format stores `(signature, constants, plan)` triples; shard
    /// assignment and LRU/counter state are in-process properties and are
    /// not persisted. Like [`RewritePlan::to_text`], text constants
    /// containing newlines do not round-trip (the surface parser cannot
    /// produce them either).
    ///
    /// **Soundness caveat**: plans are computed against a specific
    /// registry of citation views. Loading a file exported under a
    /// different registry serves wrong plans; persist and restore only
    /// across processes that register the same views.
    pub fn to_text(&self) -> String {
        let mut out = String::from("citesys-plan-cache v1\n");
        for shard in &self.shards {
            let entries = shard.entries.read();
            for (sig, e) in entries.iter() {
                out.push_str("entry\n");
                let _ = writeln!(out, "sig {sig}");
                for c in &e.constants {
                    match c {
                        Value::Int(i) => {
                            let _ = writeln!(out, "const i {i}");
                        }
                        Value::Text(s) => {
                            let _ = writeln!(out, "const t {}", s.as_str());
                        }
                        Value::Bool(b) => {
                            let _ = writeln!(out, "const b {b}");
                        }
                    }
                }
                out.push_str(&e.plan.to_text());
                out.push_str("end\n");
            }
        }
        out
    }

    /// Loads plans serialized by [`to_text`](Self::to_text) into this
    /// cache, returning how many entries were parsed. Entries are inserted
    /// through the normal path, so the configured capacity still applies
    /// (an overfull file ends with the tail of each shard evicted).
    pub fn load_text(&self, text: &str) -> Result<usize, PlanParseError> {
        fn err(message: impl Into<String>) -> PlanParseError {
            PlanParseError {
                message: message.into(),
            }
        }
        // CRLF tolerance, via the same helper `RewritePlan::from_text`
        // uses: trim a carriage return from every line so a plans file
        // saved/edited on Windows neither fails to parse nor smuggles
        // `\r` into a cached signature (which would silently never match
        // again).
        let mut lines = text.lines().map(citesys_rewrite::trim_cr);
        match lines.next() {
            Some("citesys-plan-cache v1") => {}
            other => return Err(err(format!("bad plan-cache header: {other:?}"))),
        }
        let mut loaded = 0usize;
        while let Some(line) = lines.next() {
            if line.trim().is_empty() {
                continue;
            }
            if line != "entry" {
                return Err(err(format!("expected 'entry', got '{line}'")));
            }
            let sig = lines
                .next()
                .and_then(|l| l.strip_prefix("sig "))
                .ok_or_else(|| err("entry without 'sig' line"))?
                .to_string();
            let mut constants: Vec<Value> = Vec::new();
            let mut plan_lines: Vec<&str> = Vec::new();
            let mut ended = false;
            for line in lines.by_ref() {
                if line == "end" {
                    ended = true;
                    break;
                }
                if let Some(c) = line.strip_prefix("const ") {
                    let v = match c.split_once(' ') {
                        Some(("i", n)) => Value::Int(
                            n.parse()
                                .map_err(|_| err(format!("bad int constant '{n}'")))?,
                        ),
                        Some(("t", s)) => Value::text(s),
                        Some(("b", "true")) => Value::Bool(true),
                        Some(("b", "false")) => Value::Bool(false),
                        _ => return Err(err(format!("bad constant line '{line}'"))),
                    };
                    constants.push(v);
                } else {
                    plan_lines.push(line);
                }
            }
            if !ended {
                return Err(err("unterminated plan-cache entry (missing 'end')"));
            }
            let plan = RewritePlan::from_text(&plan_lines.join("\n"))?;
            self.insert(sig, constants, Arc::new(plan));
            loaded += 1;
        }
        Ok(loaded)
    }
}

/// Computes the cache signature of `q`: its canonical form printed with
/// every constant replaced by a typed placeholder (`generalize == true`),
/// or by its literal value (`generalize == false`, used when registered
/// views themselves contain constants and plan transfer would be unsound).
///
/// Equal constants share a placeholder, so the signature preserves the
/// equality pattern — `Q(N) :- R(11, N), S(11)` and `Q(N) :- R(7, N),
/// S(9)` get different signatures, while `… R(12, N), S(12)` shares the
/// first one's plan re-targeted at 12.
fn plan_signature(q: &ConjunctiveQuery, generalize: bool) -> (String, Vec<Value>) {
    let canonical = q.canonical();
    let mut constants: Vec<Value> = Vec::new();
    let mut sig = String::new();
    let mut push_term = |sig: &mut String, t: &Term| match t {
        Term::Var(v) => sig.push_str(v.as_str()),
        Term::Const(c) => {
            if generalize {
                let idx = match constants.iter().position(|x| x == c) {
                    Some(i) => i,
                    None => {
                        constants.push(c.clone());
                        constants.len() - 1
                    }
                };
                let _ = write!(sig, "\u{27e8}{}:{}\u{27e9}", idx, c.type_name());
            } else {
                let _ = write!(sig, "\u{27e8}={}:{:?}\u{27e9}", c.type_name(), c);
            }
        }
    };
    let mut push_atom = |sig: &mut String, atom: &citesys_cq::Atom| {
        sig.push_str(atom.predicate.as_str());
        sig.push('(');
        for (i, t) in atom.terms.iter().enumerate() {
            if i > 0 {
                sig.push(',');
            }
            push_term(sig, t);
        }
        sig.push(')');
    };
    for p in &canonical.params {
        sig.push('λ');
        sig.push_str(p.as_str());
        sig.push('.');
    }
    push_atom(&mut sig, &canonical.head);
    sig.push_str(":-");
    for atom in &canonical.body {
        push_atom(&mut sig, atom);
        sig.push(';');
    }
    (sig, constants)
}

/// True when any registered view's defining query mentions a constant —
/// plan transfer across constants is then disabled (the search result can
/// depend on the specific constant).
fn registry_has_view_constants(registry: &CitationRegistry) -> bool {
    registry.iter().any(|cv| {
        cv.view
            .head
            .terms
            .iter()
            .chain(cv.view.body.iter().flat_map(|a| a.terms.iter()))
            .any(|t| matches!(t, Term::Const(_)))
    })
}

// ---------------------------------------------------------------------------
// Builder
// ---------------------------------------------------------------------------

/// Typed builder for [`CitationService`]; obtained from
/// [`CitationService::builder`].
#[derive(Default)]
pub struct CitationServiceBuilder {
    db: Option<Arc<Database>>,
    registry: Option<Arc<CitationRegistry>>,
    options: EngineOptions,
    plan_cache_capacity: usize,
    plan_cache_shards: usize,
    shared_plans: Option<Arc<PlanCache>>,
    warm_views: Option<Database>,
}

impl CitationServiceBuilder {
    /// Sets the database (required). Accepts an owned [`Database`] or an
    /// existing `Arc<Database>` (e.g. a version snapshot).
    pub fn database(mut self, db: impl Into<Arc<Database>>) -> Self {
        self.db = Some(db.into());
        self
    }

    /// Sets the citation-view registry (required).
    pub fn registry(mut self, registry: impl Into<Arc<CitationRegistry>>) -> Self {
        self.registry = Some(registry.into());
        self
    }

    /// Replaces the full option set at once.
    pub fn options(mut self, options: EngineOptions) -> Self {
        self.options = options;
        self
    }

    /// Formal vs cost-pruned evaluation.
    pub fn mode(mut self, mode: CitationMode) -> Self {
        self.options.mode = mode;
        self
    }

    /// The owner's combination policies.
    pub fn policies(mut self, policies: PolicySet) -> Self {
        self.options.policies = policies;
        self
    }

    /// Rewriting-search options.
    pub fn rewrite_options(mut self, rewrite: citesys_rewrite::RewriteOptions) -> Self {
        self.options.rewrite = rewrite;
        self
    }

    /// Enables the contained-rewriting (partial citation) fallback.
    pub fn allow_partial(mut self, allow: bool) -> Self {
        self.options.allow_partial = allow;
        self
    }

    /// Capacity of the LRU plan cache (default
    /// [`DEFAULT_PLAN_CACHE_CAPACITY`]). Ignored when
    /// [`shared_plan_cache`](Self::shared_plan_cache) is set.
    pub fn plan_cache_capacity(mut self, capacity: usize) -> Self {
        self.plan_cache_capacity = capacity;
        self
    }

    /// Number of lock-striped shards in the plan cache (default
    /// [`DEFAULT_PLAN_CACHE_SHARDS`]; clamped to the capacity). More
    /// shards reduce write contention between threads missing on
    /// different query shapes; LRU eviction becomes per-shard. Ignored
    /// when [`shared_plan_cache`](Self::shared_plan_cache) is set.
    pub fn plan_cache_shards(mut self, shards: usize) -> Self {
        self.plan_cache_shards = shards;
        self
    }

    /// Shares an existing plan cache (so a rebuilt service — e.g. after a
    /// data update — keeps its amortized plans).
    pub fn shared_plan_cache(mut self, plans: Arc<PlanCache>) -> Self {
        self.shared_plans = Some(plans);
        self
    }

    /// Seeds the materialized-view cache with views materialized by a
    /// previous process (checkpoint recovery). The caller asserts the
    /// materializations match the database snapshot and registry being
    /// built — the durability layer guarantees this by checkpointing
    /// all of them together under one manifest.
    pub fn warm_views(mut self, views: Database) -> Self {
        self.warm_views = Some(views);
        self
    }

    /// Builds the service, validating that both the database and the
    /// registry were provided.
    pub fn build(self) -> Result<CitationService, CiteError> {
        let db = self.db.ok_or_else(|| CiteError::ServiceConfig {
            reason: "a database is required: call .database(db)".to_string(),
        })?;
        let registry = self.registry.ok_or_else(|| CiteError::ServiceConfig {
            reason: "a citation-view registry is required: call .registry(reg)".to_string(),
        })?;
        let capacity = if self.plan_cache_capacity == 0 {
            DEFAULT_PLAN_CACHE_CAPACITY
        } else {
            self.plan_cache_capacity
        };
        let shards = if self.plan_cache_shards == 0 {
            DEFAULT_PLAN_CACHE_SHARDS
        } else {
            self.plan_cache_shards
        };
        let plans = self
            .shared_plans
            .unwrap_or_else(|| Arc::new(PlanCache::with_shards(capacity, shards)));
        let generalize = !registry_has_view_constants(&registry);
        let views = match self.warm_views {
            Some(seed) => ViewCache::with_published(seed),
            None => ViewCache::new(),
        };
        Ok(CitationService {
            db,
            registry,
            options: self.options,
            plans,
            views: Arc::new(views),
            generalize_constants: generalize,
            asof: Arc::new(AsOfCache::new()),
        })
    }
}

// ---------------------------------------------------------------------------
// Time travel: the as-of service cache
// ---------------------------------------------------------------------------

/// How many historical versions keep a warm as-of service at once.
/// Time-travel reads typically revisit a handful of cited versions (a
/// reviewer re-deriving a result, a follower verifying fixity), so a
/// small LRU ring captures the locality without holding old snapshots
/// alive indefinitely.
const ASOF_SERVICE_CAPACITY: usize = 4;

/// Cache of services pinned to historical versions, kept **separate**
/// from the live service's plan/view caches so `cite … @ version`
/// traffic never evicts or pollutes warm live state (and vice versa).
///
/// Plans are still shared *among* as-of services (one cache for strict,
/// one for partial-citation mode, mirroring how the serving layer splits
/// them), because plans depend only on the query shape and the registry
/// — never on which snapshot is being read. Materialized views are
/// per-version (each cached service owns its own [`ViewCache`]).
///
/// The cache is invalidated wholesale when the owning service's registry
/// pointer changes (DDL replaces the registry `Arc`, which invalidates
/// every cached plan and materialization for historical reads too).
pub struct AsOfCache {
    inner: Mutex<AsOfInner>,
}

struct AsOfInner {
    /// `Arc::as_ptr` of the registry the cached state was built for.
    registry_ptr: usize,
    /// Shared plan cache for as-of services citing without partial mode.
    plans_strict: Arc<PlanCache>,
    /// Shared plan cache for as-of services citing with `allow_partial`.
    plans_partial: Arc<PlanCache>,
    /// LRU ring of warm services keyed by `(version, allow_partial)`.
    services: VecDeque<((u64, bool), CitationService)>,
}

impl AsOfCache {
    fn new() -> Self {
        AsOfCache {
            inner: Mutex::new(AsOfInner {
                registry_ptr: 0,
                plans_strict: Arc::new(PlanCache::new(DEFAULT_PLAN_CACHE_CAPACITY)),
                plans_partial: Arc::new(PlanCache::new(DEFAULT_PLAN_CACHE_CAPACITY)),
                services: VecDeque::new(),
            }),
        }
    }

    /// The versions currently holding a warm as-of service (diagnostics).
    pub fn cached_versions(&self) -> Vec<u64> {
        let mut versions: Vec<u64> = self
            .inner
            .lock()
            .services
            .iter()
            .map(|((v, _), _)| *v)
            .collect();
        versions.sort_unstable();
        versions.dedup();
        versions
    }

    /// Returns a warm service over `snapshot` at `version` with
    /// `options`, building (and caching) one on miss. `registry` is the
    /// owning service's **current** registry: a pointer change clears
    /// the whole cache, because DDL invalidates historical plans too.
    fn service_for(
        &self,
        version: u64,
        snapshot: &Arc<Database>,
        registry: &Arc<CitationRegistry>,
        options: EngineOptions,
    ) -> Result<CitationService, CiteError> {
        let mut inner = self.inner.lock();
        let registry_ptr = Arc::as_ptr(registry) as usize;
        if inner.registry_ptr != registry_ptr {
            inner.registry_ptr = registry_ptr;
            inner.services.clear();
            inner.plans_strict = Arc::new(PlanCache::new(DEFAULT_PLAN_CACHE_CAPACITY));
            inner.plans_partial = Arc::new(PlanCache::new(DEFAULT_PLAN_CACHE_CAPACITY));
        }
        let key = (version, options.allow_partial);
        if let Some((_, base)) = inner.services.iter().find(|(k, _)| *k == key) {
            // Mode/policies may differ per cite; rewrite and
            // allow_partial match by key construction, so the swap is
            // always accepted and shares the warm caches.
            return base.with_options(options);
        }
        let plans = if options.allow_partial {
            Arc::clone(&inner.plans_partial)
        } else {
            Arc::clone(&inner.plans_strict)
        };
        let base = CitationService::builder()
            .database(Arc::clone(snapshot))
            .registry(Arc::clone(registry))
            .options(options)
            .shared_plan_cache(plans)
            .build()?;
        if inner.services.len() >= ASOF_SERVICE_CAPACITY {
            inner.services.pop_front();
        }
        inner.services.push_back((key, base.clone()));
        Ok(base)
    }
}

impl std::fmt::Debug for AsOfCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("AsOfCache")
            .field("cached", &inner.services.len())
            .finish()
    }
}

// ---------------------------------------------------------------------------
// The service
// ---------------------------------------------------------------------------

/// An owned, `Send + Sync` citation service with prepared-query support.
///
/// Cloning is cheap (all heavyweight state is behind `Arc`s) and clones
/// share both caches — hand one clone to each worker thread.
///
/// The database snapshot is immutable for the lifetime of the service; for
/// mutable workloads use
/// [`IncrementalEngine`](crate::evolve::IncrementalEngine), which swaps
/// snapshots underneath while keeping the plan cache warm.
#[derive(Clone, Debug)]
pub struct CitationService {
    db: Arc<Database>,
    registry: Arc<CitationRegistry>,
    options: EngineOptions,
    plans: Arc<PlanCache>,
    /// Materialized citation views, grown on demand and shared by all
    /// clones of this service; carried across data updates by delta
    /// maintenance (see [`ViewCache`]).
    views: Arc<ViewCache>,
    /// Whether plans may be transferred across λ-parameter constants.
    generalize_constants: bool,
    /// Warm services for historical versions (`cite … @ version`),
    /// cached apart from the live plan/view caches; shared by all
    /// clones and carried across delta-maintained snapshot swaps
    /// (historical versions never change under a data update).
    asof: Arc<AsOfCache>,
}

impl CitationService {
    /// Starts building a service.
    pub fn builder() -> CitationServiceBuilder {
        CitationServiceBuilder::default()
    }

    /// The underlying database snapshot.
    pub fn database(&self) -> &Arc<Database> {
        &self.db
    }

    /// The citation-view registry.
    pub fn registry(&self) -> &Arc<CitationRegistry> {
        &self.registry
    }

    /// The engine options the service was built with.
    pub fn options(&self) -> &EngineOptions {
        &self.options
    }

    /// The shared plan cache (for sharing with a rebuilt service).
    pub fn plan_cache(&self) -> &Arc<PlanCache> {
        &self.plans
    }

    /// Aggregate plan-cache counters (see
    /// [`PlanCache::shard_stats`] for the per-shard breakdown).
    pub fn plan_cache_stats(&self) -> PlanCacheStats {
        self.plans.stats()
    }

    /// Materialized-view cache counters. The counters survive
    /// delta-maintained snapshot swaps
    /// ([`with_database_delta`](Self::with_database_delta)), so after a
    /// data update they show how many views were carried over untouched
    /// or by delta rows versus dropped for recomputation.
    pub fn view_cache_stats(&self) -> ViewCacheStats {
        self.views.stats()
    }

    /// A copy of the currently published materialized views — what a
    /// checkpoint persists so the next process starts with them warm
    /// (see [`CitationServiceBuilder::warm_views`]).
    pub fn materialized_views(&self) -> Database {
        Database::clone(&self.views.read())
    }

    /// A service with different evaluation options over the same data,
    /// registry and caches. **Caveat**: the plan cache is keyed by query
    /// signature only, so the new options must agree with the old ones on
    /// everything that affects planning (`rewrite`, `allow_partial`) —
    /// mode and policies are freely swappable. Violations are rejected.
    pub fn with_options(&self, options: EngineOptions) -> Result<CitationService, CiteError> {
        let same_rewrite = {
            let a = &self.options.rewrite;
            let b = &options.rewrite;
            a.algorithm == b.algorithm
                && a.goal == b.goal
                && a.prune == b.prune
                && a.minimize == b.minimize
                && a.max_candidates == b.max_candidates
        };
        if !same_rewrite || self.options.allow_partial != options.allow_partial {
            return Err(CiteError::ServiceConfig {
                reason: "with_options may not change rewrite options or allow_partial \
                         (they invalidate cached plans); build a fresh service instead"
                    .to_string(),
            });
        }
        Ok(CitationService {
            options,
            ..self.clone()
        })
    }

    /// A service over a different database snapshot that keeps this
    /// service's plan cache warm (plans depend only on the query shape and
    /// the registry, never on data). The materialized-view cache is
    /// dropped — it does depend on data, and an arbitrary snapshot swap
    /// gives nothing to delta against. When the new snapshot differs from
    /// the old by a known changeset (one tuple or a whole transaction),
    /// use [`stage_update`](Self::stage_update) /
    /// [`stage_batch`](Self::stage_batch) +
    /// [`with_database_delta`](Self::with_database_delta) instead to keep
    /// the materializations warm too.
    pub fn with_database(&self, db: impl Into<Arc<Database>>) -> CitationService {
        CitationService {
            db: db.into(),
            registry: Arc::clone(&self.registry),
            options: self.options,
            plans: Arc::clone(&self.plans),
            views: Arc::new(self.views.fresh_linked()),
            generalize_constants: self.generalize_constants,
            asof: Arc::clone(&self.asof),
        }
    }

    /// Replaces this service's database reference with an empty
    /// placeholder **without** touching the caches — crate-internal, used
    /// by [`IncrementalEngine`](crate::evolve::IncrementalEngine) to make
    /// its own `Arc<Database>` unique before `Arc::make_mut`, so
    /// steady-state updates mutate in place instead of deep-cloning.
    pub(crate) fn release_database(&mut self) {
        self.db = Arc::new(Database::new());
    }

    /// Phase one of a delta-maintained snapshot swap for a single-tuple
    /// update: captures the current materialized views (and, for
    /// deletions, the at-risk view rows, which are only computable while
    /// the tuple is still present). Call **before** mutating the
    /// database, then apply the mutation, then finish with
    /// [`with_database_delta`](Self::with_database_delta). A convenience
    /// wrapper over [`stage_batch`](Self::stage_batch) with a
    /// one-operation changeset.
    ///
    /// Staging clones the materializations, so services handed out
    /// earlier keep citing their own consistent (old snapshot, old views)
    /// pairing while the successor is prepared.
    pub fn stage_update(&self, rel: &str, t: &Tuple, op: DeltaOp) -> PendingViewDelta {
        let mut changes = Changeset::new();
        match op {
            DeltaOp::Insert => changes.insert(rel, t.clone()),
            DeltaOp::Delete => changes.delete(rel, t.clone()),
        };
        self.stage_batch(&changes)
    }

    /// Phase one of a delta-maintained snapshot swap for a whole
    /// transaction: normalizes `changes` against this service's snapshot
    /// into its **net** effect (in-batch cancellations, re-inserts of
    /// present tuples and deletes of absent ones cost no delta work) and
    /// captures everything deletion deltas need from the pre-batch state.
    /// Call **before** mutating the database, then apply the changeset,
    /// then finish with [`with_database_delta`](Self::with_database_delta)
    /// — the whole batch lands in **one** snapshot swap instead of N
    /// single-tuple swaps.
    pub fn stage_batch(&self, changes: &Changeset) -> PendingViewDelta {
        self.views.stage_batch(&self.registry, &self.db, changes)
    }

    /// Phase two of a delta-maintained snapshot swap: a service over the
    /// post-update snapshot whose plan cache **and** materialized views
    /// stay warm — the staged net insert/delete delta (one tuple or a
    /// whole batch) is applied to every affected view against the single
    /// post-batch database, unaffected views are carried over verbatim,
    /// and only views whose delta application fails are dropped for lazy
    /// recomputation ([`ViewCacheStats`] counts each case). However many
    /// tuples the transaction changed, readers observe exactly **one**
    /// snapshot swap.
    ///
    /// Applying a delta staged for a mutation that then failed (or
    /// changed nothing) is harmless: the delta rules evaluate against the
    /// post-update database, so an absent insertion contributes no rows
    /// and a still-present "deleted" tuple keeps all its rows derivable.
    pub fn with_database_delta(
        &self,
        db: impl Into<Arc<Database>>,
        pending: PendingViewDelta,
    ) -> CitationService {
        let db = db.into();
        let views = Arc::new(pending.apply(&self.registry, &db));
        CitationService {
            db,
            registry: Arc::clone(&self.registry),
            options: self.options,
            plans: Arc::clone(&self.plans),
            views,
            generalize_constants: self.generalize_constants,
            asof: Arc::clone(&self.asof),
        }
    }

    /// Cites `q` against historical `version` of `history` — the
    /// time-travel read path — using this service's own options.
    /// See [`cite_at_with`](Self::cite_at_with).
    pub fn cite_at(
        &self,
        history: &VersionedDatabase,
        version: u64,
        q: &ConjunctiveQuery,
    ) -> Result<(CitedAnswer, FixityToken), CiteError> {
        self.cite_at_with(history, version, self.options, q)
    }

    /// Cites `q` against historical `version` of `history` with explicit
    /// per-call options (mode and policies may differ from this
    /// service's; `allow_partial` may too — it selects a separate shared
    /// plan cache; rewrite options must match, as for
    /// [`with_options`](Self::with_options)).
    ///
    /// The snapshot comes from `history` (erroring with
    /// [`CompactedVersion`](citesys_storage::StorageError::CompactedVersion)
    /// or [`UnknownVersion`](citesys_storage::StorageError::UnknownVersion)
    /// when `version` is outside the retained window), and evaluation
    /// runs on a cached **as-of service** pinned to that version — kept
    /// apart from the live plan/view caches so time-travel reads never
    /// pollute warm live state. The returned [`FixityToken`] is stamped
    /// with `version` and the answer's SHA-256 digest, byte-identical to
    /// what a live cite at that version produced.
    pub fn cite_at_with(
        &self,
        history: &VersionedDatabase,
        version: u64,
        options: EngineOptions,
        q: &ConjunctiveQuery,
    ) -> Result<(CitedAnswer, FixityToken), CiteError> {
        let snapshot = history.snapshot(version)?;
        self.cite_at_snapshot(version, &snapshot, options, q)
    }

    /// [`cite_at_with`](Self::cite_at_with) when the caller already
    /// holds the snapshot of `version` (e.g. the serving layer extracts
    /// it under its store lock and evaluates outside it). The caller
    /// asserts `snapshot` **is** the database as of `version` — the
    /// fixity token is stamped with the pair as given.
    pub fn cite_at_snapshot(
        &self,
        version: u64,
        snapshot: &Arc<Database>,
        options: EngineOptions,
        q: &ConjunctiveQuery,
    ) -> Result<(CitedAnswer, FixityToken), CiteError> {
        let same_rewrite = {
            let a = &self.options.rewrite;
            let b = &options.rewrite;
            a.algorithm == b.algorithm
                && a.goal == b.goal
                && a.prune == b.prune
                && a.minimize == b.minimize
                && a.max_candidates == b.max_candidates
        };
        if !same_rewrite {
            return Err(CiteError::ServiceConfig {
                reason: "cite_at may not change rewrite options (they invalidate \
                         cached as-of plans); build a fresh service instead"
                    .to_string(),
            });
        }
        let service = self
            .asof
            .service_for(version, snapshot, &self.registry, options)?;
        cite_with_service(&service, version, q)
    }

    /// The shared time-travel cache (diagnostics: which historical
    /// versions currently hold a warm as-of service).
    pub fn asof_cache(&self) -> &Arc<AsOfCache> {
        &self.asof
    }

    /// Looks up (or computes and caches) the rewrite plan for `q`.
    /// Returns the plan, whether it was served from the cache, and the
    /// shard that served (or stored) it.
    fn plan_for(&self, q: &ConjunctiveQuery) -> Result<(Arc<RewritePlan>, bool, usize), CiteError> {
        self.plan_for_spanned(q, &mut SpanSet::disabled())
    }

    /// [`plan_for`](Self::plan_for) with pipeline spans: records the
    /// cache probe as `plan_lookup` and, on a miss, the fresh search as
    /// `rewrite` (absent on a hit — that absence is how callers tell a
    /// hit from a miss without re-deriving the signature).
    fn plan_for_spanned(
        &self,
        q: &ConjunctiveQuery,
        spans: &mut SpanSet,
    ) -> Result<(Arc<RewritePlan>, bool, usize), CiteError> {
        let lookup = SpanTimer::start(spans.enabled());
        let (signature, constants) = plan_signature(q, self.generalize_constants);
        // One signature hash per cite: the shard index is reused for the
        // lookup, the miss-insert, and stats reporting.
        let shard = self.plans.shard_of(&signature);
        if let Some(plan) = self.plans.get_in(shard, &signature, &constants) {
            spans.record_micros("plan_lookup", lookup.elapsed_micros());
            return Ok((plan, true, shard));
        }
        spans.record_micros("plan_lookup", lookup.elapsed_micros());
        let search = SpanTimer::start(spans.enabled());
        let plan = Arc::new(compute_plan(&self.registry, &self.options, q)?);
        self.plans
            .insert_in(shard, signature, constants, Arc::clone(&plan));
        spans.record_micros("rewrite", search.elapsed_micros());
        Ok((plan, false, shard))
    }

    /// Stats reported for work served from a cached plan: the search-effort
    /// counters are zero by construction.
    fn cached_stats(plan: &RewritePlan, shard: usize) -> RewriteStats {
        RewriteStats {
            views_total: plan.stats.views_total,
            views_pruned: plan.stats.views_pruned,
            rewritings_found: plan.stats.rewritings_found,
            plan_cache_hits: 1,
            plan_cache_shard: shard,
            ..Default::default()
        }
    }

    /// Evaluate + annotate `q` under `plan` (shared by all entry points).
    fn cite_with_plan(
        &self,
        q: &ConjunctiveQuery,
        plan: &RewritePlan,
        stats: RewriteStats,
    ) -> Result<CitedAnswer, CiteError> {
        if plan.rewritings.is_empty() {
            return Err(CiteError::NoRewriting {
                query: q.to_string(),
            });
        }
        let selected = select_rewritings(&self.db, &self.registry, &self.options, plan);
        let needed = needed_views(&selected);
        // Fast path: all needed views already published — one lock-free
        // atomic load, then evaluate against the loaded snapshot (a
        // concurrent publication cannot change it underneath us).
        {
            let views = self.views.read();
            if needed.iter().all(|n| views.has_relation(n.as_str())) {
                return cite_selected(
                    &self.db,
                    &self.registry,
                    &self.options,
                    q,
                    &selected,
                    plan.partial,
                    &views,
                    stats,
                );
            }
        }
        // Slow path: copy-on-write materialization of the missing views,
        // published as a fresh snapshot (skipped when a racing writer
        // already published them); readers are never blocked.
        self.views
            .materialize_missing(&self.db, &self.registry, &needed)?;
        let views = self.views.read();
        cite_selected(
            &self.db,
            &self.registry,
            &self.options,
            q,
            &selected,
            plan.partial,
            &views,
            stats,
        )
    }

    /// Computes the citation for `q`, reusing a cached plan when one
    /// matches the query's signature (exactly, or modulo λ-parameter
    /// constants when the registry permits).
    pub fn cite(&self, q: &ConjunctiveQuery) -> Result<CitedAnswer, CiteError> {
        self.cite_spanned(q, &mut SpanSet::disabled())
    }

    /// [`cite`](Self::cite) with per-stage tracing spans: records
    /// `plan_lookup`, `rewrite` (on a plan-cache miss only) and `eval`
    /// into `spans`. With a disabled span set this **is** `cite` — the
    /// timers skip their clock reads, so the un-instrumented path pays
    /// only a branch.
    pub fn cite_spanned(
        &self,
        q: &ConjunctiveQuery,
        spans: &mut SpanSet,
    ) -> Result<CitedAnswer, CiteError> {
        let (plan, hit, shard) = self.plan_for_spanned(q, spans)?;
        let stats = if hit {
            Self::cached_stats(&plan, shard)
        } else {
            RewriteStats {
                plan_cache_shard: shard,
                ..plan.stats
            }
        };
        let eval = SpanTimer::start(spans.enabled());
        let cited = self.cite_with_plan(q, &plan, stats);
        spans.record_micros("eval", eval.elapsed_micros());
        cited
    }

    /// Runs the rewriting search for `q` once (or reuses a cached plan)
    /// and returns a handle that re-cites without ever searching again.
    ///
    /// Preparation fails fast with [`CiteError::NoRewriting`] when the
    /// query is not coverable, rather than deferring the error to
    /// execution time.
    pub fn prepare(&self, q: &ConjunctiveQuery) -> Result<PreparedCitation, CiteError> {
        let (plan, _, shard) = self.plan_for(q)?;
        if plan.rewritings.is_empty() {
            return Err(CiteError::NoRewriting {
                query: q.to_string(),
            });
        }
        Ok(PreparedCitation {
            service: self.clone(),
            query: q.clone(),
            plan,
            shard,
        })
    }

    /// Cites every query in `queries`, sharing the plan cache and the
    /// materialized views across the whole batch. Per-query failures do
    /// not abort the batch.
    pub fn cite_batch(&self, queries: &[ConjunctiveQuery]) -> Vec<Result<CitedAnswer, CiteError>> {
        queries.iter().map(|q| self.cite(q)).collect()
    }
}

// ---------------------------------------------------------------------------
// Prepared citations
// ---------------------------------------------------------------------------

/// A query whose rewriting plan has been computed once and pinned.
///
/// [`execute`](Self::execute) skips the rewriting search entirely — its
/// [`CitedAnswer::rewrite_stats`] always report `plan_cache_hits == 1` and
/// zero search effort. The handle snapshots the service's database; data
/// updates happen through
/// [`IncrementalEngine`](crate::evolve::IncrementalEngine), which
/// re-prepares cheaply thanks to the shared plan cache.
#[derive(Clone, Debug)]
pub struct PreparedCitation {
    service: CitationService,
    query: ConjunctiveQuery,
    plan: Arc<RewritePlan>,
    /// Plan-cache shard the plan lives in (reported in execute() stats).
    shard: usize,
}

impl PreparedCitation {
    /// The prepared query.
    pub fn query(&self) -> &ConjunctiveQuery {
        &self.query
    }

    /// The pinned rewrite plan.
    pub fn plan(&self) -> &RewritePlan {
        &self.plan
    }

    /// Evaluate + annotate against the service's snapshot, with zero
    /// rewriting-search work.
    pub fn execute(&self) -> Result<CitedAnswer, CiteError> {
        self.service.cite_with_plan(
            &self.query,
            &self.plan,
            CitationService::cached_stats(&self.plan, self.shard),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper;
    use crate::policy::RewritePolicy;
    use citesys_cq::parse_query;

    // Compile-time assertions: the service types are thread-safe and the
    // service is cheap to share.
    const _: fn() = || {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CitationService>();
        assert_send_sync::<PreparedCitation>();
        assert_send_sync::<PlanCache>();
    };

    fn service(mode: CitationMode) -> CitationService {
        CitationService::builder()
            .database(paper::paper_database())
            .registry(paper::paper_registry())
            .mode(mode)
            .build()
            .unwrap()
    }

    #[test]
    fn builder_requires_database_and_registry() {
        let e = CitationService::builder().build().unwrap_err();
        assert!(matches!(e, CiteError::ServiceConfig { .. }), "{e}");
        let e = CitationService::builder()
            .database(paper::paper_database())
            .build()
            .unwrap_err();
        assert!(e.to_string().contains("registry"), "{e}");
    }

    #[test]
    fn builder_accepts_arc_and_owned() {
        let db = std::sync::Arc::new(paper::paper_database());
        let svc = CitationService::builder()
            .database(std::sync::Arc::clone(&db))
            .registry(paper::paper_registry())
            .policies(PolicySet {
                rewritings: RewritePolicy::Union,
                ..Default::default()
            })
            .allow_partial(true)
            .plan_cache_capacity(8)
            .build()
            .unwrap();
        assert!(svc.options().allow_partial);
    }

    #[test]
    fn service_matches_engine_results() {
        #[allow(deprecated)]
        let expected = crate::engine::CitationEngine::new(
            &paper::paper_database(),
            &paper::paper_registry(),
            EngineOptions {
                mode: CitationMode::Formal,
                ..Default::default()
            },
        )
        .cite(&paper::paper_query())
        .unwrap();
        let svc = service(CitationMode::Formal);
        let got = svc.cite(&paper::paper_query()).unwrap();
        assert_eq!(got.answer, expected.answer);
        assert_eq!(got.tuples[0].atoms, expected.tuples[0].atoms);
        assert_eq!(got.tuples[0].expr(), expected.tuples[0].expr());
    }

    #[test]
    fn repeat_cite_hits_plan_cache_with_zero_search() {
        let svc = service(CitationMode::Formal);
        let first = svc.cite(&paper::paper_query()).unwrap();
        assert_eq!(first.rewrite_stats.plan_cache_hits, 0);
        assert!(first.rewrite_stats.search_effort() > 0);
        let second = svc.cite(&paper::paper_query()).unwrap();
        assert_eq!(second.rewrite_stats.plan_cache_hits, 1);
        assert_eq!(second.rewrite_stats.search_effort(), 0);
        assert_eq!(second.rewrite_stats.rewritings_found, 2);
        assert_eq!(first.tuples[0].atoms, second.tuples[0].atoms);
        let stats = svc.plan_cache_stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn prepared_execution_never_searches() {
        let svc = service(CitationMode::Formal);
        let prepared = svc.prepare(&paper::paper_query()).unwrap();
        assert_eq!(prepared.plan().rewritings.len(), 2);
        for _ in 0..3 {
            let cited = prepared.execute().unwrap();
            assert_eq!(cited.rewrite_stats.plan_cache_hits, 1);
            assert_eq!(cited.rewrite_stats.search_effort(), 0);
            assert_eq!(cited.answer.len(), 1);
        }
    }

    #[test]
    fn lambda_parameterized_repeats_share_one_plan() {
        let svc = service(CitationMode::Formal);
        // The same query shape at three different λ-constants: one search.
        for fid in [11, 12, 13] {
            let q = parse_query(&format!(
                "Q(N) :- Family({fid}, N, D), FamilyIntro({fid}, T)"
            ))
            .unwrap();
            let cited = svc.cite(&q).unwrap();
            if fid == 11 {
                assert_eq!(cited.rewrite_stats.plan_cache_hits, 0);
                let expr = cited.tuples[0].expr().to_string();
                assert!(expr.contains("CV1(11)"), "{expr}");
            } else {
                assert_eq!(cited.rewrite_stats.plan_cache_hits, 1, "fid {fid} missed");
                assert_eq!(cited.rewrite_stats.search_effort(), 0);
            }
            if fid == 12 {
                // The transferred plan must be *instantiated* at 12, not 11.
                let expr = cited.tuples[0].expr().to_string();
                assert!(expr.contains("CV1(12)"), "{expr}");
                assert!(!expr.contains("CV1(11)"), "{expr}");
            }
        }
        let stats = svc.plan_cache_stats();
        assert_eq!((stats.hits, stats.misses), (2, 1));
        assert_eq!(svc.plan_cache().len(), 1, "one signature for all three");
    }

    #[test]
    fn distinct_constant_patterns_get_distinct_plans() {
        let svc = service(CitationMode::Formal);
        // Same shape but different equality pattern between the constants:
        // (11, 11) collapses to one placeholder, (11, 12) keeps two.
        let same = parse_query("Q(N) :- Family(11, N, D), FamilyIntro(11, T)").unwrap();
        let diff = parse_query("Q(N) :- Family(11, N, D), FamilyIntro(12, T)").unwrap();
        svc.cite(&same).unwrap();
        let second = svc.cite(&diff).unwrap();
        assert_eq!(
            second.rewrite_stats.plan_cache_hits, 0,
            "must not share a plan"
        );
        assert_eq!(svc.plan_cache().len(), 2);
    }

    #[test]
    fn alpha_renamed_query_shares_plan() {
        let svc = service(CitationMode::Formal);
        svc.cite(&paper::paper_query()).unwrap();
        let renamed = parse_query("Q(A) :- Family(B, A, C), FamilyIntro(B, E)").unwrap();
        let cited = svc.cite(&renamed).unwrap();
        assert_eq!(cited.rewrite_stats.plan_cache_hits, 1);
    }

    #[test]
    fn uncoverable_query_fails_and_caches_the_failure() {
        let svc = service(CitationMode::CostPruned);
        let q = parse_query("Q(P) :- Committee(F, P)").unwrap();
        for _ in 0..2 {
            let e = svc.cite(&q).unwrap_err();
            assert!(matches!(e, CiteError::NoRewriting { .. }));
        }
        // Second failure came from the cached empty plan.
        assert_eq!(svc.plan_cache_stats().hits, 1);
        assert!(matches!(
            svc.prepare(&q),
            Err(CiteError::NoRewriting { .. })
        ));
    }

    #[test]
    fn cite_batch_reuses_plans_and_views() {
        let svc = service(CitationMode::Formal);
        let queries: Vec<ConjunctiveQuery> = [11, 12, 11, 13]
            .iter()
            .map(|fid| {
                parse_query(&format!(
                    "Q(N) :- Family({fid}, N, D), FamilyIntro({fid}, T)"
                ))
                .unwrap()
            })
            .collect();
        let results = svc.cite_batch(&queries);
        assert_eq!(results.len(), 4);
        for r in &results {
            assert!(r.is_ok());
        }
        let stats = svc.plan_cache_stats();
        assert_eq!(stats.misses, 1, "one search for the whole batch");
        assert_eq!(stats.hits, 3);
    }

    #[test]
    fn batch_failures_do_not_abort() {
        let svc = service(CitationMode::Formal);
        let qs = vec![
            paper::paper_query(),
            parse_query("Q(P) :- Committee(F, P)").unwrap(),
            paper::paper_query(),
        ];
        let results = svc.cite_batch(&qs);
        assert!(results[0].is_ok());
        assert!(results[1].is_err());
        assert!(results[2].is_ok());
    }

    #[test]
    fn plan_cache_lru_evicts() {
        // One shard: the exact single-LRU semantics.
        let cache = PlanCache::with_shards(2, 1);
        assert_eq!(cache.shard_count(), 1);
        cache.insert("a".into(), vec![], Arc::new(RewritePlan::empty()));
        cache.insert("b".into(), vec![], Arc::new(RewritePlan::empty()));
        assert!(cache.get("a", &[]).is_some()); // refresh a
        cache.insert("c".into(), vec![], Arc::new(RewritePlan::empty()));
        assert_eq!(cache.len(), 2);
        assert!(cache.get("b", &[]).is_none(), "b was LRU");
        assert!(cache.get("a", &[]).is_some());
        assert!(cache.get("c", &[]).is_some());
        assert_eq!(cache.stats().evictions, 1);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats().invalidations, 2);
    }

    #[test]
    fn plan_cache_shards_stripe_entries_and_counters() {
        let cache = PlanCache::new(DEFAULT_PLAN_CACHE_CAPACITY);
        assert_eq!(cache.shard_count(), DEFAULT_PLAN_CACHE_SHARDS);
        // Spread enough distinct signatures that at least two shards see
        // traffic (probabilistically certain with 64 keys over 8 shards,
        // and deterministic for a fixed hasher).
        for i in 0..64 {
            let sig = format!("sig-{i}");
            assert!(cache.get(&sig, &[]).is_none());
            cache.insert(sig, vec![], Arc::new(RewritePlan::empty()));
        }
        assert_eq!(cache.len(), 64);
        let per_shard = cache.shard_stats();
        assert_eq!(per_shard.len(), DEFAULT_PLAN_CACHE_SHARDS);
        let busy = per_shard.iter().filter(|s| s.misses > 0).count();
        assert!(busy >= 2, "expected striping, got {per_shard:?}");
        // Aggregate equals the shard sum, and lookups land on the shard
        // shard_of reports.
        let total: u64 = per_shard.iter().map(|s| s.misses).sum();
        assert_eq!(cache.stats().misses, total);
        let shard = cache.shard_of("sig-0");
        let hits_before = cache.shard_stats()[shard].hits;
        assert!(cache.get("sig-0", &[]).is_some());
        assert_eq!(cache.shard_stats()[shard].hits, hits_before + 1);
    }

    #[test]
    fn plan_cache_capacity_clamps_shards() {
        let cache = PlanCache::with_shards(2, 8);
        assert_eq!(cache.shard_count(), 2, "shards clamped to capacity");
        let cache = PlanCache::with_shards(0, 0);
        assert_eq!(cache.shard_count(), 1);
        assert_eq!(cache.capacity(), 1);
    }

    #[test]
    fn plan_cache_capacity_reports_effective_total() {
        // 10 requested over 8 shards rounds up to 2 per shard: the cache
        // can genuinely hold 16, and capacity() must say so — len() may
        // never exceed capacity().
        let cache = PlanCache::with_shards(10, 8);
        assert_eq!(cache.shard_count(), 8);
        assert_eq!(cache.capacity(), 16);
        for i in 0..200 {
            cache.insert(format!("sig-{i}"), vec![], Arc::new(RewritePlan::empty()));
            assert!(
                cache.len() <= cache.capacity(),
                "len {} exceeded capacity {}",
                cache.len(),
                cache.capacity()
            );
        }
        // An evenly divisible request is exact.
        assert_eq!(PlanCache::with_shards(16, 8).capacity(), 16);
        // One shard preserves the requested capacity exactly.
        assert_eq!(PlanCache::with_shards(10, 1).capacity(), 10);
    }

    #[test]
    fn plan_cache_text_crlf_round_trip() {
        // A plans file edited on Windows: CRLF endings (and a lost final
        // newline) must neither fail to load nor corrupt the stored
        // signatures — the reloaded cache has to keep serving hits.
        let svc = service(CitationMode::Formal);
        svc.cite(&paper::paper_query()).unwrap();
        let q11 = parse_query("Q(N) :- Family(11, N, D), FamilyIntro(11, T)").unwrap();
        svc.cite(&q11).unwrap();
        let crlf = svc.plan_cache().to_text().replace('\n', "\r\n");
        let crlf = crlf.trim_end_matches('\n').to_string(); // EOF without newline

        let warm = service(CitationMode::Formal);
        assert_eq!(warm.plan_cache().load_text(&crlf).unwrap(), 2);
        let cited = warm.cite(&paper::paper_query()).unwrap();
        assert_eq!(
            cited.rewrite_stats.plan_cache_hits, 1,
            "signature survived CRLF round-trip"
        );
        assert_eq!(cited.rewrite_stats.search_effort(), 0);
        // Trailing blank CRLF lines are tolerated too.
        let trailing = format!("{crlf}\r\n\r\n\r\n");
        let again = service(CitationMode::Formal);
        assert_eq!(again.plan_cache().load_text(&trailing).unwrap(), 2);
    }

    #[test]
    fn plan_cache_text_round_trip() {
        let svc = service(CitationMode::Formal);
        svc.cite(&paper::paper_query()).unwrap();
        let q11 = parse_query("Q(N) :- Family(11, N, D), FamilyIntro(11, T)").unwrap();
        svc.cite(&q11).unwrap();
        let text = svc.plan_cache().to_text();

        // A fresh service loads the file and cites with zero search work.
        let warm = service(CitationMode::Formal);
        let loaded = warm.plan_cache().load_text(&text).unwrap();
        assert_eq!(loaded, 2);
        assert_eq!(warm.plan_cache().len(), 2);
        let cited = warm.cite(&paper::paper_query()).unwrap();
        assert_eq!(cited.rewrite_stats.plan_cache_hits, 1, "loaded plan hit");
        assert_eq!(cited.rewrite_stats.search_effort(), 0);
        // λ-transfer still works through a loaded plan (constants survive).
        let q12 = parse_query("Q(N) :- Family(12, N, D), FamilyIntro(12, T)").unwrap();
        let cited = warm.cite(&q12).unwrap();
        assert_eq!(cited.rewrite_stats.plan_cache_hits, 1);
        let expr = cited.tuples[0].expr().to_string();
        assert!(expr.contains("CV1(12)"), "{expr}");
    }

    #[test]
    fn plan_cache_text_rejects_malformed() {
        let cache = PlanCache::new(4);
        assert!(cache.load_text("").is_err());
        assert!(cache.load_text("bogus header\n").is_err());
        assert!(cache
            .load_text("citesys-plan-cache v1\nentry\nno sig\n")
            .is_err());
        assert!(cache
            .load_text("citesys-plan-cache v1\nentry\nsig s\nconst q 1\nend\n")
            .is_err());
        assert!(
            cache
                .load_text("citesys-plan-cache v1\nentry\nsig s\ncitesys-rewrite-plan v1\n")
                .is_err(),
            "unterminated entry"
        );
        // Untouched on failure paths that never reached insert.
        assert!(cache.is_empty());
    }

    #[test]
    fn view_constants_disable_plan_transfer() {
        // A registry whose view pins a constant: plans must not transfer
        // across constants (the rewriting genuinely depends on the value).
        let db = paper::paper_database();
        let mut reg = crate::registry::CitationRegistry::new();
        reg.add(
            crate::registry::CitationView::new(
                parse_query("V11(N) :- Family(11, N, D)").unwrap(),
                vec![crate::snippet::CitationQuery::new(
                    parse_query("CV11(F) :- Family(F, N, D)").unwrap(),
                )],
                crate::snippet::CitationFunction::new(),
            )
            .unwrap(),
        )
        .unwrap();
        let svc = CitationService::builder()
            .database(db)
            .registry(reg)
            .mode(CitationMode::Formal)
            .build()
            .unwrap();
        assert!(!svc.generalize_constants);
        let q11 = parse_query("Q(N) :- Family(11, N, D)").unwrap();
        let q13 = parse_query("Q(N) :- Family(13, N, D)").unwrap();
        assert!(svc.cite(&q11).is_ok(), "covered by the pinned view");
        // A different constant is NOT covered — with plan transfer this
        // would wrongly reuse q11's plan.
        assert!(matches!(svc.cite(&q13), Err(CiteError::NoRewriting { .. })));
    }

    #[test]
    fn concurrent_cites_share_caches() {
        let svc = service(CitationMode::Formal);
        svc.cite(&paper::paper_query()).unwrap(); // warm
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let svc = svc.clone();
                std::thread::spawn(move || {
                    let cited = svc.cite(&paper::paper_query()).unwrap();
                    assert_eq!(cited.rewrite_stats.plan_cache_hits, 1);
                    cited.tuples[0].atoms.len()
                })
            })
            .collect();
        for t in threads {
            assert_eq!(t.join().unwrap(), 2);
        }
        assert_eq!(svc.plan_cache_stats().hits, 4);
    }

    #[test]
    fn with_database_keeps_plans_drops_views() {
        let svc = service(CitationMode::Formal);
        svc.cite(&paper::paper_query()).unwrap();
        // New snapshot with one more intro: Dopamine becomes visible.
        let mut db2 = paper::paper_database();
        db2.insert("FamilyIntro", citesys_storage::tuple![13, "3rd"])
            .unwrap();
        let svc2 = svc.with_database(db2);
        let cited = svc2.cite(&paper::paper_query()).unwrap();
        assert_eq!(
            cited.rewrite_stats.plan_cache_hits, 1,
            "plan survived the swap"
        );
        assert_eq!(cited.answer.len(), 2, "fresh snapshot data is visible");
    }

    #[test]
    fn signature_modulo_constants() {
        let a = parse_query("Q(N) :- Family(11, N, D)").unwrap();
        let b = parse_query("Q(N) :- Family(12, N, D)").unwrap();
        let c = parse_query("Q(N) :- Family('x', N, D)").unwrap();
        let (sa, ca) = plan_signature(&a, true);
        let (sb, cb) = plan_signature(&b, true);
        let (sc, _) = plan_signature(&c, true);
        assert_eq!(sa, sb, "same shape, same signature");
        assert_ne!(ca, cb, "different constant vectors");
        assert_ne!(sa, sc, "type-distinct constants get distinct signatures");
        let (ea, _) = plan_signature(&a, false);
        let (eb, _) = plan_signature(&b, false);
        assert_ne!(ea, eb, "exact mode embeds the constants");
    }
}

//! The materialized-view cache: cross-query, cross-update reuse of
//! citation-view materializations.
//!
//! Rewritings are queries over *view* predicates, so before evaluating one
//! the service materializes the needed views into a scratch database. This
//! module owns that scratch database and keeps it warm in two directions:
//!
//! * **across queries** — a view is materialized once and reused by every
//!   later cite/batch that needs it (the service grows the cache on
//!   demand under a write lock);
//! * **across data updates** — instead of dropping the whole cache on a
//!   snapshot swap, a single-tuple insert/delete is carried into the
//!   materializations by the semi-naive delta rules of
//!   [`citesys_storage::delta`]. Views whose bodies do not mention the
//!   updated relation are kept verbatim; affected views get delta rows
//!   applied; only failures (or registry changes, which alter view
//!   *definitions*) fall back to dropping a view for lazy recomputation.
//!
//! Updates are staged in two phases because deletion deltas need the
//! database **before** the change while insertion deltas need it **after**:
//! [`CitationService::stage_update`](crate::CitationService::stage_update)
//! captures the pre-update state as a [`PendingViewDelta`], the caller
//! mutates the base database, and
//! [`CitationService::with_database_delta`](crate::CitationService::with_database_delta)
//! finishes the job. The staged snapshot also gives update isolation:
//! services handed out before the update keep their own (old) cache, so a
//! cite racing an update always sees one consistent snapshot pairing.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use citesys_storage::{delta, Database, Tuple};
use parking_lot::{RwLock, RwLockReadGuard, RwLockWriteGuard};

use crate::registry::CitationRegistry;

/// Which kind of single-tuple data update a staged view delta carries.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DeltaOp {
    /// A tuple was inserted into a base relation.
    Insert,
    /// A tuple was deleted from a base relation.
    Delete,
}

/// Counter snapshot for a service's materialized-view cache. Counters are
/// carried across delta-maintained snapshot swaps (successor caches share
/// them), so they describe the whole update lineage, not one snapshot.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ViewCacheStats {
    /// Views materialized from scratch (first demand, or re-demand after a
    /// drop).
    pub materializations: u64,
    /// Views carried across a data update by applying insert/delete delta
    /// rows.
    pub deltas_applied: u64,
    /// Views carried across a data update verbatim — the update could not
    /// affect them (their bodies do not mention the updated relation).
    pub untouched: u64,
    /// Views dropped for lazy recomputation because delta maintenance was
    /// not applicable (e.g. a delta evaluation failed).
    pub recomputes: u64,
    /// Whole-cache drops: non-delta snapshot swaps and registry/schema
    /// changes, which invalidate every materialization at once.
    pub drops: u64,
}

/// Shared, lock-free counters behind [`ViewCacheStats`].
#[derive(Debug, Default)]
struct Counters {
    materializations: AtomicU64,
    deltas_applied: AtomicU64,
    untouched: AtomicU64,
    recomputes: AtomicU64,
    drops: AtomicU64,
}

/// The scratch database of materialized citation views a
/// [`CitationService`](crate::CitationService) shares across clones.
///
/// Internally synchronized: reads (evaluating rewritings over materialized
/// views) take a shared lock; growing the cache or applying an update
/// delta takes an exclusive one.
#[derive(Debug, Default)]
pub struct ViewCache {
    db: RwLock<Database>,
    counters: Arc<Counters>,
}

impl ViewCache {
    /// An empty cache with fresh counters.
    pub fn new() -> Self {
        ViewCache::default()
    }

    /// An empty cache that keeps accumulating into this cache's counters —
    /// used when a snapshot swap must drop all materializations (non-delta
    /// [`with_database`](crate::CitationService::with_database)).
    pub(crate) fn fresh_linked(&self) -> ViewCache {
        self.counters.drops.fetch_add(1, Ordering::Relaxed);
        ViewCache {
            db: RwLock::new(Database::new()),
            counters: Arc::clone(&self.counters),
        }
    }

    /// Shared read access to the materialized views.
    pub(crate) fn read(&self) -> RwLockReadGuard<'_, Database> {
        self.db.read()
    }

    /// Exclusive access for on-demand materialization.
    pub(crate) fn write(&self) -> RwLockWriteGuard<'_, Database> {
        self.db.write()
    }

    /// Records `n` from-scratch view materializations.
    pub(crate) fn note_materialized(&self, n: usize) {
        if n > 0 {
            self.counters
                .materializations
                .fetch_add(n as u64, Ordering::Relaxed);
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> ViewCacheStats {
        ViewCacheStats {
            materializations: self.counters.materializations.load(Ordering::Relaxed),
            deltas_applied: self.counters.deltas_applied.load(Ordering::Relaxed),
            untouched: self.counters.untouched.load(Ordering::Relaxed),
            recomputes: self.counters.recomputes.load(Ordering::Relaxed),
            drops: self.counters.drops.load(Ordering::Relaxed),
        }
    }

    /// Phase one of a delta-maintained snapshot swap: clones the current
    /// materializations and — for deletions — computes the at-risk view
    /// rows over `db_before` (they are unrecoverable once the tuple is
    /// gone). A view whose candidate computation fails is excluded from
    /// the clone and will be lazily rematerialized.
    pub(crate) fn stage(
        &self,
        registry: &CitationRegistry,
        db_before: &Database,
        rel: &str,
        tuple: &Tuple,
        op: DeltaOp,
    ) -> PendingViewDelta {
        let mut views = self.db.read().clone();
        let mut candidates = Vec::new();
        let names: Vec<String> = views
            .relation_names()
            .iter()
            .map(|s| s.to_string())
            .collect();
        for name in names {
            let Some(cv) = registry.get(&name) else {
                // Not a registered view (cannot happen through the service;
                // defensive): drop it rather than guess at maintenance.
                let _ = views_remove(&mut views, &name);
                self.counters.recomputes.fetch_add(1, Ordering::Relaxed);
                continue;
            };
            let affected = cv.view.body.iter().any(|a| a.predicate.as_str() == rel);
            if !affected || op != DeltaOp::Delete {
                continue;
            }
            match delta::delete_candidates(db_before, &cv.view, rel, tuple) {
                Ok(rows) => candidates.push((name, rows)),
                Err(_) => {
                    let _ = views_remove(&mut views, &name);
                    self.counters.recomputes.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        PendingViewDelta {
            rel: rel.to_string(),
            tuple: tuple.clone(),
            op,
            views,
            candidates,
            counters: Arc::clone(&self.counters),
        }
    }
}

/// Removes a relation from a scratch database by rebuilding without it
/// (the catalog has no remove primitive; view caches are small).
fn views_remove(views: &mut Database, name: &str) -> bool {
    if !views.has_relation(name) {
        return false;
    }
    let mut rebuilt = Database::new();
    for (n, rel) in views.relations() {
        if n.as_str() == name {
            continue;
        }
        rebuilt
            .create_relation(rel.schema().clone())
            .expect("names unique in source catalog");
        for t in rel.scan() {
            rebuilt
                .insert(n.as_str(), t.clone())
                .expect("tuples valid in source relation");
        }
    }
    *views = rebuilt;
    true
}

/// A staged view-cache update: the pre-update materializations plus
/// whatever had to be computed before the base database changed. Finish it
/// with
/// [`CitationService::with_database_delta`](crate::CitationService::with_database_delta).
#[derive(Debug)]
pub struct PendingViewDelta {
    rel: String,
    tuple: Tuple,
    op: DeltaOp,
    views: Database,
    /// For deletions: per-view rows that may have lost support.
    candidates: Vec<(String, Vec<Tuple>)>,
    counters: Arc<Counters>,
}

impl PendingViewDelta {
    /// Phase two: applies the delta against the post-update database and
    /// returns the successor cache (sharing the original's counters).
    pub(crate) fn apply(mut self, registry: &CitationRegistry, db_after: &Database) -> ViewCache {
        let names: Vec<String> = self
            .views
            .relation_names()
            .iter()
            .map(|s| s.to_string())
            .collect();
        for name in names {
            let Some(cv) = registry.get(&name) else {
                views_remove(&mut self.views, &name);
                self.counters.recomputes.fetch_add(1, Ordering::Relaxed);
                continue;
            };
            let affected = cv
                .view
                .body
                .iter()
                .any(|a| a.predicate.as_str() == self.rel);
            if !affected {
                self.counters.untouched.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            let ok = match self.op {
                DeltaOp::Insert => apply_insert(
                    &mut self.views,
                    db_after,
                    &cv.view,
                    &name,
                    &self.rel,
                    &self.tuple,
                ),
                DeltaOp::Delete => {
                    let rows = self
                        .candidates
                        .iter()
                        .find(|(n, _)| n == &name)
                        .map(|(_, rows)| rows.as_slice())
                        .unwrap_or(&[]);
                    apply_delete(&mut self.views, db_after, &cv.view, &name, rows)
                }
            };
            if ok {
                self.counters.deltas_applied.fetch_add(1, Ordering::Relaxed);
            } else {
                views_remove(&mut self.views, &name);
                self.counters.recomputes.fetch_add(1, Ordering::Relaxed);
            }
        }
        ViewCache {
            db: RwLock::new(self.views),
            counters: self.counters,
        }
    }
}

/// Inserts the delta rows for one view; false on any evaluation/storage
/// failure (the caller then drops the view for lazy recomputation).
fn apply_insert(
    views: &mut Database,
    db_after: &Database,
    view: &citesys_cq::ConjunctiveQuery,
    name: &str,
    rel: &str,
    tuple: &Tuple,
) -> bool {
    match delta::insert_delta(db_after, view, rel, tuple) {
        Ok(rows) => rows.into_iter().all(|row| views.insert(name, row).is_ok()),
        Err(_) => false,
    }
}

/// Re-checks each at-risk row and removes the unsupported ones; false on
/// any evaluation/storage failure.
fn apply_delete(
    views: &mut Database,
    db_after: &Database,
    view: &citesys_cq::ConjunctiveQuery,
    name: &str,
    candidates: &[Tuple],
) -> bool {
    for row in candidates {
        match delta::still_derivable(db_after, view, row) {
            Ok(true) => {}
            Ok(false) => {
                if views.delete(name, row).is_err() {
                    return false;
                }
            }
            Err(_) => return false,
        }
    }
    true
}

//! The materialized-view cache: cross-query, cross-update reuse of
//! citation-view materializations.
//!
//! Rewritings are queries over *view* predicates, so before evaluating one
//! the service materializes the needed views into a scratch database. This
//! module owns that scratch database and keeps it warm in two directions:
//!
//! * **across queries** — a view is materialized once and reused by every
//!   later cite/batch that needs it (the service grows the cache on
//!   demand; see the publication scheme below);
//! * **across data updates** — instead of dropping the whole cache on a
//!   snapshot swap, an insert/delete **changeset** is carried into the
//!   materializations by the semi-naive delta rules of
//!   [`citesys_storage::delta`]. Views whose bodies do not mention any
//!   changed relation are kept verbatim; affected views get delta rows
//!   applied; only failures (or registry changes, which alter view
//!   *definitions*) fall back to dropping a view for lazy recomputation.
//!
//! **Lock-free reads.** The materializations are a *published snapshot*:
//! an [`arc_swap::ArcSwap`] pointer to an immutable `Database`. A reader
//! ([`CitationService::cite`](crate::CitationService::cite) evaluating a
//! rewriting) performs one atomic pointer load — no lock, no
//! reference-count traffic — and keeps citing the snapshot it loaded even
//! if a writer publishes a successor mid-evaluation. Only writers pay:
//! growing the cache clones the current snapshot, materializes into the
//! clone, and publishes it (serialized by a writer gate; a publication
//! that fails mid-materialization is simply not published, so readers
//! never observe a half-built view).
//!
//! Updates are staged in two phases because deletion deltas need the
//! database **before** the change while insertion deltas need it **after**:
//! [`CitationService::stage_batch`](crate::CitationService::stage_batch)
//! (or single-tuple
//! [`stage_update`](crate::CitationService::stage_update)) normalizes the
//! changeset against the pre-update state into its net effect and captures
//! the at-risk view rows, the caller mutates the base database, and
//! [`CitationService::with_database_delta`](crate::CitationService::with_database_delta)
//! finishes the job against the single post-batch database — one snapshot
//! swap for the whole transaction. The staged snapshot also gives update
//! isolation: services handed out before the update keep their own (old)
//! cache, so a cite racing an update always sees one consistent snapshot
//! pairing.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use arc_swap::ArcSwap;
use citesys_cq::Symbol;
use citesys_storage::{delta, Changeset, Database, NetChanges, Tuple};
use parking_lot::Mutex;

use crate::error::CiteError;
use crate::registry::CitationRegistry;

/// Which kind of single-tuple data update a staged view delta carries
/// (the single-tuple convenience surface over [`Changeset`] staging).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DeltaOp {
    /// A tuple was inserted into a base relation.
    Insert,
    /// A tuple was deleted from a base relation.
    Delete,
}

/// Counter snapshot for a service's materialized-view cache. Counters are
/// carried across delta-maintained snapshot swaps (successor caches share
/// them), so they describe the whole update lineage, not one snapshot.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ViewCacheStats {
    /// Views materialized from scratch (first demand, or re-demand after a
    /// drop).
    pub materializations: u64,
    /// Views carried across a data update by applying insert/delete delta
    /// rows (counted once per view per batch, however many tuples the
    /// batch changed).
    pub deltas_applied: u64,
    /// Views carried across a data update verbatim — the update could not
    /// affect them (their bodies do not mention any net-changed relation;
    /// a batch that nets to nothing counts every view here).
    pub untouched: u64,
    /// Views dropped for lazy recomputation because delta maintenance was
    /// not applicable (e.g. a delta evaluation failed).
    pub recomputes: u64,
    /// Whole-cache drops: non-delta snapshot swaps and registry/schema
    /// changes, which invalidate every materialization at once.
    pub drops: u64,
}

/// Shared, lock-free counters behind [`ViewCacheStats`].
#[derive(Debug, Default)]
struct Counters {
    materializations: AtomicU64,
    deltas_applied: AtomicU64,
    untouched: AtomicU64,
    recomputes: AtomicU64,
    drops: AtomicU64,
}

/// The scratch database of materialized citation views a
/// [`CitationService`](crate::CitationService) shares across clones.
///
/// Readers take **no lock**: the materializations live behind a published
/// [`ArcSwap`] snapshot pointer, and a read is one atomic load. Growing
/// the cache copies-on-write and republishes under a writer gate (see
/// the module docs).
#[derive(Debug)]
pub struct ViewCache {
    /// The published snapshot of materialized views. Each publication is
    /// retained until the cache drops (the arc-swap shim's retire-list),
    /// which is bounded: a cache republishes at most once per registered
    /// view, and every data update produces a *successor* cache.
    published: ArcSwap<Database>,
    /// Serializes writers so concurrent on-demand materializations cannot
    /// publish over each other.
    write_gate: Mutex<()>,
    counters: Arc<Counters>,
}

impl Default for ViewCache {
    fn default() -> Self {
        ViewCache {
            published: ArcSwap::from_pointee(Database::new()),
            write_gate: Mutex::new(()),
            counters: Arc::default(),
        }
    }
}

impl ViewCache {
    /// An empty cache with fresh counters.
    pub fn new() -> Self {
        ViewCache::default()
    }

    /// A cache pre-seeded with already-materialized views (checkpoint
    /// recovery): the seeded views are published immediately and count
    /// as neither materializations nor deltas — the work was paid in a
    /// previous process.
    pub(crate) fn with_published(views: Database) -> Self {
        ViewCache {
            published: ArcSwap::from_pointee(views),
            write_gate: Mutex::new(()),
            counters: Arc::default(),
        }
    }

    /// An empty cache that keeps accumulating into this cache's counters —
    /// used when a snapshot swap must drop all materializations (non-delta
    /// [`with_database`](crate::CitationService::with_database)).
    pub(crate) fn fresh_linked(&self) -> ViewCache {
        self.counters.drops.fetch_add(1, Ordering::Relaxed);
        ViewCache {
            published: ArcSwap::from_pointee(Database::new()),
            write_gate: Mutex::new(()),
            counters: Arc::clone(&self.counters),
        }
    }

    /// Lock-free read access to the published materializations: one
    /// atomic pointer load. The guard keeps observing the snapshot it
    /// loaded even if a writer republishes concurrently.
    pub(crate) fn read(&self) -> arc_swap::Guard<'_, Database> {
        self.published.load()
    }

    /// Materializes the views in `needed` that the published snapshot is
    /// missing, copy-on-write, and publishes the grown snapshot. Readers
    /// are never blocked and never see a partially materialized view: on
    /// error nothing is published. Returns how many views were newly
    /// materialized (0 when a racing writer already provided them).
    pub(crate) fn materialize_missing(
        &self,
        base: &Database,
        registry: &CitationRegistry,
        needed: &BTreeSet<&Symbol>,
    ) -> Result<usize, CiteError> {
        let _gate = self.write_gate.lock();
        let current = self.published.load();
        let missing = needed
            .iter()
            .filter(|n| !current.has_relation(n.as_str()))
            .count();
        if missing == 0 {
            return Ok(0);
        }
        let mut next = Database::clone(&current);
        crate::engine::materialize_views_into(base, registry, needed, &mut next)?;
        self.published.store(Arc::new(next));
        self.note_materialized(missing);
        Ok(missing)
    }

    /// Records `n` from-scratch view materializations.
    pub(crate) fn note_materialized(&self, n: usize) {
        if n > 0 {
            self.counters
                .materializations
                .fetch_add(n as u64, Ordering::Relaxed);
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> ViewCacheStats {
        ViewCacheStats {
            materializations: self.counters.materializations.load(Ordering::Relaxed),
            deltas_applied: self.counters.deltas_applied.load(Ordering::Relaxed),
            untouched: self.counters.untouched.load(Ordering::Relaxed),
            recomputes: self.counters.recomputes.load(Ordering::Relaxed),
            drops: self.counters.drops.load(Ordering::Relaxed),
        }
    }

    /// Phase one of a delta-maintained snapshot swap for a whole
    /// changeset: normalizes the ops against `db_before` into their net
    /// effect, clones the current materializations, and — for net
    /// deletions — computes the at-risk view rows over `db_before` (they
    /// are unrecoverable once the tuples are gone). A view whose
    /// candidate computation fails is excluded from the clone and will be
    /// lazily rematerialized.
    pub(crate) fn stage_batch(
        &self,
        registry: &CitationRegistry,
        db_before: &Database,
        changes: &Changeset,
    ) -> PendingViewDelta {
        let net = changes.net(db_before);
        let mut views = Database::clone(&self.read());
        let mut candidates = Vec::new();
        let deleted_rels: BTreeSet<&str> =
            net.deletes.iter().map(|(rel, _)| rel.as_str()).collect();
        let names: Vec<String> = views
            .relation_names()
            .iter()
            .map(|s| s.to_string())
            .collect();
        for name in names {
            let Some(cv) = registry.get(&name) else {
                // Not a registered view (cannot happen through the service;
                // defensive): drop it rather than guess at maintenance.
                let _ = views_remove(&mut views, &name);
                self.counters.recomputes.fetch_add(1, Ordering::Relaxed);
                continue;
            };
            let delete_affected = cv
                .view
                .body
                .iter()
                .any(|a| deleted_rels.contains(a.predicate.as_str()));
            if !delete_affected {
                continue;
            }
            match delta::delete_candidates_batch(db_before, &cv.view, &net.deletes) {
                Ok(rows) => candidates.push((name, rows)),
                Err(_) => {
                    let _ = views_remove(&mut views, &name);
                    self.counters.recomputes.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        PendingViewDelta {
            net,
            views,
            candidates,
            counters: Arc::clone(&self.counters),
        }
    }
}

/// Removes a relation from a scratch database by rebuilding without it
/// (the catalog has no remove primitive; view caches are small).
fn views_remove(views: &mut Database, name: &str) -> bool {
    if !views.has_relation(name) {
        return false;
    }
    let mut rebuilt = Database::new();
    for (n, rel) in views.relations() {
        if n.as_str() == name {
            continue;
        }
        rebuilt
            .create_relation(rel.schema().clone())
            .expect("names unique in source catalog");
        for t in rel.scan() {
            rebuilt
                .insert(n.as_str(), t.clone())
                .expect("tuples valid in source relation");
        }
    }
    *views = rebuilt;
    true
}

/// A staged view-cache update: the pre-update materializations, the
/// changeset's net effect, and whatever had to be computed before the
/// base database changed. Finish it with
/// [`CitationService::with_database_delta`](crate::CitationService::with_database_delta) —
/// the whole batch lands in **one** snapshot swap.
#[derive(Debug)]
pub struct PendingViewDelta {
    /// The changeset normalized against the pre-batch database.
    net: NetChanges,
    views: Database,
    /// For net deletions: per-view rows that may have lost support.
    candidates: Vec<(String, Vec<Tuple>)>,
    counters: Arc<Counters>,
}

impl PendingViewDelta {
    /// The net inserted/deleted tuples this staged delta carries (what
    /// the batch actually changes once in-batch cancellations and no-ops
    /// are normalized away).
    pub fn net(&self) -> &NetChanges {
        &self.net
    }

    /// Phase two: applies the whole net delta against the single
    /// post-batch database and returns the successor cache (sharing the
    /// original's counters).
    pub(crate) fn apply(mut self, registry: &CitationRegistry, db_after: &Database) -> ViewCache {
        let changed_rels: BTreeSet<String> = self
            .net
            .relations()
            .into_iter()
            .map(|s| s.to_string())
            .collect();
        let names: Vec<String> = self
            .views
            .relation_names()
            .iter()
            .map(|s| s.to_string())
            .collect();
        for name in names {
            let Some(cv) = registry.get(&name) else {
                views_remove(&mut self.views, &name);
                self.counters.recomputes.fetch_add(1, Ordering::Relaxed);
                continue;
            };
            let affected = cv
                .view
                .body
                .iter()
                .any(|a| changed_rels.contains(a.predicate.as_str()));
            if !affected {
                self.counters.untouched.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            let rows = self
                .candidates
                .iter()
                .find(|(n, _)| n == &name)
                .map(|(_, rows)| rows.as_slice())
                .unwrap_or(&[]);
            if apply_batch(&mut self.views, db_after, &cv.view, &name, &self.net, rows) {
                self.counters.deltas_applied.fetch_add(1, Ordering::Relaxed);
            } else {
                views_remove(&mut self.views, &name);
                self.counters.recomputes.fetch_add(1, Ordering::Relaxed);
            }
        }
        ViewCache {
            published: ArcSwap::from_pointee(self.views),
            write_gate: Mutex::new(()),
            counters: self.counters,
        }
    }
}

/// Carries one view across the batch: re-checks each at-risk row against
/// the post-batch database and removes the unsupported ones, then adds
/// the net-insertion delta rows. False on any evaluation/storage failure
/// (the caller then drops the view for lazy recomputation).
fn apply_batch(
    views: &mut Database,
    db_after: &Database,
    view: &citesys_cq::ConjunctiveQuery,
    name: &str,
    net: &NetChanges,
    candidates: &[Tuple],
) -> bool {
    for row in candidates {
        match delta::still_derivable(db_after, view, row) {
            Ok(true) => {}
            Ok(false) => {
                if views.delete(name, row).is_err() {
                    return false;
                }
            }
            Err(_) => return false,
        }
    }
    match delta::insert_delta_batch(db_after, view, &net.inserts) {
        Ok(rows) => rows.into_iter().all(|row| views.insert(name, row).is_ok()),
        Err(_) => false,
    }
}

//! Append-only audit log: who loaded what, when.
//!
//! Unlike the manifest (a rewritable registry of the *current* pins),
//! the audit log only grows — re-ingesting a dataset appends a new line
//! rather than replacing history. Format:
//!
//! ```text
//! citesys-audit v1
//! <unix-seconds> <user> loaded <dataset> files <n> records <n> versions <a> <b>
//! ```

use std::fs::OpenOptions;
use std::io::Write;
use std::path::Path;

use crate::error::{io_err, IngestError};
use crate::manifest::sync_parent_dir;

/// Header line gating the audit log format version.
pub const AUDIT_HEADER: &str = "citesys-audit v1";

/// Default audit log file name inside a data directory.
pub const AUDIT_FILE: &str = "datasets.audit";

/// One audit event: a completed dataset load.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct AuditRecord {
    /// Unix seconds when the load committed.
    pub at: u64,
    /// Who ran the load (the `USER` env var, or `unknown`).
    pub by: String,
    /// Dataset name.
    pub dataset: String,
    /// Source files loaded.
    pub files: u64,
    /// Data records loaded.
    pub records: u64,
    /// First commit version of the load.
    pub first_version: u64,
    /// Last commit version of the load.
    pub last_version: u64,
}

impl AuditRecord {
    fn to_line(&self) -> String {
        format!(
            "{} {} loaded {} files {} records {} versions {} {}",
            self.at,
            self.by,
            self.dataset,
            self.files,
            self.records,
            self.first_version,
            self.last_version
        )
    }

    fn from_line(line: &str) -> Result<AuditRecord, String> {
        let parts: Vec<&str> = line.split(' ').collect();
        if parts.len() != 11
            || parts[2] != "loaded"
            || parts[4] != "files"
            || parts[6] != "records"
            || parts[8] != "versions"
        {
            return Err(format!("bad audit line '{line}'"));
        }
        let num = |s: &str| s.parse::<u64>().map_err(|_| format!("bad number '{s}'"));
        Ok(AuditRecord {
            at: num(parts[0])?,
            by: parts[1].to_string(),
            dataset: parts[3].to_string(),
            files: num(parts[5])?,
            records: num(parts[7])?,
            first_version: num(parts[9])?,
            last_version: num(parts[10])?,
        })
    }
}

/// Appends one record (creating the log with its header on first use)
/// and fsyncs, so the audit trail survives a crash right after a load.
pub fn append_audit(path: &Path, record: &AuditRecord) -> Result<(), IngestError> {
    let fresh = !path.exists();
    let mut f = OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .map_err(io_err(path))?;
    let mut out = String::new();
    if fresh {
        out.push_str(AUDIT_HEADER);
        out.push('\n');
    }
    out.push_str(&record.to_line());
    out.push('\n');
    f.write_all(out.as_bytes()).map_err(io_err(path))?;
    f.sync_all().map_err(io_err(path))?;
    if fresh {
        sync_parent_dir(path)?;
    }
    Ok(())
}

/// Reads the whole audit log; `Ok(vec![])` when the file does not exist.
pub fn read_audit(path: &Path) -> Result<Vec<AuditRecord>, IngestError> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(io_err(path)(e)),
    };
    let corrupt = |message: String| IngestError::Corrupt {
        path: path.to_path_buf(),
        message,
    };
    let mut lines = text.lines().map(|l| l.strip_suffix('\r').unwrap_or(l));
    match lines.next() {
        Some(AUDIT_HEADER) => {}
        Some(other) => return Err(corrupt(format!("unsupported audit header '{other}'"))),
        None => return Ok(Vec::new()),
    }
    let mut records = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        records.push(AuditRecord::from_line(line).map_err(corrupt)?);
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(at: u64, dataset: &str) -> AuditRecord {
        AuditRecord {
            at,
            by: "curator".into(),
            dataset: dataset.into(),
            files: 8,
            records: 2_000_000,
            first_version: 3,
            last_version: 203,
        }
    }

    #[test]
    fn append_only_round_trip() {
        let dir = std::env::temp_dir().join(format!("citesys-audit-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(AUDIT_FILE);
        assert!(read_audit(&path).unwrap().is_empty());
        append_audit(&path, &rec(100, "gtopdb")).unwrap();
        append_audit(&path, &rec(200, "gtopdb")).unwrap();
        let all = read_audit(&path).unwrap();
        assert_eq!(all.len(), 2, "re-loads append, never replace");
        assert_eq!(all[0].at, 100);
        assert_eq!(all[1].at, 200);
        assert_eq!(all[1].records, 2_000_000);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn header_gate() {
        let dir = std::env::temp_dir().join(format!("citesys-audit-hg-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(AUDIT_FILE);
        std::fs::write(&path, "citesys-audit v9\n").unwrap();
        assert!(read_audit(&path).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

//! Incremental CSV reading: typed tuple batches from a [`BufRead`]
//! source without materializing the dump.
//!
//! The dialect is exactly the one `citesys_storage::from_csv` speaks
//! (comma-separated, `"`-quoted with `""` escaping, `name:type` header,
//! embedded newlines inside quotes, CRLF tolerated outside quotes) — the
//! scanner here is a line-fed state machine instead of a whole-string
//! pass, and equivalence against `from_csv` is tested property-style.

use std::fs::File;
use std::io::{BufRead, BufReader, Read};
use std::path::Path;

use citesys_storage::{
    parse_csv_header, parse_csv_record, Digest, RelationSchema, Sha256, StorageError, Tuple,
};

use crate::error::{io_err, IngestError};

/// Tuning for a streaming load.
#[derive(Clone, Debug)]
pub struct IngestConfig {
    /// Records per batch / per commit. Bounds resident memory: at any
    /// moment the reader holds at most one partial line, one partial
    /// record and one batch.
    pub batch_size: usize,
}

impl Default for IngestConfig {
    fn default() -> Self {
        IngestConfig { batch_size: 10_000 }
    }
}

/// A `Read` wrapper that hashes and counts every byte passing through,
/// so a single streaming pass yields both tuples and the source file's
/// SHA-256 for the manifest.
pub struct HashCountRead<R> {
    inner: R,
    hash: Sha256,
    bytes: u64,
}

impl<R: Read> HashCountRead<R> {
    /// Wraps a reader.
    pub fn new(inner: R) -> Self {
        HashCountRead {
            inner,
            hash: Sha256::new(),
            bytes: 0,
        }
    }

    /// Finishes the hash, returning `(sha256, bytes read)`.
    pub fn finish(self) -> (Digest, u64) {
        (self.hash.finalize(), self.bytes)
    }
}

impl<R: Read> Read for HashCountRead<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.hash.update(&buf[..n]);
        self.bytes += n as u64;
        Ok(n)
    }
}

/// Line-fed CSV record scanner: the quote/escape state machine from the
/// whole-string parser, restructured so each call feeds one line and at
/// most one record completes per line (records end at a newline outside
/// quotes).
#[derive(Default)]
pub struct RecordScanner {
    cell: String,
    record: Vec<String>,
    in_quotes: bool,
    started: bool,
}

impl RecordScanner {
    /// Creates an empty scanner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds one line as produced by `read_line` (trailing `\n`
    /// included when present). Returns a completed record, or `None`
    /// while a quoted field spans lines. Blank records are skipped by
    /// the caller via [`RecordScanner::is_blank`].
    pub fn feed_line(&mut self, line: &str) -> Option<Vec<String>> {
        let (body, had_newline) = match line.strip_suffix('\n') {
            Some(b) => (b, true),
            None => (line, false),
        };
        let mut chars = body.chars().peekable();
        while let Some(c) = chars.next() {
            self.started = true;
            match c {
                '"' if self.in_quotes => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        self.cell.push('"');
                    } else {
                        self.in_quotes = false;
                    }
                }
                '"' => self.in_quotes = true,
                ',' if !self.in_quotes => {
                    self.record.push(std::mem::take(&mut self.cell));
                }
                '\r' if !self.in_quotes => {}
                other => self.cell.push(other),
            }
        }
        if self.in_quotes {
            if had_newline {
                self.cell.push('\n');
                self.started = true;
            }
            return None;
        }
        if !self.started {
            return None;
        }
        self.started = false;
        self.record.push(std::mem::take(&mut self.cell));
        Some(std::mem::take(&mut self.record))
    }

    /// True when the scanner holds a partial record (unterminated final
    /// line or an unclosed quote at EOF).
    pub fn has_partial(&self) -> bool {
        self.started || self.in_quotes || !self.record.is_empty() || !self.cell.is_empty()
    }

    /// Flushes a partial record at EOF (file without trailing newline).
    pub fn flush(&mut self) -> Option<Vec<String>> {
        if !self.has_partial() {
            return None;
        }
        self.in_quotes = false;
        self.started = false;
        self.record.push(std::mem::take(&mut self.cell));
        Some(std::mem::take(&mut self.record))
    }

    /// A record consisting of one empty cell (a blank line).
    pub fn is_blank(record: &[String]) -> bool {
        record.len() == 1 && record[0].is_empty()
    }

    fn buffered_bytes(&self) -> usize {
        self.cell.len() + self.record.iter().map(String::len).sum::<usize>()
    }
}

/// Streaming CSV reader yielding typed tuple batches.
///
/// The header is read eagerly by [`CsvReader::new`]; each
/// [`CsvReader::next_batch`] call then delivers up to
/// [`IngestConfig::batch_size`] tuples. Memory stays bounded by the
/// batch size — [`CsvReader::peak_buffered_bytes`] reports the high-water
/// mark of everything the reader held at once (line buffer + partial
/// record + current batch), which tests assert against the file size.
pub struct CsvReader<R> {
    src: R,
    scanner: RecordScanner,
    schema: RelationSchema,
    batch_size: usize,
    line: String,
    records: u64,
    batches: u64,
    peak_buffered: usize,
    done: bool,
}

impl CsvReader<BufReader<HashCountRead<File>>> {
    /// Opens a CSV file for streaming, hashing bytes as they flow so the
    /// manifest digest costs no second pass. `key: None` infers a key
    /// over all columns in header order.
    pub fn open_path(
        path: &Path,
        relation: &str,
        key: Option<&[usize]>,
        cfg: &IngestConfig,
    ) -> Result<Self, IngestError> {
        let f = File::open(path).map_err(io_err(path))?;
        let src = BufReader::new(HashCountRead::new(f));
        CsvReader::new(relation, key, src, cfg)
    }

    /// Drains any unread tail (so the hash covers the whole file) and
    /// returns `(sha256, bytes)` of the source.
    pub fn finish(self) -> Result<(Digest, u64), std::io::Error> {
        let mut inner = self.src;
        std::io::copy(&mut inner, &mut std::io::sink())?;
        Ok(inner.into_inner().finish())
    }
}

impl<R: BufRead> CsvReader<R> {
    /// Reads the `name:type` header from `src` and prepares batch
    /// iteration. `key: None` infers a key over all columns in header
    /// order (the whole tuple — always valid, enforces set semantics).
    pub fn new(
        relation: &str,
        key: Option<&[usize]>,
        src: R,
        cfg: &IngestConfig,
    ) -> Result<Self, IngestError> {
        let mut r = CsvReader {
            src,
            scanner: RecordScanner::new(),
            schema: RelationSchema::new(relation, Vec::new(), Vec::new()),
            batch_size: cfg.batch_size.max(1),
            line: String::new(),
            records: 0,
            batches: 0,
            peak_buffered: 0,
            done: false,
        };
        let header = match r.next_record()? {
            Some(rec) => rec,
            None => {
                return Err(StorageError::UnknownRelation {
                    name: format!("{relation}: empty csv"),
                }
                .into())
            }
        };
        let attrs = parse_csv_header(relation, &header)?;
        let key = match key {
            Some(k) => k.to_vec(),
            None => (0..attrs.len()).collect(),
        };
        r.schema = RelationSchema::new(relation, attrs, key);
        Ok(r)
    }

    /// The schema parsed from the header row.
    pub fn schema(&self) -> &RelationSchema {
        &self.schema
    }

    /// Data records delivered so far.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Batches delivered so far.
    pub fn batches(&self) -> u64 {
        self.batches
    }

    /// High-water mark of bytes buffered inside the reader (line
    /// buffer, partial record and in-progress batch). Stays
    /// proportional to the batch size, not the file size.
    pub fn peak_buffered_bytes(&self) -> usize {
        self.peak_buffered
    }

    /// Next batch of up to `batch_size` tuples; `None` at end of input.
    pub fn next_batch(&mut self) -> Result<Option<Vec<Tuple>>, IngestError> {
        if self.done {
            return Ok(None);
        }
        let mut batch = Vec::new();
        let mut batch_bytes = 0usize;
        while batch.len() < self.batch_size {
            match self.next_record()? {
                Some(rec) => {
                    let rec_bytes: usize = rec.iter().map(String::len).sum();
                    self.records += 1;
                    let t = parse_csv_record(&self.schema, &rec, self.records as usize)?;
                    batch.push(t);
                    batch_bytes += rec_bytes + 8 * self.schema.arity();
                    self.note_buffered(batch_bytes);
                }
                None => {
                    self.done = true;
                    break;
                }
            }
        }
        if batch.is_empty() {
            Ok(None)
        } else {
            self.batches += 1;
            Ok(Some(batch))
        }
    }

    fn note_buffered(&mut self, batch_bytes: usize) {
        let now = self.line.capacity() + self.scanner.buffered_bytes() + batch_bytes;
        self.peak_buffered = self.peak_buffered.max(now);
    }

    fn next_record(&mut self) -> Result<Option<Vec<String>>, IngestError> {
        loop {
            self.line.clear();
            let n = self
                .src
                .read_line(&mut self.line)
                .map_err(|e| IngestError::Io {
                    path: std::path::PathBuf::from("<csv source>"),
                    message: e.to_string(),
                })?;
            if n == 0 {
                match self.scanner.flush() {
                    Some(rec) if !RecordScanner::is_blank(&rec) => return Ok(Some(rec)),
                    _ => return Ok(None),
                }
            }
            let line = std::mem::take(&mut self.line);
            let completed = self.scanner.feed_line(&line);
            self.line = line;
            if let Some(rec) = completed {
                if !RecordScanner::is_blank(&rec) {
                    return Ok(Some(rec));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use citesys_storage::from_csv;

    fn cfg(batch: usize) -> IngestConfig {
        IngestConfig { batch_size: batch }
    }

    fn stream_all(input: &str, batch: usize) -> (RelationSchema, Vec<Tuple>) {
        let mut r = CsvReader::new("R", Some(&[0]), input.as_bytes(), &cfg(batch)).unwrap();
        let schema = r.schema().clone();
        let mut out = Vec::new();
        while let Some(b) = r.next_batch().unwrap() {
            assert!(b.len() <= batch);
            out.extend(b);
        }
        (schema, out)
    }

    #[test]
    fn matches_whole_string_parser() {
        let docs = [
            "\"FID:int\",\"FName:text\"\n1,\"Calcitonin\"\n2,\"Dopamine, the 2nd\"\n",
            "\"A:int\",\"B:text\"\r\n1,\"x\"\r\n2,\"embedded\nnewline, and \"\"quotes\"\"\"\r\n",
            "\"A:int\"\n1\n\n2\n",
            "\"A:int\",\"B:bool\"\n1,true\n2,false",
        ];
        for (i, doc) in docs.iter().enumerate() {
            let (schema, want) = from_csv("R", &[0], doc).unwrap();
            for batch in [1, 2, 1000] {
                let (got_schema, got) = stream_all(doc, batch);
                assert_eq!(got_schema.attributes, schema.attributes, "doc {i}");
                assert_eq!(got, want, "doc {i} batch {batch}");
            }
        }
    }

    #[test]
    fn quoted_field_spanning_many_lines() {
        let doc = "\"A:int\",\"B:text\"\n1,\"l1\nl2\nl3\"\n2,\"y\"\n";
        let (_, tuples) = stream_all(doc, 10);
        assert_eq!(tuples[0].get(1).unwrap().as_text(), Some("l1\nl2\nl3"));
        assert_eq!(tuples.len(), 2);
    }

    #[test]
    fn header_key_inference_covers_all_columns() {
        let doc = "\"A:int\",\"B:text\"\n1,\"x\"\n";
        let r = CsvReader::new("R", None, doc.as_bytes(), &cfg(8)).unwrap();
        assert_eq!(r.schema().key, vec![0, 1]);
    }

    #[test]
    fn record_numbers_are_global_across_batches() {
        let doc = "\"A:int\"\n1\n2\n3\n\"x\"\n";
        let mut r = CsvReader::new("R", None, doc.as_bytes(), &cfg(2)).unwrap();
        assert!(r.next_batch().is_ok());
        let err = loop {
            match r.next_batch() {
                Ok(Some(_)) => continue,
                Ok(None) => panic!("expected a parse error"),
                Err(e) => break e,
            }
        };
        assert!(err.to_string().contains("csv record 4"), "{err}");
    }

    #[test]
    fn duplicate_header_rejected_streaming() {
        let doc = "\"A:int\",\"A:text\"\n1,\"x\"\n";
        let err = match CsvReader::new("R", None, doc.as_bytes(), &cfg(8)) {
            Err(e) => e,
            Ok(_) => panic!("duplicate header accepted"),
        };
        assert!(err.to_string().contains("duplicate csv column"), "{err}");
    }

    #[test]
    fn hash_count_read_matches_one_shot() {
        let data = b"hello, csv world\n".repeat(100);
        let mut h = HashCountRead::new(&data[..]);
        let mut sink = Vec::new();
        std::io::Read::read_to_end(&mut h, &mut sink).unwrap();
        let (digest, bytes) = h.finish();
        assert_eq!(bytes as usize, data.len());
        assert_eq!(digest, citesys_storage::sha256(&data));
    }

    #[test]
    fn bounded_memory_on_large_input() {
        // ~200k single-column records; with batch 1000 the reader must
        // never buffer more than a small multiple of one batch.
        let mut doc = String::from("\"A:int\",\"B:text\"\n");
        for i in 0..200_000 {
            doc.push_str(&format!("{i},\"payload payload payload {i}\"\n"));
        }
        let (_, tuples) = stream_all(&doc, 1000);
        assert_eq!(tuples.len(), 200_000);
        let mut r = CsvReader::new("R", None, doc.as_bytes(), &cfg(1000)).unwrap();
        while r.next_batch().unwrap().is_some() {}
        assert!(
            r.peak_buffered_bytes() < doc.len() / 20,
            "peak {} vs input {}",
            r.peak_buffered_bytes(),
            doc.len()
        );
    }
}

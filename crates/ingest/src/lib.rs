//! # citesys-ingest — streaming bulk ingestion & the dataset registry
//!
//! The citation contract only matters if curated databases can get *into*
//! the system without a forklift. This crate is the ingestion vertical:
//!
//! | module | contents |
//! |--------|----------|
//! | [`reader`] | incremental [`CsvReader`] / [`reader::RecordScanner`]: typed tuple batches from any [`std::io::BufRead`] source, never holding the dump in memory |
//! | [`jsonl`] | [`JsonlReader`]: the same batch contract over line-delimited JSON (schema line + value objects), parsed by a hermetic in-tree scanner |
//! | [`manifest`] | the `datasets.lock` registry ([`DatasetManifest`]): `citesys-datasets v1` text codec pinning per-source SHA-256, relation fixity and the commit version range, plus [`manifest::verify_sources`] tamper detection |
//! | [`audit`] | append-only audit log (`datasets.audit`): who loaded what, when, into which version range |
//!
//! Batches are sized by [`IngestConfig::batch_size`] and are meant to be
//! committed through the normal changeset path (stage_batch / delta
//! maintenance / WAL), so a bulk load looks like ordinary commits to
//! every layer above — views stay warm, replicas follow, recovery works.
//!
//! ## Quickstart
//!
//! ```
//! use citesys_ingest::{CsvReader, IngestConfig};
//!
//! let csv = "\"FID:int\",\"FName:text\"\n1,\"Calcitonin\"\n2,\"Dopamine\"\n";
//! let cfg = IngestConfig::default();
//! let mut r = CsvReader::new("Family", Some(&[0]), csv.as_bytes(), &cfg).unwrap();
//! assert_eq!(r.schema().arity(), 2);
//! let mut total = 0;
//! while let Some(batch) = r.next_batch().unwrap() {
//!     total += batch.len();
//! }
//! assert_eq!(total, 2);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod audit;
pub mod jsonl;
pub mod manifest;
pub mod reader;

mod error;

pub use audit::{append_audit, read_audit, AuditRecord, AUDIT_FILE};
pub use error::IngestError;
pub use jsonl::JsonlReader;
pub use manifest::{
    hash_file, verify_sources, DatasetEntry, DatasetManifest, SourceFile, VerifyIssue,
    MANIFEST_FILE,
};
pub use reader::{CsvReader, HashCountRead, IngestConfig};

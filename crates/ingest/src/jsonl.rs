//! Line-delimited JSON ingestion: the same batch contract as the CSV
//! reader over `*.jsonl` dumps.
//!
//! Dialect: the first line is a schema object mapping attribute names to
//! type names (`{"FID": "int", "FName": "text"}` — key order defines
//! column order); every following line is a value object with exactly
//! those keys (`{"FID": 1, "FName": "Calcitonin"}`). The JSON scanner is
//! in-tree (strings with standard escapes incl. `\uXXXX` pairs, integer
//! numbers, booleans) — no external JSON crate in the dependency set.

use std::fs::File;
use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};

use citesys_cq::{Value, ValueType};
use citesys_storage::{Attribute, Digest, RelationSchema, StorageError, Tuple};

use crate::error::{io_err, IngestError};
use crate::reader::{HashCountRead, IngestConfig};

/// One scanned JSON value (the subset the dialect needs).
#[derive(Clone, PartialEq, Debug)]
enum Json {
    /// An integer number.
    Num(i64),
    /// A string.
    Str(String),
    /// A boolean.
    Bool(bool),
}

/// Streaming JSONL reader yielding typed tuple batches; see the module
/// docs for the dialect.
pub struct JsonlReader<R> {
    src: R,
    source: PathBuf,
    schema: RelationSchema,
    batch_size: usize,
    line: String,
    records: u64,
    batches: u64,
    done: bool,
}

impl JsonlReader<BufReader<HashCountRead<File>>> {
    /// Opens a JSONL file for streaming, hashing bytes as they flow.
    /// `key: None` infers a key over all columns in schema-line order.
    pub fn open_path(
        path: &Path,
        relation: &str,
        key: Option<&[usize]>,
        cfg: &IngestConfig,
    ) -> Result<Self, IngestError> {
        let f = File::open(path).map_err(io_err(path))?;
        let src = BufReader::new(HashCountRead::new(f));
        let mut r = JsonlReader::new(relation, key, src, cfg)?;
        r.source = path.to_path_buf();
        Ok(r)
    }

    /// Drains any unread tail and returns `(sha256, bytes)` of the source.
    pub fn finish(self) -> Result<(Digest, u64), std::io::Error> {
        let mut inner = self.src;
        std::io::copy(&mut inner, &mut std::io::sink())?;
        Ok(inner.into_inner().finish())
    }
}

impl<R: BufRead> JsonlReader<R> {
    /// Reads the schema line and prepares batch iteration.
    pub fn new(
        relation: &str,
        key: Option<&[usize]>,
        mut src: R,
        cfg: &IngestConfig,
    ) -> Result<Self, IngestError> {
        let source = PathBuf::from("<jsonl source>");
        let mut line = String::new();
        let n = src.read_line(&mut line).map_err(io_err(&source))?;
        if n == 0 {
            return Err(StorageError::UnknownRelation {
                name: format!("{relation}: empty jsonl"),
            }
            .into());
        }
        let pairs = parse_object(trim_line(&line))
            .map_err(|m| corrupt(&source, format!("schema line: {m}")))?;
        let mut attrs: Vec<Attribute> = Vec::new();
        for (name, v) in pairs {
            let ty = match v {
                Json::Str(s) => match s.as_str() {
                    "int" => ValueType::Int,
                    "text" => ValueType::Text,
                    "bool" => ValueType::Bool,
                    other => {
                        return Err(StorageError::UnknownRelation {
                            name: format!("{relation}: unknown type '{other}'"),
                        }
                        .into())
                    }
                },
                _ => {
                    return Err(corrupt(
                        &source,
                        format!("schema line: '{name}' must map to a type name"),
                    ))
                }
            };
            if attrs.iter().any(|a| a.name.as_str() == name) {
                return Err(StorageError::DuplicateColumn {
                    relation: relation.to_string(),
                    attribute: name,
                }
                .into());
            }
            attrs.push(Attribute::new(name.as_str(), ty));
        }
        let key = match key {
            Some(k) => k.to_vec(),
            None => (0..attrs.len()).collect(),
        };
        Ok(JsonlReader {
            src,
            source,
            schema: RelationSchema::new(relation, attrs, key),
            batch_size: cfg.batch_size.max(1),
            line: String::new(),
            records: 0,
            batches: 0,
            done: false,
        })
    }

    /// The schema parsed from the schema line.
    pub fn schema(&self) -> &RelationSchema {
        &self.schema
    }

    /// Data records delivered so far.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Batches delivered so far.
    pub fn batches(&self) -> u64 {
        self.batches
    }

    /// Next batch of up to `batch_size` tuples; `None` at end of input.
    pub fn next_batch(&mut self) -> Result<Option<Vec<Tuple>>, IngestError> {
        if self.done {
            return Ok(None);
        }
        let mut batch = Vec::new();
        while batch.len() < self.batch_size {
            self.line.clear();
            let n = self
                .src
                .read_line(&mut self.line)
                .map_err(io_err(&self.source))?;
            if n == 0 {
                self.done = true;
                break;
            }
            let body = trim_line(&self.line);
            if body.is_empty() {
                continue;
            }
            self.records += 1;
            let record_no = self.records;
            let pairs = parse_object(body)
                .map_err(|m| corrupt(&self.source, format!("record {record_no}: {m}")))?;
            batch.push(self.tuple_from(pairs, record_no)?);
        }
        if batch.is_empty() {
            Ok(None)
        } else {
            self.batches += 1;
            Ok(Some(batch))
        }
    }

    fn tuple_from(&self, pairs: Vec<(String, Json)>, record_no: u64) -> Result<Tuple, IngestError> {
        let fail = |message: String| {
            IngestError::Parse(StorageError::CsvRecord {
                relation: self.schema.name.to_string(),
                record: record_no as usize,
                message,
            })
        };
        if pairs.len() != self.schema.arity() {
            return Err(fail(format!(
                "expected {} fields, got {}",
                self.schema.arity(),
                pairs.len()
            )));
        }
        let mut values = vec![Value::Int(0); self.schema.arity()];
        for (name, v) in pairs {
            let pos = self
                .schema
                .position_of(&name)
                .ok_or_else(|| fail(format!("unknown field '{name}'")))?;
            let attr = &self.schema.attributes[pos];
            values[pos] = match (attr.ty, v) {
                (ValueType::Int, Json::Num(i)) => Value::Int(i),
                (ValueType::Text, Json::Str(s)) => Value::text(s.as_str()),
                (ValueType::Bool, Json::Bool(b)) => Value::Bool(b),
                (ty, got) => {
                    return Err(fail(format!("{name}: expected {ty}, got {got:?}")));
                }
            };
        }
        Ok(Tuple::new(values))
    }
}

fn trim_line(line: &str) -> &str {
    line.trim_end_matches(['\n', '\r'])
}

fn corrupt(path: &Path, message: String) -> IngestError {
    IngestError::Corrupt {
        path: path.to_path_buf(),
        message,
    }
}

/// Parses one JSON object line into ordered `(key, value)` pairs.
fn parse_object(input: &str) -> Result<Vec<(String, Json)>, String> {
    let mut chars = input.chars().peekable();
    skip_ws(&mut chars);
    expect(&mut chars, '{')?;
    let mut pairs = Vec::new();
    skip_ws(&mut chars);
    if chars.peek() == Some(&'}') {
        chars.next();
    } else {
        loop {
            skip_ws(&mut chars);
            let key = parse_string(&mut chars)?;
            skip_ws(&mut chars);
            expect(&mut chars, ':')?;
            skip_ws(&mut chars);
            let value = parse_value(&mut chars)?;
            pairs.push((key, value));
            skip_ws(&mut chars);
            match chars.next() {
                Some(',') => continue,
                Some('}') => break,
                other => return Err(format!("expected ',' or '}}', got {other:?}")),
            }
        }
    }
    skip_ws(&mut chars);
    if let Some(c) = chars.next() {
        return Err(format!("trailing content after object: '{c}'"));
    }
    Ok(pairs)
}

type Chars<'a> = std::iter::Peekable<std::str::Chars<'a>>;

fn skip_ws(chars: &mut Chars<'_>) {
    while matches!(chars.peek(), Some(' ' | '\t')) {
        chars.next();
    }
}

fn expect(chars: &mut Chars<'_>, want: char) -> Result<(), String> {
    match chars.next() {
        Some(c) if c == want => Ok(()),
        other => Err(format!("expected '{want}', got {other:?}")),
    }
}

fn parse_value(chars: &mut Chars<'_>) -> Result<Json, String> {
    match chars.peek() {
        Some('"') => parse_string(chars).map(Json::Str),
        Some('t') | Some('f') => {
            let mut word = String::new();
            while matches!(chars.peek(), Some(c) if c.is_ascii_alphabetic()) {
                word.push(chars.next().unwrap());
            }
            match word.as_str() {
                "true" => Ok(Json::Bool(true)),
                "false" => Ok(Json::Bool(false)),
                other => Err(format!("unknown literal '{other}'")),
            }
        }
        Some(c) if *c == '-' || c.is_ascii_digit() => {
            let mut num = String::new();
            if chars.peek() == Some(&'-') {
                num.push(chars.next().unwrap());
            }
            while matches!(chars.peek(), Some(c) if c.is_ascii_digit()) {
                num.push(chars.next().unwrap());
            }
            num.parse::<i64>()
                .map(Json::Num)
                .map_err(|_| format!("bad integer '{num}'"))
        }
        other => Err(format!("unexpected value start {other:?}")),
    }
}

fn parse_string(chars: &mut Chars<'_>) -> Result<String, String> {
    expect(chars, '"')?;
    let mut out = String::new();
    loop {
        match chars.next() {
            None => return Err("unterminated string".into()),
            Some('"') => return Ok(out),
            Some('\\') => match chars.next() {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some('/') => out.push('/'),
                Some('b') => out.push('\u{0008}'),
                Some('f') => out.push('\u{000C}'),
                Some('n') => out.push('\n'),
                Some('r') => out.push('\r'),
                Some('t') => out.push('\t'),
                Some('u') => {
                    let hi = parse_hex4(chars)?;
                    let cp = if (0xD800..0xDC00).contains(&hi) {
                        // Surrogate pair: expect \uDC00-\uDFFF next.
                        match (chars.next(), chars.next()) {
                            (Some('\\'), Some('u')) => {
                                let lo = parse_hex4(chars)?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err("bad low surrogate".into());
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            }
                            _ => return Err("lone high surrogate".into()),
                        }
                    } else {
                        hi
                    };
                    out.push(char::from_u32(cp).ok_or("bad \\u escape")?);
                }
                other => return Err(format!("bad escape {other:?}")),
            },
            Some(c) => out.push(c),
        }
    }
}

fn parse_hex4(chars: &mut Chars<'_>) -> Result<u32, String> {
    let mut v = 0u32;
    for _ in 0..4 {
        let c = chars.next().ok_or("truncated \\u escape")?;
        v = v * 16 + c.to_digit(16).ok_or("bad hex in \\u escape")?;
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn read_all(doc: &str, batch: usize) -> (RelationSchema, Vec<Tuple>) {
        let cfg = IngestConfig { batch_size: batch };
        let mut r = JsonlReader::new("R", None, doc.as_bytes(), &cfg).unwrap();
        let schema = r.schema().clone();
        let mut out = Vec::new();
        while let Some(b) = r.next_batch().unwrap() {
            out.extend(b);
        }
        (schema, out)
    }

    #[test]
    fn schema_line_and_values() {
        let doc = "{\"FID\": \"int\", \"FName\": \"text\", \"Ok\": \"bool\"}\n\
                   {\"FID\": 1, \"FName\": \"Calcitonin\", \"Ok\": true}\n\
                   {\"FName\": \"Dopamine\", \"FID\": -2, \"Ok\": false}\n";
        let (schema, tuples) = read_all(doc, 10);
        assert_eq!(schema.arity(), 3);
        assert_eq!(schema.key, vec![0, 1, 2]);
        assert_eq!(tuples.len(), 2);
        // Field order in the data line does not matter.
        assert_eq!(tuples[1].get(0).unwrap().as_int(), Some(-2));
        assert_eq!(tuples[1].get(1).unwrap().as_text(), Some("Dopamine"));
    }

    #[test]
    fn escapes_round_trip() {
        let doc =
            "{\"A\": \"text\"}\n{\"A\": \"line1\\nline2 \\\"q\\\" \\u00e9 \\ud83d\\ude00\"}\n";
        let (_, tuples) = read_all(doc, 10);
        assert_eq!(
            tuples[0].get(0).unwrap().as_text(),
            Some("line1\nline2 \"q\" é 😀")
        );
    }

    #[test]
    fn record_numbers_in_errors() {
        let doc = "{\"A\": \"int\"}\n{\"A\": 1}\n{\"A\": \"oops\"}\n";
        let cfg = IngestConfig { batch_size: 10 };
        let mut r = JsonlReader::new("R", None, doc.as_bytes(), &cfg).unwrap();
        let err = r.next_batch().unwrap_err();
        assert!(err.to_string().contains("record 2"), "{err}");
    }

    #[test]
    fn duplicate_schema_field_rejected() {
        let doc = "{\"A\": \"int\", \"A\": \"text\"}\n";
        let cfg = IngestConfig::default();
        let err = match JsonlReader::new("R", None, doc.as_bytes(), &cfg) {
            Err(e) => e,
            Ok(_) => panic!("duplicate schema field accepted"),
        };
        assert!(err.to_string().contains("duplicate"), "{err}");
    }

    #[test]
    fn wrong_fields_rejected() {
        let doc = "{\"A\": \"int\"}\n{\"B\": 1}\n";
        let cfg = IngestConfig::default();
        let mut r = JsonlReader::new("R", None, doc.as_bytes(), &cfg).unwrap();
        let err = r.next_batch().unwrap_err();
        assert!(err.to_string().contains("unknown field 'B'"), "{err}");
    }
}

//! Error type for the ingestion subsystem.

use std::fmt;
use std::path::PathBuf;

use citesys_storage::StorageError;

/// Errors produced while streaming a dump or handling the registry.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum IngestError {
    /// An I/O failure on a source file, manifest or audit log.
    Io {
        /// The file involved.
        path: PathBuf,
        /// The underlying error rendered as text.
        message: String,
    },
    /// A record or header failed typed parsing (carries the 1-based
    /// record number via [`StorageError::CsvRecord`]).
    Parse(StorageError),
    /// A manifest or audit file is malformed.
    Corrupt {
        /// The file involved.
        path: PathBuf,
        /// What was wrong.
        message: String,
    },
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngestError::Io { path, message } => {
                write!(f, "io error on {}: {message}", path.display())
            }
            IngestError::Parse(e) => write!(f, "{e}"),
            IngestError::Corrupt { path, message } => {
                write!(f, "corrupt {}: {message}", path.display())
            }
        }
    }
}

impl std::error::Error for IngestError {}

impl From<StorageError> for IngestError {
    fn from(e: StorageError) -> Self {
        IngestError::Parse(e)
    }
}

pub(crate) fn io_err(path: &std::path::Path) -> impl Fn(std::io::Error) -> IngestError + '_ {
    move |e| IngestError::Io {
        path: path.to_path_buf(),
        message: e.to_string(),
    }
}

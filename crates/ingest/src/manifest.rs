//! The dataset registry: a `datasets.lock`-style manifest pinning what
//! was loaded, from where, and what it hashed to.
//!
//! Text codec in the durability conventions — format-version gate,
//! CRLF-tolerant line parsing, atomic write (temp file + rename + parent
//! directory fsync). Grammar:
//!
//! ```text
//! citesys-datasets v1
//! dataset <name>
//! dir <ingested directory...>
//! loaded-by <user>
//! loaded-at <unix-seconds>
//! versions <first> <last>
//! fixity <sha256-hex>
//! source <sha256-hex> <bytes> <records> <relation> <file name...>
//! end
//! ```
//!
//! `fixity` is the whole-database digest at the last committed version of
//! the load; `source` lines pin each input file. [`verify_sources`]
//! re-hashes the files in a streaming pass and reports tamper; fixity
//! drift against the live store is checked by the caller (who owns the
//! versioned database) via [`DatasetEntry::fixity`].

use std::fs::File;
use std::io::{BufReader, Read};
use std::path::{Path, PathBuf};

use citesys_storage::Digest;

use crate::error::{io_err, IngestError};

/// Header line gating the manifest format version.
pub const MANIFEST_HEADER: &str = "citesys-datasets v1";

/// Default manifest file name inside a data directory.
pub const MANIFEST_FILE: &str = "datasets.lock";

/// One pinned source file of a dataset.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SourceFile {
    /// File name relative to the ingested directory.
    pub file: String,
    /// Relation the file loaded into.
    pub relation: String,
    /// SHA-256 of the file bytes at load time.
    pub sha256: Digest,
    /// File size in bytes at load time.
    pub bytes: u64,
    /// Data records the file contributed.
    pub records: u64,
}

/// One registered dataset load.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct DatasetEntry {
    /// Dataset name (by convention the ingested directory name).
    pub name: String,
    /// The directory the sources were ingested from (as recorded at
    /// load time; source file names are relative to it).
    pub dir: String,
    /// Who ran the load.
    pub loaded_by: String,
    /// Unix seconds when the load committed.
    pub loaded_at: u64,
    /// First commit version the load produced.
    pub first_version: u64,
    /// Last commit version the load produced.
    pub last_version: u64,
    /// Whole-database fixity digest at `last_version`.
    pub fixity: Digest,
    /// The pinned source files.
    pub sources: Vec<SourceFile>,
}

/// The registry: every dataset load recorded in `datasets.lock`.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct DatasetManifest {
    /// Registered loads, in load order.
    pub datasets: Vec<DatasetEntry>,
}

/// A problem found by verification.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum VerifyIssue {
    /// A pinned source file no longer exists.
    MissingSource {
        /// Dataset owning the pin.
        dataset: String,
        /// The missing file (relative name).
        file: String,
    },
    /// A pinned source file's bytes changed since the load.
    SourceDigest {
        /// Dataset owning the pin.
        dataset: String,
        /// The tampered file (relative name).
        file: String,
        /// Digest recorded at load time.
        expected: Digest,
        /// Digest of the file as it is now.
        got: Digest,
    },
    /// The database digest at the recorded version no longer matches.
    FixityDrift {
        /// Dataset owning the pin.
        dataset: String,
        /// Digest recorded at load time.
        expected: Digest,
        /// Digest the store reports now.
        got: Digest,
    },
}

impl std::fmt::Display for VerifyIssue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerifyIssue::MissingSource { dataset, file } => {
                write!(f, "dataset {dataset}: source '{file}' is missing")
            }
            VerifyIssue::SourceDigest { dataset, file, .. } => {
                write!(
                    f,
                    "dataset {dataset}: source '{file}' digest mismatch (tampered)"
                )
            }
            VerifyIssue::FixityDrift { dataset, .. } => {
                write!(f, "dataset {dataset}: relation fixity drift")
            }
        }
    }
}

impl DatasetManifest {
    /// Renders the registry in the `citesys-datasets v1` codec.
    pub fn to_text(&self) -> String {
        let mut out = String::from(MANIFEST_HEADER);
        out.push('\n');
        for d in &self.datasets {
            out.push_str(&format!("dataset {}\n", d.name));
            out.push_str(&format!("dir {}\n", d.dir));
            out.push_str(&format!("loaded-by {}\n", d.loaded_by));
            out.push_str(&format!("loaded-at {}\n", d.loaded_at));
            out.push_str(&format!(
                "versions {} {}\n",
                d.first_version, d.last_version
            ));
            out.push_str(&format!("fixity {}\n", d.fixity.to_hex()));
            for s in &d.sources {
                out.push_str(&format!(
                    "source {} {} {} {} {}\n",
                    s.sha256.to_hex(),
                    s.bytes,
                    s.records,
                    s.relation,
                    s.file
                ));
            }
            out.push_str("end\n");
        }
        out
    }

    /// Parses the codec back; tolerates CRLF line endings and rejects
    /// unknown format versions or directives.
    pub fn from_text(text: &str) -> Result<DatasetManifest, String> {
        let mut lines = text.lines().map(trim_cr);
        match lines.next() {
            Some(MANIFEST_HEADER) => {}
            Some(other) => return Err(format!("unsupported manifest header '{other}'")),
            None => return Err("empty manifest".into()),
        }
        let mut datasets = Vec::new();
        let mut cur: Option<DatasetEntry> = None;
        for line in lines {
            if line.is_empty() {
                continue;
            }
            let (word, rest) = line.split_once(' ').unwrap_or((line, ""));
            match word {
                "dataset" => {
                    if cur.is_some() {
                        return Err("nested 'dataset' without 'end'".into());
                    }
                    cur = Some(DatasetEntry {
                        name: rest.to_string(),
                        dir: String::new(),
                        loaded_by: String::new(),
                        loaded_at: 0,
                        first_version: 0,
                        last_version: 0,
                        fixity: Digest([0; 32]),
                        sources: Vec::new(),
                    });
                }
                "dir" => entry_mut(&mut cur)?.dir = rest.to_string(),
                "loaded-by" => entry_mut(&mut cur)?.loaded_by = rest.to_string(),
                "loaded-at" => {
                    entry_mut(&mut cur)?.loaded_at = rest
                        .parse()
                        .map_err(|_| format!("bad loaded-at '{rest}'"))?
                }
                "versions" => {
                    let (a, b) = rest
                        .split_once(' ')
                        .ok_or_else(|| format!("bad versions line '{rest}'"))?;
                    let e = entry_mut(&mut cur)?;
                    e.first_version = a.parse().map_err(|_| format!("bad version '{a}'"))?;
                    e.last_version = b.parse().map_err(|_| format!("bad version '{b}'"))?;
                }
                "fixity" => {
                    entry_mut(&mut cur)?.fixity =
                        Digest::from_hex(rest).ok_or_else(|| format!("bad fixity '{rest}'"))?
                }
                "source" => {
                    let mut it = rest.splitn(5, ' ');
                    let (hex, bytes, records, relation, file) =
                        match (it.next(), it.next(), it.next(), it.next(), it.next()) {
                            (Some(a), Some(b), Some(c), Some(d), Some(e)) => (a, b, c, d, e),
                            _ => return Err(format!("bad source line '{rest}'")),
                        };
                    entry_mut(&mut cur)?.sources.push(SourceFile {
                        file: file.to_string(),
                        relation: relation.to_string(),
                        sha256: Digest::from_hex(hex)
                            .ok_or_else(|| format!("bad source digest '{hex}'"))?,
                        bytes: bytes.parse().map_err(|_| format!("bad bytes '{bytes}'"))?,
                        records: records
                            .parse()
                            .map_err(|_| format!("bad records '{records}'"))?,
                    });
                }
                "end" => {
                    datasets.push(cur.take().ok_or("'end' without 'dataset'")?);
                }
                other => return Err(format!("unknown manifest directive '{other}'")),
            }
        }
        if cur.is_some() {
            return Err("manifest truncated: missing 'end'".into());
        }
        Ok(DatasetManifest { datasets })
    }

    /// Loads a manifest file; `Ok(None)` when the file does not exist.
    pub fn load(path: &Path) -> Result<Option<DatasetManifest>, IngestError> {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(io_err(path)(e)),
        };
        DatasetManifest::from_text(&text)
            .map(Some)
            .map_err(|m| IngestError::Corrupt {
                path: path.to_path_buf(),
                message: m,
            })
    }

    /// Writes the manifest atomically (temp file + rename + parent fsync).
    pub fn write_atomic(&self, path: &Path) -> Result<(), IngestError> {
        write_atomic(path, &self.to_text())
    }

    /// Finds a dataset by name.
    pub fn dataset(&self, name: &str) -> Option<&DatasetEntry> {
        self.datasets.iter().find(|d| d.name == name)
    }

    /// Registers a load, replacing any earlier entry with the same name
    /// (re-ingesting a dataset re-pins it).
    pub fn register(&mut self, entry: DatasetEntry) {
        self.datasets.retain(|d| d.name != entry.name);
        self.datasets.push(entry);
    }
}

fn entry_mut(cur: &mut Option<DatasetEntry>) -> Result<&mut DatasetEntry, String> {
    cur.as_mut()
        .ok_or_else(|| "directive outside 'dataset' block".to_string())
}

/// Trims one trailing carriage return (CRLF tolerance).
fn trim_cr(line: &str) -> &str {
    line.strip_suffix('\r').unwrap_or(line)
}

/// Streams a file through SHA-256 without loading it.
pub fn hash_file(path: &Path) -> Result<(Digest, u64), IngestError> {
    let f = File::open(path).map_err(io_err(path))?;
    let mut r = BufReader::new(f);
    let mut hash = citesys_storage::Sha256::new();
    let mut buf = [0u8; 64 * 1024];
    let mut total = 0u64;
    loop {
        let n = r.read(&mut buf).map_err(io_err(path))?;
        if n == 0 {
            break;
        }
        hash.update(&buf[..n]);
        total += n as u64;
    }
    Ok((hash.finalize(), total))
}

/// Re-hashes every pinned source and reports missing or tampered files.
/// Files resolve against each dataset's recorded `dir` unless `base`
/// overrides it (e.g. the dump moved). Streaming — bounded memory
/// regardless of dump size.
pub fn verify_sources(
    manifest: &DatasetManifest,
    base: Option<&Path>,
) -> Result<Vec<VerifyIssue>, IngestError> {
    let mut issues = Vec::new();
    for d in &manifest.datasets {
        for s in &d.sources {
            let path = base.unwrap_or_else(|| Path::new(&d.dir)).join(&s.file);
            if !path.exists() {
                issues.push(VerifyIssue::MissingSource {
                    dataset: d.name.clone(),
                    file: s.file.clone(),
                });
                continue;
            }
            let (got, _) = hash_file(&path)?;
            if got != s.sha256 {
                issues.push(VerifyIssue::SourceDigest {
                    dataset: d.name.clone(),
                    file: s.file.clone(),
                    expected: s.sha256,
                    got,
                });
            }
        }
    }
    Ok(issues)
}

pub(crate) fn write_atomic(path: &Path, content: &str) -> Result<(), IngestError> {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, content).map_err(io_err(&tmp))?;
    let f = File::open(&tmp).map_err(io_err(&tmp))?;
    f.sync_all().map_err(io_err(&tmp))?;
    std::fs::rename(&tmp, path).map_err(io_err(path))?;
    sync_parent_dir(path)
}

pub(crate) fn sync_parent_dir(path: &Path) -> Result<(), IngestError> {
    #[cfg(unix)]
    if let Some(dir) = path.parent() {
        let dir = if dir.as_os_str().is_empty() {
            Path::new(".")
        } else {
            dir
        };
        let d = File::open(dir).map_err(io_err(dir))?;
        d.sync_all().map_err(io_err(dir))?;
    }
    #[cfg(not(unix))]
    let _ = path;
    Ok(())
}

/// Joins a manifest path: explicit override or `<dir>/datasets.lock`.
pub fn manifest_path(data_dir: &Path, explicit: Option<&str>) -> PathBuf {
    match explicit {
        Some(p) => PathBuf::from(p),
        None => data_dir.join(MANIFEST_FILE),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use citesys_storage::sha256;

    fn sample() -> DatasetManifest {
        DatasetManifest {
            datasets: vec![DatasetEntry {
                name: "gtopdb".into(),
                dir: "/tmp/dumps/gtopdb".into(),
                loaded_by: "curator".into(),
                loaded_at: 1_754_500_000,
                first_version: 3,
                last_version: 17,
                fixity: sha256(b"db"),
                sources: vec![
                    SourceFile {
                        file: "Family.csv".into(),
                        relation: "Family".into(),
                        sha256: sha256(b"fam"),
                        bytes: 123,
                        records: 4,
                    },
                    SourceFile {
                        file: "name with spaces.csv".into(),
                        relation: "Target".into(),
                        sha256: sha256(b"tgt"),
                        bytes: 99,
                        records: 2,
                    },
                ],
            }],
        }
    }

    #[test]
    fn round_trip() {
        let m = sample();
        let text = m.to_text();
        assert!(text.starts_with("citesys-datasets v1\n"));
        let back = DatasetManifest::from_text(&text).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn crlf_tolerated() {
        let text = sample().to_text().replace('\n', "\r\n");
        assert_eq!(DatasetManifest::from_text(&text).unwrap(), sample());
    }

    #[test]
    fn version_gate_and_bad_directives() {
        assert!(DatasetManifest::from_text("citesys-datasets v2\n").is_err());
        assert!(DatasetManifest::from_text("").is_err());
        assert!(DatasetManifest::from_text("citesys-datasets v1\nbogus line\n").is_err());
        assert!(DatasetManifest::from_text("citesys-datasets v1\ndataset x\n").is_err());
    }

    #[test]
    fn register_replaces_same_name() {
        let mut m = sample();
        let mut again = m.datasets[0].clone();
        again.last_version = 40;
        m.register(again);
        assert_eq!(m.datasets.len(), 1);
        assert_eq!(m.datasets[0].last_version, 40);
    }

    #[test]
    fn verify_detects_tamper_and_missing() {
        let dir = std::env::temp_dir().join(format!("citesys-ingest-mt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let file = dir.join("Family.csv");
        std::fs::write(&file, b"\"FID:int\"\n1\n").unwrap();
        let (digest, bytes) = hash_file(&file).unwrap();
        let m = DatasetManifest {
            datasets: vec![DatasetEntry {
                name: "d".into(),
                dir: dir.display().to_string(),
                loaded_by: "t".into(),
                loaded_at: 0,
                first_version: 1,
                last_version: 1,
                fixity: sha256(b"x"),
                sources: vec![
                    SourceFile {
                        file: "Family.csv".into(),
                        relation: "Family".into(),
                        sha256: digest,
                        bytes,
                        records: 1,
                    },
                    SourceFile {
                        file: "Gone.csv".into(),
                        relation: "Gone".into(),
                        sha256: sha256(b"gone"),
                        bytes: 0,
                        records: 0,
                    },
                ],
            }],
        };
        let issues = verify_sources(&m, None).unwrap();
        assert_eq!(issues.len(), 1);
        assert!(matches!(issues[0], VerifyIssue::MissingSource { .. }));
        // One-byte tamper flips the digest; also exercise the base override.
        std::fs::write(&file, b"\"FID:int\"\n2\n").unwrap();
        let issues = verify_sources(&m, Some(&dir)).unwrap();
        assert!(issues
            .iter()
            .any(|i| matches!(i, VerifyIssue::SourceDigest { .. })));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn atomic_write_then_load() {
        let dir = std::env::temp_dir().join(format!("citesys-ingest-aw-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(MANIFEST_FILE);
        assert!(DatasetManifest::load(&path).unwrap().is_none());
        sample().write_atomic(&path).unwrap();
        assert_eq!(DatasetManifest::load(&path).unwrap().unwrap(), sample());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

//! Large-dump streaming acceptance: a multi-million-record CSV flows
//! through [`CsvReader`] with peak buffered memory proportional to the
//! batch size, not the dump size. The dump is synthesized by a `Read`
//! impl so the test neither writes tens of megabytes to disk nor holds
//! them in memory — exactly the bound the reader itself must honor.

use std::io::{BufReader, Read};

use citesys_ingest::{CsvReader, IngestConfig};

/// Generates `records` CSV data rows (plus a header) on the fly.
struct SyntheticCsv {
    next: u64,
    records: u64,
    pending: Vec<u8>,
    off: usize,
    emitted: u64,
}

impl SyntheticCsv {
    fn new(records: u64) -> Self {
        SyntheticCsv {
            next: 0,
            records,
            pending: b"\"FID:int\",\"FName:text\",\"Desc:text\"\n".to_vec(),
            off: 0,
            emitted: 0,
        }
    }
}

impl Read for SyntheticCsv {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.off == self.pending.len() {
            if self.next == self.records {
                return Ok(0);
            }
            let i = self.next;
            self.next += 1;
            self.pending =
                format!("{i},\"family {i}\",\"descriptive text for row {i}\"\n").into_bytes();
            self.off = 0;
        }
        let n = (self.pending.len() - self.off).min(buf.len());
        buf[..n].copy_from_slice(&self.pending[self.off..self.off + n]);
        self.off += n;
        self.emitted += n as u64;
        Ok(n)
    }
}

/// ≥2M records stream through with the reader's high-water mark bounded
/// by the batch size: with 10k-tuple batches over ~45-byte rows, the
/// bound is a couple of MB while the dump itself is ~90MB.
#[test]
fn two_million_records_stream_with_bounded_memory() {
    const RECORDS: u64 = 2_000_000;
    let cfg = IngestConfig { batch_size: 10_000 };
    let src = BufReader::new(SyntheticCsv::new(RECORDS));
    let mut r = CsvReader::new("Family", None, src, &cfg).expect("header");
    let mut total = 0u64;
    let mut batches = 0u64;
    while let Some(batch) = r.next_batch().expect("batch") {
        total += batch.len() as u64;
        batches += 1;
        // Tuples are dropped per batch, as a store commit would after
        // sealing the version — nothing accumulates across batches.
    }
    assert_eq!(total, RECORDS);
    assert_eq!(batches, RECORDS.div_ceil(cfg.batch_size as u64));
    // The whole dump is ~90MB; the reader may hold one batch of rows
    // (~0.5MB) plus line/record scratch. 4MB is an order-of-magnitude
    // ceiling that still fails instantly if batching ever regresses to
    // whole-file buffering.
    let peak = r.peak_buffered_bytes();
    assert!(
        peak < 4 * 1024 * 1024,
        "peak buffered {peak} bytes — not bounded by batch size"
    );
}

/// The bound scales with the configured batch size: a tiny batch keeps
/// the high-water mark tiny even over a large dump.
#[test]
fn peak_memory_tracks_batch_size() {
    const RECORDS: u64 = 200_000;
    let cfg = IngestConfig { batch_size: 100 };
    let src = BufReader::new(SyntheticCsv::new(RECORDS));
    let mut r = CsvReader::new("Family", None, src, &cfg).expect("header");
    while r.next_batch().expect("batch").is_some() {}
    assert_eq!(r.records(), RECORDS);
    let peak = r.peak_buffered_bytes();
    assert!(
        peak < 64 * 1024,
        "peak buffered {peak} bytes for 100-tuple batches"
    );
}

//! Most-general unification of terms and atoms.
//!
//! Used by the rewriting algorithms: a query subgoal is unified with a view
//! subgoal (after renaming the view apart) to build candidate view atoms.
//! Unlike homomorphism matching, *both* sides' variables may be bound.

use crate::atom::Atom;
use crate::term::{Substitution, Term};

/// Computes the most general unifier of two terms under an existing
/// substitution, extending `subst` in place. Returns `false` (leaving
/// `subst` in an unspecified but internally consistent state — callers
/// should clone before speculative unification) when the terms do not
/// unify.
pub fn unify_terms(a: &Term, b: &Term, subst: &mut Substitution) -> bool {
    let ra = resolve(a, subst);
    let rb = resolve(b, subst);
    match (ra, rb) {
        (Term::Const(x), Term::Const(y)) => x == y,
        (Term::Var(v), t) | (t, Term::Var(v)) => {
            if t == Term::Var(v.clone()) {
                true
            } else {
                subst.bind(v, t);
                true
            }
        }
    }
}

/// Unifies two atoms (same predicate, same arity, all argument pairs).
pub fn unify_atoms(a: &Atom, b: &Atom, subst: &mut Substitution) -> bool {
    if a.predicate != b.predicate || a.arity() != b.arity() {
        return false;
    }
    a.terms
        .iter()
        .zip(&b.terms)
        .all(|(x, y)| unify_terms(x, y, subst))
}

/// Convenience: computes an MGU of two atoms from scratch.
pub fn mgu(a: &Atom, b: &Atom) -> Option<Substitution> {
    let mut s = Substitution::new();
    if unify_atoms(a, b, &mut s) {
        s.resolve();
        Some(s)
    } else {
        None
    }
}

/// Follows variable bindings in `subst` until a non-variable or unbound
/// variable is reached (bounded walk; substitutions built through
/// [`unify_terms`] are acyclic because a variable is never bound to itself).
fn resolve(t: &Term, subst: &Substitution) -> Term {
    let mut current = t.clone();
    // Bound by substitution size: each step follows a distinct binding.
    for _ in 0..=subst.len() {
        match &current {
            Term::Var(v) => match subst.get(v) {
                Some(next) if next != &current => current = next.clone(),
                _ => return current,
            },
            Term::Const(_) => return current,
        }
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Term;

    fn atom(p: &str, ts: Vec<Term>) -> Atom {
        Atom::new(p, ts)
    }

    #[test]
    fn unify_var_with_const() {
        let a = atom("R", vec![Term::var("X"), Term::var("Y")]);
        let b = atom("R", vec![Term::constant(1), Term::var("Z")]);
        let s = mgu(&a, &b).unwrap();
        assert_eq!(s.apply_term(&Term::var("X")), Term::constant(1));
        // Y and Z are aliased (one maps to the other).
        let y = s.apply_term(&Term::var("Y"));
        let z = s.apply_term(&Term::var("Z"));
        assert!(
            y == Term::var("Z") && z == Term::var("Z")
                || y == Term::var("Y") && z == Term::var("Y")
                || y == z
        );
    }

    #[test]
    fn unify_conflicting_constants_fails() {
        let a = atom("R", vec![Term::constant(1)]);
        let b = atom("R", vec![Term::constant(2)]);
        assert!(mgu(&a, &b).is_none());
    }

    #[test]
    fn unify_different_predicates_fails() {
        let a = atom("R", vec![Term::var("X")]);
        let b = atom("S", vec![Term::var("X")]);
        assert!(mgu(&a, &b).is_none());
    }

    #[test]
    fn unify_arity_mismatch_fails() {
        let a = atom("R", vec![Term::var("X")]);
        let b = atom("R", vec![Term::var("X"), Term::var("Y")]);
        assert!(mgu(&a, &b).is_none());
    }

    #[test]
    fn transitive_binding_through_shared_var() {
        // R(X, X) with R(Y, 3) forces X = Y = 3.
        let a = atom("R", vec![Term::var("X"), Term::var("X")]);
        let b = atom("R", vec![Term::var("Y"), Term::constant(3)]);
        let s = mgu(&a, &b).unwrap();
        assert_eq!(s.apply_term(&Term::var("X")), Term::constant(3));
        assert_eq!(s.apply_term(&Term::var("Y")), Term::constant(3));
    }

    #[test]
    fn occurs_check_not_needed_for_flat_terms() {
        // Terms are flat (no function symbols), so X with X unifies trivially.
        let a = atom("R", vec![Term::var("X")]);
        let b = atom("R", vec![Term::var("X")]);
        let s = mgu(&a, &b).unwrap();
        assert!(s.is_empty());
    }

    #[test]
    fn unify_is_symmetric_on_success() {
        let a = atom("R", vec![Term::var("X"), Term::constant("c")]);
        let b = atom("R", vec![Term::constant("d"), Term::var("W")]);
        let s1 = mgu(&a, &b).unwrap();
        let s2 = mgu(&b, &a).unwrap();
        assert_eq!(s1.apply_term(&Term::var("X")), Term::constant("d"));
        assert_eq!(s2.apply_term(&Term::var("X")), Term::constant("d"));
        assert_eq!(s1.apply_term(&Term::var("W")), Term::constant("c"));
        assert_eq!(s2.apply_term(&Term::var("W")), Term::constant("c"));
    }
}

//! Terms (variables or constants) and substitutions over them.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::symbol::Symbol;
use crate::value::Value;

/// A term in a query atom: either a variable or a constant.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Term {
    /// A named variable, e.g. `FID`.
    Var(Symbol),
    /// A constant value, e.g. `11` or `'Calcitonin'`.
    Const(Value),
}

impl Term {
    /// Builds a variable term.
    pub fn var(name: impl AsRef<str>) -> Self {
        Term::Var(Symbol::new(name))
    }

    /// Builds a constant term.
    pub fn constant(v: impl Into<Value>) -> Self {
        Term::Const(v.into())
    }

    /// Returns the variable name, if this term is a variable.
    pub fn as_var(&self) -> Option<&Symbol> {
        match self {
            Term::Var(v) => Some(v),
            Term::Const(_) => None,
        }
    }

    /// Returns the constant value, if this term is a constant.
    pub fn as_const(&self) -> Option<&Value> {
        match self {
            Term::Var(_) => None,
            Term::Const(c) => Some(c),
        }
    }

    /// True when the term is a variable.
    pub fn is_var(&self) -> bool {
        matches!(self, Term::Var(_))
    }

    /// True when the term is a constant.
    pub fn is_const(&self) -> bool {
        matches!(self, Term::Const(_))
    }
}

impl fmt::Debug for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v}"),
            Term::Const(c) => write!(f, "{c:?}"),
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v}"),
            Term::Const(Value::Text(s)) => write!(f, "'{}'", escape_text(s.as_str())),
            Term::Const(Value::Bool(b)) => write!(f, "{}", if *b { "#t" } else { "#f" }),
            Term::Const(c) => write!(f, "{c}"),
        }
    }
}

/// Escapes a text constant for the surface syntax (single-quoted strings).
pub(crate) fn escape_text(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\'' => out.push_str("\\'"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            other => out.push(other),
        }
    }
    out
}

impl From<Value> for Term {
    fn from(v: Value) -> Self {
        Term::Const(v)
    }
}

/// A mapping from variables to terms.
///
/// Substitutions are the workhorse of unification, homomorphism search and
/// view unfolding. A `BTreeMap` keeps iteration deterministic, which in turn
/// keeps rewriting output and test expectations stable.
#[derive(Clone, Default, PartialEq, Eq, Debug)]
pub struct Substitution {
    map: BTreeMap<Symbol, Term>,
}

impl Substitution {
    /// The empty substitution.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a substitution from `(variable, term)` pairs.
    pub fn from_pairs<I, V, T>(pairs: I) -> Self
    where
        I: IntoIterator<Item = (V, T)>,
        V: Into<Symbol>,
        T: Into<Term>,
    {
        let mut s = Self::new();
        for (v, t) in pairs {
            s.bind(v.into(), t.into());
        }
        s
    }

    /// Number of bound variables.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no variable is bound.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Binds `var` to `term`, replacing any previous binding.
    pub fn bind(&mut self, var: Symbol, term: Term) {
        self.map.insert(var, term);
    }

    /// Looks up the binding for `var`.
    pub fn get(&self, var: &Symbol) -> Option<&Term> {
        self.map.get(var)
    }

    /// True when `var` is bound.
    pub fn contains(&self, var: &Symbol) -> bool {
        self.map.contains_key(var)
    }

    /// Applies the substitution to a term (variables without a binding are
    /// left untouched; constants always map to themselves).
    pub fn apply_term(&self, t: &Term) -> Term {
        match t {
            Term::Var(v) => self.map.get(v).cloned().unwrap_or_else(|| t.clone()),
            Term::Const(_) => t.clone(),
        }
    }

    /// Applies the substitution once to every term in `terms`.
    pub fn apply_terms(&self, terms: &[Term]) -> Vec<Term> {
        terms.iter().map(|t| self.apply_term(t)).collect()
    }

    /// Applies the substitution to its own right-hand sides until fixpoint,
    /// so that chains `X -> Y, Y -> c` become `X -> c, Y -> c`.
    ///
    /// Panics are avoided by bounding iterations at the substitution size;
    /// cyclic chains (`X -> Y, Y -> X`) simply stop changing.
    pub fn resolve(&mut self) {
        for _ in 0..self.map.len() {
            let mut changed = false;
            let snapshot = self.map.clone();
            for term in self.map.values_mut() {
                let Term::Var(v) = &*term else { continue };
                if let Some(target) = snapshot.get(v) {
                    let is_self = matches!(target, Term::Var(tv) if tv == v);
                    if !is_self && target != term {
                        *term = target.clone();
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
    }

    /// Iterates over `(variable, term)` bindings in deterministic order.
    pub fn iter(&self) -> impl Iterator<Item = (&Symbol, &Term)> {
        self.map.iter()
    }

    /// Composes `self` with `other`: the result applies `self` first, then
    /// `other` to the image.
    pub fn compose(&self, other: &Substitution) -> Substitution {
        let mut out = Substitution::new();
        for (v, t) in self.iter() {
            out.bind(v.clone(), other.apply_term(t));
        }
        for (v, t) in other.iter() {
            if !out.contains(v) {
                out.bind(v.clone(), t.clone());
            }
        }
        out
    }
}

impl fmt::Display for Substitution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (v, t)) in self.map.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v} -> {t}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn term_accessors() {
        let v = Term::var("X");
        let c = Term::constant(5);
        assert!(v.is_var() && !v.is_const());
        assert!(c.is_const() && !c.is_var());
        assert_eq!(v.as_var().unwrap().as_str(), "X");
        assert_eq!(c.as_const(), Some(&Value::Int(5)));
    }

    #[test]
    fn display_quotes_text_constants() {
        assert_eq!(Term::var("FID").to_string(), "FID");
        assert_eq!(Term::constant("Calcitonin").to_string(), "'Calcitonin'");
        assert_eq!(Term::constant(11).to_string(), "11");
    }

    #[test]
    fn substitution_application() {
        let s = Substitution::from_pairs([("X", Term::constant(1)), ("Y", Term::var("Z"))]);
        assert_eq!(s.apply_term(&Term::var("X")), Term::constant(1));
        assert_eq!(s.apply_term(&Term::var("Y")), Term::var("Z"));
        assert_eq!(s.apply_term(&Term::var("W")), Term::var("W"));
        assert_eq!(s.apply_term(&Term::constant(9)), Term::constant(9));
    }

    #[test]
    fn resolve_follows_chains() {
        let mut s = Substitution::from_pairs([("X", Term::var("Y")), ("Y", Term::constant(3))]);
        s.resolve();
        assert_eq!(s.get(&Symbol::new("X")), Some(&Term::constant(3)));
    }

    #[test]
    fn resolve_terminates_on_cycles() {
        let mut s = Substitution::from_pairs([("X", Term::var("Y")), ("Y", Term::var("X"))]);
        s.resolve(); // must not loop forever
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn compose_applies_left_then_right() {
        let s1 = Substitution::from_pairs([("X", Term::var("Y"))]);
        let s2 = Substitution::from_pairs([("Y", Term::constant(7))]);
        let c = s1.compose(&s2);
        assert_eq!(c.apply_term(&Term::var("X")), Term::constant(7));
        assert_eq!(c.apply_term(&Term::var("Y")), Term::constant(7));
    }

    #[test]
    fn display_substitution() {
        let s = Substitution::from_pairs([("X", Term::constant(1))]);
        assert_eq!(s.to_string(), "{X -> 1}");
    }
}

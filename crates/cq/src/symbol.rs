//! Cheap, clonable interned-ish strings used for predicate and variable names.
//!
//! A [`Symbol`] wraps an `Arc<str>`, so cloning is a reference-count bump and
//! equality is a pointer check followed by a string compare. Queries are
//! copied heavily during rewriting and containment search, which makes cheap
//! name clones worthwhile (see the heap-allocation guidance in the Rust
//! Performance Book).

use std::borrow::Borrow;
use std::fmt;
use std::sync::Arc;

use serde::de::{Deserialize, Deserializer};
use serde::ser::{Serialize, Serializer};

/// An immutable, cheaply clonable name (predicate, variable, or attribute).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Symbol(Arc<str>);

impl Symbol {
    /// Creates a symbol from anything string-like.
    pub fn new(name: impl AsRef<str>) -> Self {
        Symbol(Arc::from(name.as_ref()))
    }

    /// Returns the underlying string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Returns a symbol suffixed with `_{n}`; used to rename variables apart.
    pub fn with_suffix(&self, n: usize) -> Self {
        Symbol::new(format!("{}_{n}", self.0))
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Self {
        Symbol::new(s)
    }
}

impl From<String> for Symbol {
    fn from(s: String) -> Self {
        Symbol(Arc::from(s))
    }
}

impl Borrow<str> for Symbol {
    fn borrow(&self) -> &str {
        self.as_str()
    }
}

impl AsRef<str> for Symbol {
    fn as_ref(&self) -> &str {
        self.as_str()
    }
}

impl PartialEq<str> for Symbol {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for Symbol {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

impl Serialize for Symbol {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self.as_str())
    }
}

impl<'de> Deserialize<'de> for Symbol {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let s = String::deserialize(deserializer)?;
        Ok(Symbol::from(s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn construction_and_equality() {
        let a = Symbol::new("Family");
        let b = Symbol::from("Family");
        let c: Symbol = String::from("Committee").into();
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.as_str(), "Family");
        assert_eq!(a, "Family");
    }

    #[test]
    fn clone_is_shallow() {
        let a = Symbol::new("FID");
        let b = a.clone();
        assert!(Arc::ptr_eq(&a.0, &b.0));
    }

    #[test]
    fn ordering_is_lexicographic() {
        let mut v = [Symbol::new("b"), Symbol::new("a"), Symbol::new("c")];
        v.sort();
        let names: Vec<&str> = v.iter().map(Symbol::as_str).collect();
        assert_eq!(names, ["a", "b", "c"]);
    }

    #[test]
    fn usable_as_hashmap_key_via_str_borrow() {
        let mut m: HashMap<Symbol, i32> = HashMap::new();
        m.insert(Symbol::new("FName"), 1);
        assert_eq!(m.get("FName"), Some(&1));
    }

    #[test]
    fn with_suffix_renames() {
        let a = Symbol::new("X");
        assert_eq!(a.with_suffix(3).as_str(), "X_3");
    }

    #[test]
    fn display_and_debug() {
        let a = Symbol::new("V1");
        assert_eq!(format!("{a}"), "V1");
        assert_eq!(format!("{a:?}"), "V1");
    }
}

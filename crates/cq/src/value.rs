//! Constant values that may appear in query terms and database tuples.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::symbol::Symbol;

/// A constant database value.
///
/// The model deliberately stays small — the paper's examples use identifiers
/// (integers), names and free text. `Text` uses [`Symbol`] (an `Arc<str>`)
/// so values clone cheaply during join processing and annotation
/// propagation.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Value {
    /// 64-bit signed integer (identifiers, versions, timestamps).
    Int(i64),
    /// Interned UTF-8 text.
    Text(Symbol),
    /// Boolean flag.
    Bool(bool),
}

impl Value {
    /// Builds a text value.
    pub fn text(s: impl AsRef<str>) -> Self {
        Value::Text(Symbol::new(s))
    }

    /// Builds an integer value.
    pub fn int(i: i64) -> Self {
        Value::Int(i)
    }

    /// Returns the integer payload, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns the text payload, if this is a `Text`.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Returns the boolean payload, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Name of the value's runtime type, for error messages and schemas.
    pub fn type_name(&self) -> ValueType {
        match self {
            Value::Int(_) => ValueType::Int,
            Value::Text(_) => ValueType::Text,
            Value::Bool(_) => ValueType::Bool,
        }
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Text(s) => write!(f, "{:?}", s.as_str()),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Text(s) => write!(f, "{}", s.as_str()),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i64::from(i))
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::text(s)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Text(Symbol::from(s))
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

/// The type of a [`Value`], used by relation schemas.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum ValueType {
    /// 64-bit signed integer.
    Int,
    /// UTF-8 text.
    Text,
    /// Boolean.
    Bool,
}

impl fmt::Display for ValueType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValueType::Int => write!(f, "int"),
            ValueType::Text => write!(f, "text"),
            ValueType::Bool => write!(f, "bool"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        assert_eq!(Value::int(42).as_int(), Some(42));
        assert_eq!(Value::int(42).as_text(), None);
        assert_eq!(Value::text("abc").as_text(), Some("abc"));
        assert_eq!(Value::from(true).as_bool(), Some(true));
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(7i64), Value::Int(7));
        assert_eq!(Value::from(7i32), Value::Int(7));
        assert_eq!(Value::from("x"), Value::text("x"));
        assert_eq!(Value::from(String::from("x")), Value::text("x"));
    }

    #[test]
    fn type_names() {
        assert_eq!(Value::int(1).type_name(), ValueType::Int);
        assert_eq!(Value::text("a").type_name(), ValueType::Text);
        assert_eq!(Value::Bool(false).type_name(), ValueType::Bool);
        assert_eq!(ValueType::Int.to_string(), "int");
    }

    #[test]
    fn ordering_groups_by_variant() {
        let mut v = vec![
            Value::text("b"),
            Value::int(2),
            Value::int(1),
            Value::text("a"),
        ];
        v.sort();
        assert_eq!(
            v,
            vec![
                Value::int(1),
                Value::int(2),
                Value::text("a"),
                Value::text("b")
            ]
        );
    }

    #[test]
    fn debug_quotes_text_only() {
        assert_eq!(format!("{:?}", Value::int(3)), "3");
        assert_eq!(format!("{:?}", Value::text("hi")), "\"hi\"");
        assert_eq!(format!("{}", Value::text("hi")), "hi");
    }
}

//! # citesys-cq — conjunctive queries for the citation engine
//!
//! This crate implements the query language of *“Data Citation: A
//! Computational Challenge”* (Davidson, Buneman, Deutch, Milo, Silvello —
//! PODS 2017): **conjunctive queries optionally parameterized by
//! λ-variables**, together with the classical reasoning toolkit the paper's
//! rewriting approach relies on:
//!
//! * a Datalog-style parser for the paper's notation
//!   (`λ FID. V1(FID, FName, Desc) :- Family(FID, FName, Desc)`),
//! * homomorphism search (Chandra–Merlin containment mappings),
//! * containment / equivalence tests and core minimization,
//! * most-general unification (used by the view-rewriting algorithms in
//!   `citesys-rewrite`).
//!
//! ## Quick example
//!
//! ```
//! use citesys_cq::{parse_query, are_equivalent, minimize};
//!
//! let q = parse_query("Q(FName) :- Family(FID, FName, Desc), FamilyIntro(FID, Text)").unwrap();
//! let r = parse_query("Q(N) :- Family(I, N, D), FamilyIntro(I, T)").unwrap();
//! assert!(are_equivalent(&q, &r));
//!
//! let redundant = parse_query("Q(X) :- R(X, Y), R(X, Z)").unwrap();
//! assert_eq!(minimize(&redundant).body.len(), 1);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod atom;
pub mod chase;
pub mod contain;
pub mod error;
pub mod hom;
pub mod hypergraph;
pub mod parse;
pub mod query;
pub mod symbol;
pub mod term;
pub mod unify;
pub mod value;

pub use atom::{Atom, Literal};
pub use chase::{chase_keys, contained_under_keys, equivalent_under_keys, KeyConstraint};
pub use contain::{are_equivalent, is_contained_in, is_minimal, minimize};
pub use error::CqError;
pub use hom::{find_homomorphism, homomorphism_exists};
pub use hypergraph::{gyo, is_acyclic, join_forest, GyoResult};
pub use parse::{parse_program, parse_query};
pub use query::ConjunctiveQuery;
pub use symbol::Symbol;
pub use term::{Substitution, Term};
pub use unify::{mgu, unify_atoms, unify_terms};
pub use value::{Value, ValueType};

//! Homomorphism search between conjunctive queries.
//!
//! By the Chandra–Merlin theorem, `Q1 ⊆ Q2` (containment of certain answers
//! on every database) holds iff there is a *containment mapping* — a
//! homomorphism `h` from the variables of `Q2` to the terms of `Q1` such
//! that `h` maps every body atom of `Q2` onto some body atom of `Q1` and
//! maps the head of `Q2` exactly onto the head of `Q1`. Searching for `h`
//! is NP-complete in general; citation views are small, and the
//! most-constrained-first atom ordering below keeps practical instances
//! fast (measured in experiment E5).

use std::collections::HashMap;

use crate::atom::Atom;
use crate::query::ConjunctiveQuery;
use crate::symbol::Symbol;
use crate::term::{Substitution, Term};

/// Finds a homomorphism from `src` into `dst` that maps `src`'s head terms
/// exactly onto `dst`'s head terms, or `None` when no such mapping exists.
///
/// Variables of `dst` are treated as frozen constants (targets); variables
/// of `src` may map to any term of `dst`.
pub fn find_homomorphism(src: &ConjunctiveQuery, dst: &ConjunctiveQuery) -> Option<Substitution> {
    if src.head.arity() != dst.head.arity() {
        return None;
    }
    let mut binding = Substitution::new();
    // Seed from the head alignment.
    if !match_terms(&src.head.terms, &dst.head.terms, &mut binding) {
        return None;
    }
    // Index dst body atoms by predicate for candidate lookup.
    let mut by_pred: HashMap<&Symbol, Vec<&Atom>> = HashMap::new();
    for a in &dst.body {
        by_pred.entry(&a.predicate).or_default().push(a);
    }
    // Every src predicate must exist in dst at matching arity, otherwise
    // fail fast before the search.
    for a in &src.body {
        let found = by_pred
            .get(&a.predicate)
            .is_some_and(|cands| cands.iter().any(|c| c.arity() == a.arity()));
        if !found {
            return None;
        }
    }
    let mut remaining: Vec<&Atom> = src.body.iter().collect();
    if search(&mut remaining, &by_pred, &mut binding) {
        Some(binding)
    } else {
        None
    }
}

/// True iff a homomorphism (containment mapping) from `src` into `dst`
/// exists.
pub fn homomorphism_exists(src: &ConjunctiveQuery, dst: &ConjunctiveQuery) -> bool {
    find_homomorphism(src, dst).is_some()
}

/// Backtracking search: pick the most-constrained remaining atom (most
/// already-bound variables, then fewest candidates), try every candidate.
fn search(
    remaining: &mut Vec<&Atom>,
    by_pred: &HashMap<&Symbol, Vec<&Atom>>,
    binding: &mut Substitution,
) -> bool {
    if remaining.is_empty() {
        return true;
    }
    // Choose atom with the highest number of bound variables; break ties by
    // fewest same-predicate candidates.
    let (idx, _) = remaining
        .iter()
        .enumerate()
        .map(|(i, a)| {
            let bound = a.vars().filter(|v| binding.contains(v)).count();
            let cands = by_pred.get(&a.predicate).map_or(0, Vec::len);
            (i, (usize::MAX - bound, cands))
        })
        .min_by_key(|&(_, k)| k)
        .expect("remaining is non-empty");
    let atom = remaining.swap_remove(idx);
    if let Some(cands) = by_pred.get(&atom.predicate) {
        for cand in cands {
            if cand.arity() != atom.arity() {
                continue;
            }
            let saved = binding.clone();
            if match_terms(&atom.terms, &cand.terms, binding) && search(remaining, by_pred, binding)
            {
                remaining.push(atom);
                return true;
            }
            *binding = saved;
        }
    }
    remaining.push(atom);
    false
}

/// Extends `binding` so that each `src` term maps to the corresponding `dst`
/// term; dst-side terms are frozen (never bound).
fn match_terms(src: &[Term], dst: &[Term], binding: &mut Substitution) -> bool {
    if src.len() != dst.len() {
        return false;
    }
    for (s, d) in src.iter().zip(dst) {
        match s {
            Term::Const(c) => match d {
                Term::Const(dc) if dc == c => {}
                _ => return false,
            },
            Term::Var(v) => match binding.get(v) {
                Some(existing) => {
                    if existing != d {
                        return false;
                    }
                }
                None => binding.bind(v.clone(), d.clone()),
            },
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_query;

    fn q(s: &str) -> ConjunctiveQuery {
        parse_query(s).unwrap()
    }

    #[test]
    fn identity_homomorphism() {
        let a = q("Q(X) :- R(X, Y)");
        let h = find_homomorphism(&a, &a).unwrap();
        assert_eq!(h.apply_term(&Term::var("X")), Term::var("X"));
    }

    #[test]
    fn hom_from_general_to_specific() {
        // Q2(X) :- R(X, Y)  maps into  Q1(X) :- R(X, X)  via Y ↦ X.
        let q1 = q("Q(X) :- R(X, X)");
        let q2 = q("Q(X) :- R(X, Y)");
        let h = find_homomorphism(&q2, &q1).unwrap();
        assert_eq!(h.apply_term(&Term::var("Y")), Term::var("X"));
        // But not the other way: R(X,X) cannot map onto R(X,Y).
        assert!(find_homomorphism(&q1, &q2).is_none());
    }

    #[test]
    fn constants_must_match_exactly() {
        let q1 = q("Q(X) :- R(X, 1)");
        let q2 = q("Q(X) :- R(X, Y)");
        // var Y can map onto constant 1:
        assert!(find_homomorphism(&q2, &q1).is_some());
        // constant 1 cannot map onto var Y (frozen):
        assert!(find_homomorphism(&q1, &q2).is_none());
        let q3 = q("Q(X) :- R(X, 2)");
        assert!(find_homomorphism(&q1, &q3).is_none());
    }

    #[test]
    fn head_must_align() {
        let q1 = q("Q(X) :- R(X, Y)");
        let q2 = q("Q(Y) :- R(X, Y)");
        // src head X must map to dst head Y, but then R(X,Y) has no image
        // whose first column is Y... actually R(X,Y)↦? needs atom R(h(X)=Y, h(Y));
        // only atom is R(X,Y) so h(X)=X contradiction.
        assert!(find_homomorphism(&q1, &q2).is_none());
    }

    #[test]
    fn chain_into_collapsed_chain() {
        // path of length 2 maps into a self-loop
        let path = q("Q(X, Z) :- E(X, Y), E(Y, Z)");
        let looped = q("Q(W, W) :- E(W, W)");
        assert!(find_homomorphism(&path, &looped).is_some());
        assert!(find_homomorphism(&looped, &path).is_none());
    }

    #[test]
    fn predicate_mismatch_fails_fast() {
        let q1 = q("Q(X) :- R(X)");
        let q2 = q("Q(X) :- S(X)");
        assert!(find_homomorphism(&q1, &q2).is_none());
    }

    #[test]
    fn arity_mismatch_fails() {
        let q1 = q("Q(X) :- R(X)");
        let q2 = q("Q(X) :- R(X, X)");
        assert!(find_homomorphism(&q1, &q2).is_none());
    }

    #[test]
    fn multiway_join_hom() {
        // triangle maps into single reflexive node
        let tri = q("Q(X) :- E(X, Y), E(Y, Z), E(Z, X)");
        let node = q("Q(A) :- E(A, A)");
        assert!(find_homomorphism(&tri, &node).is_some());
    }

    #[test]
    fn empty_body_trivial_hom() {
        let c1 = q("C('x') :- true");
        let c2 = q("C('x') :- true");
        assert!(find_homomorphism(&c1, &c2).is_some());
        let c3 = q("C('y') :- true");
        assert!(find_homomorphism(&c1, &c3).is_none());
    }
}

//! Containment, equivalence and minimization of conjunctive queries.
//!
//! These are the correctness workhorses behind "rewrite Q into equivalent
//! queries using views" (§2 of the paper): every candidate rewriting is
//! expanded and checked *equivalent* to the original query, and rewritings
//! are *minimized* so that redundant view atoms do not pollute citations.

use crate::hom::homomorphism_exists;
use crate::query::ConjunctiveQuery;

/// True iff `q1 ⊆ q2`: on every database, every answer of `q1` is an answer
/// of `q2`. λ-parameters are ignored (the paper: "In the rewritings,
/// parameters are ignored").
pub fn is_contained_in(q1: &ConjunctiveQuery, q2: &ConjunctiveQuery) -> bool {
    // Chandra–Merlin: Q1 ⊆ Q2 iff a containment mapping Q2 → Q1 exists.
    homomorphism_exists(q2, q1)
}

/// True iff `q1 ≡ q2` (containment in both directions).
pub fn are_equivalent(q1: &ConjunctiveQuery, q2: &ConjunctiveQuery) -> bool {
    is_contained_in(q1, q2) && is_contained_in(q2, q1)
}

/// Computes the *core* of the query: a minimal equivalent subquery obtained
/// by repeatedly deleting body atoms whose removal preserves equivalence.
///
/// The result is unique up to isomorphism (the core of a CQ); parameters are
/// preserved verbatim. Runs in `O(n²)` homomorphism checks for a body of
/// `n` atoms.
pub fn minimize(q: &ConjunctiveQuery) -> ConjunctiveQuery {
    let mut current = q.clone();
    loop {
        let mut reduced = None;
        for i in 0..current.body.len() {
            let mut candidate_body = current.body.clone();
            candidate_body.remove(i);
            let candidate = ConjunctiveQuery {
                head: current.head.clone(),
                body: candidate_body,
                params: current.params.clone(),
            };
            // Removing an atom only weakens the query, so `current ⊆ candidate`
            // always holds; the candidate is equivalent iff `candidate ⊆ current`,
            // and the candidate must stay safe (head vars still covered).
            if candidate.validate().is_ok() && is_contained_in(&candidate, &current) {
                reduced = Some(candidate);
                break;
            }
        }
        match reduced {
            Some(c) => current = c,
            None => return current,
        }
    }
}

/// True iff no body atom can be removed while preserving equivalence.
pub fn is_minimal(q: &ConjunctiveQuery) -> bool {
    minimize(q).body.len() == q.body.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_query;

    fn q(s: &str) -> ConjunctiveQuery {
        parse_query(s).unwrap()
    }

    #[test]
    fn containment_is_reflexive() {
        let a = q("Q(X) :- R(X, Y), S(Y)");
        assert!(is_contained_in(&a, &a));
        assert!(are_equivalent(&a, &a));
    }

    #[test]
    fn specific_contained_in_general() {
        let spec = q("Q(X) :- R(X, X)");
        let gen = q("Q(X) :- R(X, Y)");
        assert!(is_contained_in(&spec, &gen));
        assert!(!is_contained_in(&gen, &spec));
        assert!(!are_equivalent(&spec, &gen));
    }

    #[test]
    fn constant_restriction_is_containment() {
        let spec = q("Q(X) :- R(X, 1)");
        let gen = q("Q(X) :- R(X, Y)");
        assert!(is_contained_in(&spec, &gen));
        assert!(!is_contained_in(&gen, &spec));
    }

    #[test]
    fn classic_redundant_atom_minimizes() {
        // R(X,Y), R(X,Z) — second atom folds onto the first.
        let redundant = q("Q(X, Y) :- R(X, Y), R(X, Z)");
        let m = minimize(&redundant);
        assert_eq!(m.body.len(), 1);
        assert!(are_equivalent(&m, &redundant));
        assert!(is_minimal(&m));
    }

    #[test]
    fn non_redundant_join_stays() {
        let chain = q("Q(X, Z) :- E(X, Y), E(Y, Z)");
        assert!(is_minimal(&chain));
        assert_eq!(minimize(&chain).body.len(), 2);
    }

    #[test]
    fn path_with_collapsible_tail() {
        // Q(X) :- E(X,Y), E(X,Z), E(Z,W) — E(X,Y) folds into E(X,Z).
        let qq = q("Q(X) :- E(X, Y), E(X, Z), E(Z, W)");
        let m = minimize(&qq);
        assert_eq!(m.body.len(), 2);
        assert!(are_equivalent(&m, &qq));
    }

    #[test]
    fn safety_preserved_during_minimization() {
        // The only atom covering head var cannot be dropped even though a
        // hom exists after dropping (it would be unsafe).
        let qq = q("Q(X, Y) :- R(X, Y), S(Z)");
        let m = minimize(&qq);
        // S(Z) is genuinely redundant? No hom maps S(Z) into R(X,Y) (different
        // predicate), so body stays at 2.
        assert_eq!(m.body.len(), 2);
    }

    #[test]
    fn equivalence_up_to_renaming() {
        let a = q("Q(X) :- R(X, Y)");
        let b = q("Q(A) :- R(A, B)");
        assert!(are_equivalent(&a, &b));
    }

    #[test]
    fn different_head_projection_not_equivalent() {
        let a = q("Q(X) :- R(X, Y)");
        let b = q("Q(Y) :- R(X, Y)");
        assert!(!are_equivalent(&a, &b));
    }

    #[test]
    fn transitivity_spot_check() {
        let q1 = q("Q(X) :- R(X, X)");
        let q2 = q("Q(X) :- R(X, Y), R(Y, X)");
        let q3 = q("Q(X) :- R(X, Y)");
        assert!(is_contained_in(&q1, &q2));
        assert!(is_contained_in(&q2, &q3));
        assert!(is_contained_in(&q1, &q3));
    }

    #[test]
    fn paper_rewriting_expansions_equivalent() {
        // Expanding Q1(FName) :- V1(FID,FName,Desc), V3(FID,Text) with
        // V1 ↦ Family, V3 ↦ FamilyIntro gives exactly Q.
        let orig = q("Q(FName) :- Family(FID, FName, Desc), FamilyIntro(FID, Text)");
        let expanded = q("Q(FName) :- Family(FID, FName, Desc), FamilyIntro(FID, T2)");
        assert!(are_equivalent(&orig, &expanded));
    }

    #[test]
    fn minimize_constant_query_noop() {
        let c = q("C('x') :- true");
        assert_eq!(minimize(&c), c);
    }
}

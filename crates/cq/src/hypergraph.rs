//! Query hypergraphs: GYO reduction, α-acyclicity, join forests.
//!
//! The citation engine's cost concerns (§3 "Calculating citations") hinge
//! on query shape: acyclic (ear-removable) queries evaluate and minimize
//! cheaply, while cyclic cores are where containment's NP-hardness lives.
//! This module implements the classical Graham/Yu–Özsoyoğlu (GYO)
//! reduction over the query's hypergraph — each body atom is a hyperedge
//! over its variables — yielding an acyclicity test and a join forest
//! usable as an evaluation order.

use std::collections::{BTreeMap, BTreeSet};

use crate::query::ConjunctiveQuery;
use crate::symbol::Symbol;

/// Result of a GYO reduction.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct GyoResult {
    /// True when the query's hypergraph is α-acyclic.
    pub acyclic: bool,
    /// Ear-removal order: `(atom index, witness atom index)` — the witness
    /// is the removed ear's parent in the join forest (`None` for roots).
    /// Complete only when `acyclic` is true.
    pub removal_order: Vec<(usize, Option<usize>)>,
    /// Atom indices that could not be removed (empty iff acyclic).
    pub residue: Vec<usize>,
}

/// Runs the GYO reduction on the query's body hypergraph.
pub fn gyo(q: &ConjunctiveQuery) -> GyoResult {
    // Hyperedges: variable sets per atom (constants are irrelevant).
    let edges: Vec<BTreeSet<Symbol>> = q.body.iter().map(|a| a.vars().cloned().collect()).collect();
    let mut alive: Vec<bool> = vec![true; edges.len()];
    let mut removal_order = Vec::with_capacity(edges.len());
    let mut remaining = edges.len();

    while remaining > 0 {
        let mut removed_this_round = false;
        for i in 0..edges.len() {
            if !alive[i] {
                continue;
            }
            // Vertices of edge i shared with any other live edge.
            let shared: BTreeSet<&Symbol> = edges[i]
                .iter()
                .filter(|v| {
                    edges
                        .iter()
                        .enumerate()
                        .any(|(j, e)| j != i && alive[j] && e.contains(*v))
                })
                .collect();
            if shared.is_empty() {
                // Isolated edge: an ear with no parent (forest root).
                alive[i] = false;
                remaining -= 1;
                removal_order.push((i, None));
                removed_this_round = true;
                continue;
            }
            // An ear needs a live witness edge containing all shared vars.
            let witness = edges
                .iter()
                .enumerate()
                .find(|(j, e)| *j != i && alive[*j] && shared.iter().all(|v| e.contains(*v)));
            if let Some((w, _)) = witness {
                alive[i] = false;
                remaining -= 1;
                removal_order.push((i, Some(w)));
                removed_this_round = true;
            }
        }
        if !removed_this_round {
            break;
        }
    }

    let residue: Vec<usize> = alive
        .iter()
        .enumerate()
        .filter_map(|(i, &a)| a.then_some(i))
        .collect();
    GyoResult {
        acyclic: residue.is_empty(),
        removal_order,
        residue,
    }
}

/// True iff the query's hypergraph is α-acyclic.
pub fn is_acyclic(q: &ConjunctiveQuery) -> bool {
    gyo(q).acyclic
}

/// Builds a join forest from an acyclic query: `forest[i]` is the parent
/// atom index of atom `i` (`None` for roots). Returns `None` for cyclic
/// queries.
pub fn join_forest(q: &ConjunctiveQuery) -> Option<BTreeMap<usize, Option<usize>>> {
    let r = gyo(q);
    if !r.acyclic {
        return None;
    }
    Some(r.removal_order.into_iter().collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_query;

    fn q(s: &str) -> ConjunctiveQuery {
        parse_query(s).unwrap()
    }

    #[test]
    fn single_atom_acyclic() {
        assert!(is_acyclic(&q("Q(X) :- R(X, Y)")));
    }

    #[test]
    fn chain_acyclic() {
        assert!(is_acyclic(&q("Q(A, D) :- E(A, B), E(B, C), E(C, D)")));
    }

    #[test]
    fn star_acyclic() {
        assert!(is_acyclic(&q(
            "Q(C) :- Hub(C), S1(C, L1), S2(C, L2), S3(C, L3)"
        )));
    }

    #[test]
    fn triangle_cyclic() {
        let tri = q("Q(X) :- E(X, Y), E(Y, Z), E(Z, X)");
        let r = gyo(&tri);
        assert!(!r.acyclic);
        assert_eq!(r.residue.len(), 3, "the whole triangle is the residue");
    }

    #[test]
    fn square_cyclic() {
        assert!(!is_acyclic(&q(
            "Q(A) :- E(A, B), E(B, C), E(C, D), E(D, A)"
        )));
    }

    #[test]
    fn triangle_with_covering_edge_acyclic() {
        // Adding an edge covering all three vertices makes it α-acyclic
        // (the classic α-acyclicity subtlety).
        assert!(is_acyclic(&q(
            "Q(X) :- E(X, Y), E(Y, Z), E(Z, X), T(X, Y, Z)"
        )));
    }

    #[test]
    fn paper_query_acyclic() {
        assert!(is_acyclic(&q(
            "Q(FName) :- Family(FID, FName, Desc), FamilyIntro(FID, Text)"
        )));
    }

    #[test]
    fn join_forest_shape_for_chain() {
        let forest = join_forest(&q("Q(A, C) :- E(A, B), E(B, C)")).unwrap();
        assert_eq!(forest.len(), 2);
        // One atom is the other's parent; the root has no parent.
        let roots = forest.values().filter(|p| p.is_none()).count();
        assert_eq!(roots, 1);
    }

    #[test]
    fn join_forest_none_for_cyclic() {
        assert!(join_forest(&q("Q(X) :- E(X, Y), E(Y, Z), E(Z, X)")).is_none());
    }

    #[test]
    fn disconnected_components_form_forest() {
        let forest = join_forest(&q("Q(X, A) :- R(X, Y), S(A, B)")).unwrap();
        let roots = forest.values().filter(|p| p.is_none()).count();
        assert_eq!(roots, 2, "two cartesian components, two roots");
    }

    #[test]
    fn constants_do_not_affect_acyclicity() {
        assert!(is_acyclic(&q("Q(X) :- E(X, 1), E(1, X)")));
    }

    #[test]
    fn empty_body_acyclic() {
        assert!(is_acyclic(&q("C('x') :- true")));
    }
}

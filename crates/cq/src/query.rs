//! Conjunctive queries with optional λ-parameters.
//!
//! The paper writes parameterized views as
//! `λ FID. V1(FID, FName, Desc) :- Family(FID, FName, Desc)`.
//! Parameters must appear in the head, and subsets of result tuples agreeing
//! on all parameter values share a citation.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::atom::{Atom, Literal};
use crate::error::CqError;
use crate::symbol::Symbol;
use crate::term::{Substitution, Term};
use crate::value::Value;

/// A (safe, normalized) conjunctive query, optionally parameterized.
///
/// `head` is the head atom `Name(t1,…,tk)`; `body` is a conjunction of
/// relational atoms (equalities from the surface syntax have been
/// substituted away by [`ConjunctiveQuery::normalized`]); `params` are the
/// λ-variables, each of which must occur in the head.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct ConjunctiveQuery {
    /// Head atom: output predicate name and output terms.
    pub head: Atom,
    /// Body atoms (relational only, after normalization).
    pub body: Vec<Atom>,
    /// λ-parameters, in declaration order.
    pub params: Vec<Symbol>,
}

impl ConjunctiveQuery {
    /// Creates a query and validates it; equalities must already be gone.
    pub fn new(head: Atom, body: Vec<Atom>, params: Vec<Symbol>) -> Result<Self, CqError> {
        let q = ConjunctiveQuery { head, body, params };
        q.validate()?;
        Ok(q)
    }

    /// Creates a query from surface-syntax literals, eliminating equalities.
    ///
    /// Equality handling (standard CQ normalization):
    /// * `X = c` substitutes `c` for `X` everywhere (including the head);
    /// * `X = Y` unifies the two variables;
    /// * `c = c` is dropped; `c = d` with `c ≠ d` makes the query
    ///   unsatisfiable, which is reported as an error.
    pub fn normalized(
        head: Atom,
        body: Vec<Literal>,
        params: Vec<Symbol>,
    ) -> Result<Self, CqError> {
        let mut subst = Substitution::new();
        let mut atoms: Vec<Atom> = Vec::with_capacity(body.len());
        // Two passes: first collect equality constraints into a substitution,
        // then apply it to head, atoms and parameters.
        for lit in &body {
            if let Literal::Eq(l, r) = lit {
                let l = subst.apply_term(l);
                let r = subst.apply_term(r);
                match (l, r) {
                    (Term::Var(v), t) | (t, Term::Var(v)) => {
                        if Term::Var(v.clone()) != t {
                            subst.bind(v, t);
                            subst.resolve();
                        }
                    }
                    (Term::Const(a), Term::Const(b)) => {
                        if a != b {
                            return Err(CqError::Unsatisfiable {
                                left: a.to_string(),
                                right: b.to_string(),
                            });
                        }
                    }
                }
            }
        }
        for lit in body {
            if let Literal::Atom(a) = lit {
                atoms.push(a.apply(&subst));
            }
        }
        let head = head.apply(&subst);
        // A λ-parameter substituted by a constant disappears (it is pinned);
        // one renamed to another variable follows the renaming.
        let params = params
            .into_iter()
            .filter_map(|p| match subst.apply_term(&Term::Var(p.clone())) {
                Term::Var(v) => Some(v),
                Term::Const(_) => None,
            })
            .collect();
        Self::new(head, atoms, params)
    }

    /// Checks safety and parameter well-formedness.
    ///
    /// * Every head **variable** must occur in the body (range restriction) —
    ///   unless the body is empty, in which case the head must be ground
    ///   (constant queries arise from unparameterized citation queries such
    ///   as `CV2(D) :- D = "IUPHAR/BPS …"`).
    /// * Every λ-parameter must occur in the head (the paper requires
    ///   "parameters must appear in the head").
    pub fn validate(&self) -> Result<(), CqError> {
        let body_vars = self.body_var_set();
        for v in self.head.vars() {
            if !body_vars.contains(v) {
                return Err(CqError::UnsafeHeadVar {
                    query: self.head.predicate.to_string(),
                    var: v.to_string(),
                });
            }
        }
        let head_vars: BTreeSet<&Symbol> = self.head.vars().collect();
        for p in &self.params {
            if !head_vars.contains(p) {
                return Err(CqError::ParamNotInHead {
                    query: self.head.predicate.to_string(),
                    param: p.to_string(),
                });
            }
        }
        let mut seen = BTreeSet::new();
        for p in &self.params {
            if !seen.insert(p) {
                return Err(CqError::DuplicateParam {
                    query: self.head.predicate.to_string(),
                    param: p.to_string(),
                });
            }
        }
        Ok(())
    }

    /// The query's name (head predicate).
    pub fn name(&self) -> &Symbol {
        &self.head.predicate
    }

    /// Output arity.
    pub fn arity(&self) -> usize {
        self.head.arity()
    }

    /// True when the query has λ-parameters.
    pub fn is_parameterized(&self) -> bool {
        !self.params.is_empty()
    }

    /// True when the body is empty (a constant query).
    pub fn is_constant(&self) -> bool {
        self.body.is_empty()
    }

    /// All distinct variables of the query, head first then body, in first
    /// occurrence order.
    pub fn vars(&self) -> Vec<Symbol> {
        let mut seen = BTreeSet::new();
        let mut out = Vec::new();
        for v in self
            .head
            .vars()
            .chain(self.body.iter().flat_map(|a| a.vars()))
        {
            if seen.insert(v.clone()) {
                out.push(v.clone());
            }
        }
        out
    }

    /// Set of variables occurring in the body.
    pub fn body_var_set(&self) -> BTreeSet<Symbol> {
        self.body.iter().flat_map(|a| a.vars().cloned()).collect()
    }

    /// Set of variables occurring in the head (the *distinguished* vars).
    pub fn head_var_set(&self) -> BTreeSet<Symbol> {
        self.head.vars().cloned().collect()
    }

    /// Variables occurring in the body but not the head (*existential*).
    pub fn existential_vars(&self) -> BTreeSet<Symbol> {
        let head = self.head_var_set();
        self.body_var_set()
            .into_iter()
            .filter(|v| !head.contains(v))
            .collect()
    }

    /// Positions of each λ-parameter in the head term list.
    ///
    /// Returns `(param, first head position)` pairs; validated queries are
    /// guaranteed to find every parameter.
    pub fn param_positions(&self) -> Vec<(Symbol, usize)> {
        self.params
            .iter()
            .map(|p| {
                let pos = self
                    .head
                    .terms
                    .iter()
                    .position(|t| t.as_var() == Some(p))
                    .expect("validated query: param occurs in head");
                (p.clone(), pos)
            })
            .collect()
    }

    /// Set of predicate names used in the body.
    pub fn predicates(&self) -> BTreeSet<Symbol> {
        self.body.iter().map(|a| a.predicate.clone()).collect()
    }

    /// Applies a substitution to head and body (parameters follow variable
    /// renamings and are dropped when instantiated to constants).
    pub fn apply(&self, s: &Substitution) -> ConjunctiveQuery {
        ConjunctiveQuery {
            head: self.head.apply(s),
            body: self.body.iter().map(|a| a.apply(s)).collect(),
            params: self
                .params
                .iter()
                .filter_map(|p| match s.apply_term(&Term::Var(p.clone())) {
                    Term::Var(v) => Some(v),
                    Term::Const(_) => None,
                })
                .collect(),
        }
    }

    /// Returns a variant of the query whose variables are all suffixed with
    /// `_{n}`, guaranteeing disjointness from any query that has not been
    /// renamed with the same `n`.
    pub fn rename_apart(&self, n: usize) -> ConjunctiveQuery {
        let s = Substitution::from_pairs(
            self.vars()
                .into_iter()
                .map(|v| (v.clone(), Term::Var(v.with_suffix(n)))),
        );
        self.apply(&s)
    }

    /// Canonical α-renaming: variables are renamed to `X0, X1, …` in first
    /// occurrence order (head first), and body atoms are sorted. Two queries
    /// that are syntactically identical up to variable names and body-atom
    /// order have equal canonical forms.
    pub fn canonical(&self) -> ConjunctiveQuery {
        let mut mapping: BTreeMap<Symbol, Term> = BTreeMap::new();
        for (i, v) in self.vars().into_iter().enumerate() {
            mapping.insert(v, Term::Var(Symbol::new(format!("X{i}"))));
        }
        let s = Substitution::from_pairs(mapping);
        let mut q = self.apply(&s);
        q.body.sort();
        q
    }

    /// Instantiates λ-parameters with the given values, producing an
    /// unparameterized query (the paper's `CV(p1,…,pn)` notation).
    pub fn instantiate(&self, values: &[Value]) -> Result<ConjunctiveQuery, CqError> {
        if values.len() != self.params.len() {
            return Err(CqError::ParamArity {
                query: self.name().to_string(),
                expected: self.params.len(),
                got: values.len(),
            });
        }
        let s = Substitution::from_pairs(
            self.params
                .iter()
                .cloned()
                .zip(values.iter().cloned().map(Term::Const)),
        );
        Ok(self.apply(&s))
    }
}

impl fmt::Display for ConjunctiveQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.params.is_empty() {
            write!(f, "λ ")?;
            for (i, p) in self.params.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{p}")?;
            }
            write!(f, ". ")?;
        }
        write!(f, "{} :- ", self.head)?;
        if self.body.is_empty() {
            write!(f, "true")?;
        } else {
            for (i, a) in self.body.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{a}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(n: &str) -> Term {
        Term::var(n)
    }

    fn family_v1() -> ConjunctiveQuery {
        // λ FID. V1(FID, FName, Desc) :- Family(FID, FName, Desc)
        ConjunctiveQuery::new(
            Atom::new("V1", vec![v("FID"), v("FName"), v("Desc")]),
            vec![Atom::new("Family", vec![v("FID"), v("FName"), v("Desc")])],
            vec![Symbol::new("FID")],
        )
        .unwrap()
    }

    #[test]
    fn paper_view_v1_is_well_formed() {
        let q = family_v1();
        assert!(q.is_parameterized());
        assert_eq!(q.arity(), 3);
        assert_eq!(q.param_positions(), vec![(Symbol::new("FID"), 0)]);
    }

    #[test]
    fn unsafe_head_var_rejected() {
        let e = ConjunctiveQuery::new(
            Atom::new("Q", vec![v("X"), v("Y")]),
            vec![Atom::new("R", vec![v("X")])],
            vec![],
        )
        .unwrap_err();
        assert!(matches!(e, CqError::UnsafeHeadVar { .. }));
    }

    #[test]
    fn param_must_be_in_head() {
        let e = ConjunctiveQuery::new(
            Atom::new("Q", vec![v("X")]),
            vec![Atom::new("R", vec![v("X"), v("Y")])],
            vec![Symbol::new("Y")],
        )
        .unwrap_err();
        assert!(matches!(e, CqError::ParamNotInHead { .. }));
    }

    #[test]
    fn duplicate_param_rejected() {
        let e = ConjunctiveQuery::new(
            Atom::new("Q", vec![v("X")]),
            vec![Atom::new("R", vec![v("X")])],
            vec![Symbol::new("X"), Symbol::new("X")],
        )
        .unwrap_err();
        assert!(matches!(e, CqError::DuplicateParam { .. }));
    }

    #[test]
    fn normalization_eliminates_var_const_equality() {
        // CV2(D) :- D = "IUPHAR"  →  CV2("IUPHAR") :- true
        let q = ConjunctiveQuery::normalized(
            Atom::new("CV2", vec![v("D")]),
            vec![Literal::Eq(v("D"), Term::constant("IUPHAR"))],
            vec![],
        )
        .unwrap();
        assert!(q.is_constant());
        assert_eq!(q.head.terms, vec![Term::constant("IUPHAR")]);
    }

    #[test]
    fn normalization_unifies_var_var_equality() {
        let q = ConjunctiveQuery::normalized(
            Atom::new("Q", vec![v("X")]),
            vec![
                Literal::Atom(Atom::new("R", vec![v("X"), v("Y")])),
                Literal::Eq(v("X"), v("Y")),
            ],
            vec![],
        )
        .unwrap();
        assert_eq!(q.body.len(), 1);
        let a = &q.body[0];
        assert_eq!(a.terms[0], a.terms[1]);
    }

    #[test]
    fn normalization_detects_unsatisfiable() {
        let e = ConjunctiveQuery::normalized(
            Atom::new("Q", vec![]),
            vec![Literal::Eq(Term::constant(1), Term::constant(2))],
            vec![],
        )
        .unwrap_err();
        assert!(matches!(e, CqError::Unsatisfiable { .. }));
    }

    #[test]
    fn normalization_pins_param_to_constant() {
        // λ FID. V(FID, N) :- Family(FID, N), FID = 11 — parameter pinned.
        let q = ConjunctiveQuery::normalized(
            Atom::new("V", vec![v("FID"), v("N")]),
            vec![
                Literal::Atom(Atom::new("Family", vec![v("FID"), v("N")])),
                Literal::Eq(v("FID"), Term::constant(11)),
            ],
            vec![Symbol::new("FID")],
        )
        .unwrap();
        assert!(!q.is_parameterized());
        assert_eq!(q.head.terms[0], Term::constant(11));
    }

    #[test]
    fn var_classification() {
        let q = ConjunctiveQuery::new(
            Atom::new("Q", vec![v("X")]),
            vec![
                Atom::new("R", vec![v("X"), v("Y")]),
                Atom::new("S", vec![v("Y"), v("Z")]),
            ],
            vec![],
        )
        .unwrap();
        assert_eq!(q.head_var_set().len(), 1);
        assert_eq!(q.existential_vars().len(), 2);
        assert_eq!(q.vars().len(), 3);
    }

    #[test]
    fn rename_apart_produces_disjoint_vars() {
        let q = family_v1();
        let r = q.rename_apart(7);
        let qv = q.body_var_set();
        for rv in r.body_var_set() {
            assert!(!qv.contains(&rv), "{rv} not renamed");
        }
        assert_eq!(r.params, vec![Symbol::new("FID_7")]);
    }

    #[test]
    fn canonical_is_alpha_invariant() {
        let q1 = family_v1();
        let s = Substitution::from_pairs([
            ("FID", Term::var("A")),
            ("FName", Term::var("B")),
            ("Desc", Term::var("C")),
        ]);
        let q2 = q1.apply(&s);
        assert_eq!(q1.canonical(), q2.canonical());
    }

    #[test]
    fn instantiate_replaces_params() {
        let q = family_v1();
        let i = q.instantiate(&[Value::int(11)]).unwrap();
        assert!(!i.is_parameterized());
        assert_eq!(i.head.terms[0], Term::constant(11));
        assert_eq!(i.body[0].terms[0], Term::constant(11));
        assert!(q.instantiate(&[]).is_err());
    }

    #[test]
    fn display_round_shape() {
        let q = family_v1();
        assert_eq!(
            q.to_string(),
            "λ FID. V1(FID, FName, Desc) :- Family(FID, FName, Desc)"
        );
    }
}

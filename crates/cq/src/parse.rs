//! Parser for the paper's Datalog-style surface syntax.
//!
//! Grammar (one rule; a *program* is a sequence of rules, each optionally
//! terminated by `.`):
//!
//! ```text
//! rule    := [ ("lambda" | "λ") ident ("," ident)* "." ]
//!            head ":-" body [ "." ]
//! head    := ident "(" [ term ("," term)* ] ")"
//! body    := "true" | literal ("," literal)*
//! literal := atom | term "=" term
//! atom    := ident "(" [ term ("," term)* ] ")"
//! term    := ident            (a variable)
//!          | integer          (e.g. 11, -3)
//!          | string           ('…' or "…", backslash escapes)
//!          | "#t" | "#f"      (booleans)
//! ```
//!
//! Any bare identifier in term position is a **variable** — the paper writes
//! variables like `FID`, `FName`, `Text`. Constants must be quoted or
//! numeric. Line comments start with `%` or `//`.

use crate::atom::{Atom, Literal};
use crate::error::CqError;
use crate::query::ConjunctiveQuery;
use crate::symbol::Symbol;
use crate::term::Term;
use crate::value::Value;

/// Parses a single conjunctive query (one rule).
pub fn parse_query(input: &str) -> Result<ConjunctiveQuery, CqError> {
    let mut p = Parser::new(input)?;
    let q = p.rule()?;
    p.expect_eof()?;
    Ok(q)
}

/// Parses a whole program: a sequence of rules.
pub fn parse_program(input: &str) -> Result<Vec<ConjunctiveQuery>, CqError> {
    let mut p = Parser::new(input)?;
    let mut out = Vec::new();
    while !p.at_eof() {
        out.push(p.rule()?);
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

#[derive(Clone, PartialEq, Eq, Debug)]
enum Tok {
    Ident(String),
    Int(i64),
    Str(String),
    BoolTrue,
    BoolFalse,
    Lambda,
    LParen,
    RParen,
    Comma,
    Dot,
    Turnstile, // :-
    Equals,
    Eof,
}

#[derive(Clone, Debug)]
struct Spanned {
    tok: Tok,
    line: usize,
    col: usize,
}

fn lex(input: &str) -> Result<Vec<Spanned>, CqError> {
    let mut toks = Vec::new();
    let mut chars = input.chars().peekable();
    let mut line = 1usize;
    let mut col = 1usize;

    macro_rules! err {
        ($l:expr, $c:expr, $($arg:tt)*) => {
            return Err(CqError::Parse { line: $l, col: $c, msg: format!($($arg)*) })
        };
    }

    while let Some(&c) = chars.peek() {
        let (tl, tc) = (line, col);
        match c {
            '\n' => {
                chars.next();
                line += 1;
                col = 1;
            }
            c if c.is_whitespace() => {
                chars.next();
                col += 1;
            }
            '%' => {
                while let Some(&c) = chars.peek() {
                    if c == '\n' {
                        break;
                    }
                    chars.next();
                    col += 1;
                }
            }
            '/' => {
                chars.next();
                col += 1;
                if chars.peek() == Some(&'/') {
                    while let Some(&c) = chars.peek() {
                        if c == '\n' {
                            break;
                        }
                        chars.next();
                        col += 1;
                    }
                } else {
                    err!(tl, tc, "unexpected '/'");
                }
            }
            '(' => {
                chars.next();
                col += 1;
                toks.push(Spanned {
                    tok: Tok::LParen,
                    line: tl,
                    col: tc,
                });
            }
            ')' => {
                chars.next();
                col += 1;
                toks.push(Spanned {
                    tok: Tok::RParen,
                    line: tl,
                    col: tc,
                });
            }
            ',' => {
                chars.next();
                col += 1;
                toks.push(Spanned {
                    tok: Tok::Comma,
                    line: tl,
                    col: tc,
                });
            }
            '.' => {
                chars.next();
                col += 1;
                toks.push(Spanned {
                    tok: Tok::Dot,
                    line: tl,
                    col: tc,
                });
            }
            '=' => {
                chars.next();
                col += 1;
                toks.push(Spanned {
                    tok: Tok::Equals,
                    line: tl,
                    col: tc,
                });
            }
            'λ' => {
                chars.next();
                col += 1;
                toks.push(Spanned {
                    tok: Tok::Lambda,
                    line: tl,
                    col: tc,
                });
            }
            ':' => {
                chars.next();
                col += 1;
                if chars.peek() == Some(&'-') {
                    chars.next();
                    col += 1;
                    toks.push(Spanned {
                        tok: Tok::Turnstile,
                        line: tl,
                        col: tc,
                    });
                } else {
                    err!(tl, tc, "expected ':-'");
                }
            }
            '#' => {
                chars.next();
                col += 1;
                match chars.next() {
                    Some('t') => {
                        col += 1;
                        toks.push(Spanned {
                            tok: Tok::BoolTrue,
                            line: tl,
                            col: tc,
                        });
                    }
                    Some('f') => {
                        col += 1;
                        toks.push(Spanned {
                            tok: Tok::BoolFalse,
                            line: tl,
                            col: tc,
                        });
                    }
                    other => err!(tl, tc, "expected #t or #f, found {other:?}"),
                }
            }
            '\'' | '"' => {
                let quote = c;
                chars.next();
                col += 1;
                let mut s = String::new();
                loop {
                    match chars.next() {
                        None => err!(tl, tc, "unterminated string"),
                        Some('\\') => {
                            col += 1;
                            match chars.next() {
                                Some('n') => {
                                    s.push('\n');
                                    col += 1;
                                }
                                Some('t') => {
                                    s.push('\t');
                                    col += 1;
                                }
                                Some(other) => {
                                    s.push(other);
                                    col += 1;
                                }
                                None => err!(tl, tc, "unterminated escape"),
                            }
                        }
                        Some(c) if c == quote => {
                            col += 1;
                            break;
                        }
                        Some('\n') => {
                            s.push('\n');
                            line += 1;
                            col = 1;
                        }
                        Some(other) => {
                            s.push(other);
                            col += 1;
                        }
                    }
                }
                toks.push(Spanned {
                    tok: Tok::Str(s),
                    line: tl,
                    col: tc,
                });
            }
            '-' | '0'..='9' => {
                let mut s = String::new();
                if c == '-' {
                    s.push('-');
                    chars.next();
                    col += 1;
                }
                let mut any = false;
                while let Some(&d) = chars.peek() {
                    if d.is_ascii_digit() {
                        s.push(d);
                        chars.next();
                        col += 1;
                        any = true;
                    } else {
                        break;
                    }
                }
                if !any {
                    err!(tl, tc, "expected digits after '-'");
                }
                let n: i64 = s.parse().map_err(|_| CqError::Parse {
                    line: tl,
                    col: tc,
                    msg: format!("integer out of range: {s}"),
                })?;
                toks.push(Spanned {
                    tok: Tok::Int(n),
                    line: tl,
                    col: tc,
                });
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut s = String::new();
                while let Some(&d) = chars.peek() {
                    if d.is_alphanumeric() || d == '_' {
                        s.push(d);
                        chars.next();
                        col += 1;
                    } else {
                        break;
                    }
                }
                let tok = if s == "lambda" {
                    Tok::Lambda
                } else {
                    Tok::Ident(s)
                };
                toks.push(Spanned {
                    tok,
                    line: tl,
                    col: tc,
                });
            }
            other => err!(tl, tc, "unexpected character {other:?}"),
        }
    }
    toks.push(Spanned {
        tok: Tok::Eof,
        line,
        col,
    });
    Ok(toks)
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn new(input: &str) -> Result<Self, CqError> {
        Ok(Parser {
            toks: lex(input)?,
            pos: 0,
        })
    }

    fn peek(&self) -> &Spanned {
        &self.toks[self.pos]
    }

    fn next(&mut self) -> Spanned {
        let t = self.toks[self.pos].clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn at_eof(&self) -> bool {
        self.peek().tok == Tok::Eof
    }

    fn error<T>(&self, msg: impl Into<String>) -> Result<T, CqError> {
        let s = self.peek();
        Err(CqError::Parse {
            line: s.line,
            col: s.col,
            msg: msg.into(),
        })
    }

    fn expect(&mut self, want: &Tok, what: &str) -> Result<(), CqError> {
        if &self.peek().tok == want {
            self.next();
            Ok(())
        } else {
            self.error(format!("expected {what}, found {:?}", self.peek().tok))
        }
    }

    fn expect_eof(&mut self) -> Result<(), CqError> {
        if self.at_eof() {
            Ok(())
        } else {
            self.error(format!("trailing input: {:?}", self.peek().tok))
        }
    }

    fn ident(&mut self, what: &str) -> Result<Symbol, CqError> {
        match &self.peek().tok {
            Tok::Ident(_) => {
                if let Tok::Ident(s) = self.next().tok {
                    Ok(Symbol::from(s))
                } else {
                    unreachable!("peeked an identifier")
                }
            }
            other => self.error(format!("expected {what}, found {other:?}")),
        }
    }

    fn rule(&mut self) -> Result<ConjunctiveQuery, CqError> {
        let mut params = Vec::new();
        if self.peek().tok == Tok::Lambda {
            self.next();
            loop {
                params.push(self.ident("λ-parameter")?);
                if self.peek().tok == Tok::Comma {
                    self.next();
                } else {
                    break;
                }
            }
            self.expect(&Tok::Dot, "'.' after λ-parameters")?;
        }
        let head = self.atom()?;
        self.expect(&Tok::Turnstile, "':-'")?;
        let body = self.body()?;
        if self.peek().tok == Tok::Dot {
            self.next();
        }
        ConjunctiveQuery::normalized(head, body, params)
    }

    fn body(&mut self) -> Result<Vec<Literal>, CqError> {
        // `true` denotes the empty body.
        if let Tok::Ident(s) = &self.peek().tok {
            if s == "true" {
                self.next();
                return Ok(Vec::new());
            }
        }
        let mut lits = vec![self.literal()?];
        while self.peek().tok == Tok::Comma {
            self.next();
            lits.push(self.literal()?);
        }
        Ok(lits)
    }

    fn literal(&mut self) -> Result<Literal, CqError> {
        // An identifier followed by '(' is an atom; otherwise we are looking
        // at `term = term`.
        if let Tok::Ident(_) = &self.peek().tok {
            if self.toks.get(self.pos + 1).map(|s| &s.tok) == Some(&Tok::LParen) {
                return Ok(Literal::Atom(self.atom()?));
            }
        }
        let l = self.term()?;
        self.expect(&Tok::Equals, "'='")?;
        let r = self.term()?;
        Ok(Literal::Eq(l, r))
    }

    fn atom(&mut self) -> Result<Atom, CqError> {
        let pred = self.ident("predicate name")?;
        self.expect(&Tok::LParen, "'('")?;
        let mut terms = Vec::new();
        if self.peek().tok != Tok::RParen {
            loop {
                terms.push(self.term()?);
                if self.peek().tok == Tok::Comma {
                    self.next();
                } else {
                    break;
                }
            }
        }
        self.expect(&Tok::RParen, "')'")?;
        Ok(Atom::new(pred, terms))
    }

    fn term(&mut self) -> Result<Term, CqError> {
        match self.peek().tok.clone() {
            Tok::Ident(s) => {
                self.next();
                Ok(Term::Var(Symbol::from(s)))
            }
            Tok::Int(n) => {
                self.next();
                Ok(Term::Const(Value::Int(n)))
            }
            Tok::Str(s) => {
                self.next();
                Ok(Term::Const(Value::from(s)))
            }
            Tok::BoolTrue => {
                self.next();
                Ok(Term::Const(Value::Bool(true)))
            }
            Tok::BoolFalse => {
                self.next();
                Ok(Term::Const(Value::Bool(false)))
            }
            other => self.error(format!("expected a term, found {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_view_v1() {
        let q =
            parse_query("lambda FID. V1(FID, FName, Desc) :- Family(FID, FName, Desc)").unwrap();
        assert_eq!(q.name().as_str(), "V1");
        assert_eq!(q.params, vec![Symbol::new("FID")]);
        assert_eq!(q.body.len(), 1);
        assert_eq!(q.body[0].predicate.as_str(), "Family");
    }

    #[test]
    fn parses_unicode_lambda() {
        let q = parse_query("λ FID. CV1(FID, PName) :- Committee(FID, PName)").unwrap();
        assert_eq!(q.params.len(), 1);
    }

    #[test]
    fn parses_constant_citation_query() {
        // CV2(D) :- D = "IUPHAR/BPS Guide to PHARMACOLOGY..."
        let q = parse_query(r#"CV2(D) :- D = "IUPHAR/BPS Guide to PHARMACOLOGY...""#).unwrap();
        assert!(q.is_constant());
        assert_eq!(
            q.head.terms[0],
            Term::constant("IUPHAR/BPS Guide to PHARMACOLOGY...")
        );
    }

    #[test]
    fn parses_join_query() {
        let q =
            parse_query("Q(FName) :- Family(FID, FName, Desc), FamilyIntro(FID, Text)").unwrap();
        assert_eq!(q.body.len(), 2);
        assert_eq!(q.arity(), 1);
    }

    #[test]
    fn parses_program_with_dots_and_comments() {
        let prog = r#"
            % the paper's three views
            λ FID. V1(FID, FName, Desc) :- Family(FID, FName, Desc).
            V2(FID, FName, Desc) :- Family(FID, FName, Desc).
            V3(FID, Text) :- FamilyIntro(FID, Text).  // unparameterized
        "#;
        let qs = parse_program(prog).unwrap();
        assert_eq!(qs.len(), 3);
        assert_eq!(qs[0].params.len(), 1);
        assert!(qs[1].params.is_empty());
    }

    #[test]
    fn parses_integers_booleans_and_escapes() {
        let q = parse_query(r#"Q(X) :- R(X, 11, -3, #t, #f, 'a\'b\\c\nd')"#).unwrap();
        let a = &q.body[0];
        assert_eq!(a.terms[1], Term::constant(11));
        assert_eq!(a.terms[2], Term::constant(-3));
        assert_eq!(a.terms[3], Term::constant(true));
        assert_eq!(a.terms[4], Term::constant(false));
        assert_eq!(a.terms[5], Term::constant("a'b\\c\nd"));
    }

    #[test]
    fn empty_body_via_true() {
        let q = parse_query("C(D) :- D = 'x'").unwrap();
        assert!(q.is_constant());
        let q2 = parse_query("C('x') :- true").unwrap();
        assert_eq!(q.head, q2.head);
    }

    #[test]
    fn zero_arity_atom() {
        let q = parse_query("Q() :- R()").unwrap();
        assert_eq!(q.arity(), 0);
        assert_eq!(q.body[0].arity(), 0);
    }

    #[test]
    fn error_positions_are_reported() {
        let e = parse_query("Q(X) :- R(X").unwrap_err();
        match e {
            CqError::Parse { line, col, .. } => {
                assert_eq!(line, 1);
                assert!(col >= 11);
            }
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse_query("Q(X) :- R(X) extra").is_err());
    }

    #[test]
    fn rejects_unterminated_string() {
        assert!(parse_query("Q(X) :- R(X, 'oops)").is_err());
    }

    #[test]
    fn rejects_bad_turnstile() {
        assert!(parse_query("Q(X) : R(X)").is_err());
    }

    #[test]
    fn display_parse_round_trip() {
        let srcs = [
            "λ FID. V1(FID, FName, Desc) :- Family(FID, FName, Desc)",
            "Q(FName) :- Family(FID, FName, Desc), FamilyIntro(FID, Text)",
            "C('IUPHAR') :- true",
            "Q(X) :- R(X, 11, 'a\\'b')",
        ];
        for src in srcs {
            let q1 = parse_query(src).unwrap();
            let q2 = parse_query(&q1.to_string()).unwrap();
            assert_eq!(q1, q2, "round-trip failed for {src}");
        }
    }
}

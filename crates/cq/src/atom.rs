//! Relational atoms and body literals.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::symbol::Symbol;
use crate::term::{Substitution, Term};

/// A relational atom `P(t1, …, tk)`.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Atom {
    /// Predicate (relation or view) name.
    pub predicate: Symbol,
    /// Argument terms, in schema order.
    pub terms: Vec<Term>,
}

impl Atom {
    /// Builds an atom from a predicate name and terms.
    pub fn new(predicate: impl Into<Symbol>, terms: Vec<Term>) -> Self {
        Atom {
            predicate: predicate.into(),
            terms,
        }
    }

    /// Arity of the atom.
    pub fn arity(&self) -> usize {
        self.terms.len()
    }

    /// Iterates over the variables occurring in the atom (with duplicates).
    pub fn vars(&self) -> impl Iterator<Item = &Symbol> {
        self.terms.iter().filter_map(Term::as_var)
    }

    /// Applies a substitution to every term.
    pub fn apply(&self, s: &Substitution) -> Atom {
        Atom {
            predicate: self.predicate.clone(),
            terms: s.apply_terms(&self.terms),
        }
    }

    /// True if the atom contains no variables.
    pub fn is_ground(&self) -> bool {
        self.terms.iter().all(Term::is_const)
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.predicate)?;
        for (i, t) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Debug for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

/// A body literal as written in the surface syntax: either a relational atom
/// or an equality `t1 = t2`.
///
/// Equalities are eliminated during [`crate::query::ConjunctiveQuery`]
/// normalization (variables are substituted away), so downstream algorithms
/// only ever see relational atoms.
#[derive(Clone, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Literal {
    /// A relational atom.
    Atom(Atom),
    /// An equality between two terms, e.g. `D = "IUPHAR/BPS …"`.
    Eq(Term, Term),
}

impl Literal {
    /// Returns the relational atom, if this literal is one.
    pub fn as_atom(&self) -> Option<&Atom> {
        match self {
            Literal::Atom(a) => Some(a),
            Literal::Eq(..) => None,
        }
    }
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Atom(a) => write!(f, "{a}"),
            Literal::Eq(l, r) => write!(f, "{l} = {r}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fam_atom() -> Atom {
        Atom::new(
            "Family",
            vec![Term::var("FID"), Term::var("FName"), Term::var("Desc")],
        )
    }

    #[test]
    fn arity_and_vars() {
        let a = fam_atom();
        assert_eq!(a.arity(), 3);
        let vars: Vec<&str> = a.vars().map(Symbol::as_str).collect();
        assert_eq!(vars, ["FID", "FName", "Desc"]);
    }

    #[test]
    fn apply_substitution() {
        let a = fam_atom();
        let s = Substitution::from_pairs([("FID", Term::constant(11))]);
        let b = a.apply(&s);
        assert_eq!(b.terms[0], Term::constant(11));
        assert_eq!(b.terms[1], Term::var("FName"));
    }

    #[test]
    fn groundness() {
        let a = Atom::new("R", vec![Term::constant(1), Term::constant("x")]);
        assert!(a.is_ground());
        assert!(!fam_atom().is_ground());
    }

    #[test]
    fn display_forms() {
        assert_eq!(fam_atom().to_string(), "Family(FID, FName, Desc)");
        let eq = Literal::Eq(Term::var("D"), Term::constant("GtoPdb"));
        assert_eq!(eq.to_string(), "D = 'GtoPdb'");
    }
}

//! The chase with key dependencies: containment and equivalence *under
//! constraints*.
//!
//! The paper's schema declares keys (`Family(FID, …)`, underlined in §2)
//! and cites the equational chase (Popa–Tannen, its reference \[10\]) among
//! the rewriting toolkit. Plain CQ equivalence ignores keys; chasing a
//! query with the key dependencies first makes the reasoning
//! constraint-aware — e.g. a self-join of `Family` on its key collapses,
//! unlocking rewritings plain equivalence would reject.
//!
//! Standard results used here: for egds (keys), `Q1 ⊆_Σ Q2` iff there is a
//! containment mapping from `Q2` into `chase_Σ(Q1)`; a chase failure
//! (two distinct constants forced equal) means the query has no answers on
//! any database satisfying Σ, hence is contained in everything.

use crate::hom::homomorphism_exists;
use crate::query::ConjunctiveQuery;
use crate::symbol::Symbol;
use crate::term::{Substitution, Term};

/// A key dependency: the values at `key` positions determine the whole
/// tuple of `predicate`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct KeyConstraint {
    /// Relation the key applies to.
    pub predicate: Symbol,
    /// Key attribute positions.
    pub key: Vec<usize>,
}

impl KeyConstraint {
    /// Builds a key constraint.
    pub fn new(predicate: impl Into<Symbol>, key: Vec<usize>) -> Self {
        KeyConstraint {
            predicate: predicate.into(),
            key,
        }
    }
}

/// Chases `q` with the given key dependencies to a fixpoint.
///
/// Returns `None` when the chase *fails*: the keys force two distinct
/// constants to be equal, so the query is unsatisfiable on every database
/// that respects the keys.
pub fn chase_keys(q: &ConjunctiveQuery, keys: &[KeyConstraint]) -> Option<ConjunctiveQuery> {
    let mut current = q.clone();
    loop {
        let mut step: Option<Substitution> = None;
        'outer: for i in 0..current.body.len() {
            for j in (i + 1)..current.body.len() {
                let (a, b) = (&current.body[i], &current.body[j]);
                if a.predicate != b.predicate || a.arity() != b.arity() {
                    continue;
                }
                let Some(kc) = keys
                    .iter()
                    .find(|k| k.predicate == a.predicate && !k.key.is_empty())
                else {
                    continue;
                };
                if kc.key.iter().any(|&p| p >= a.arity()) {
                    continue; // malformed constraint; ignore defensively
                }
                // Keys agree syntactically?
                if !kc.key.iter().all(|&p| a.terms[p] == b.terms[p]) {
                    continue;
                }
                // Equate every non-key position.
                let mut s = Substitution::new();
                let mut changed = false;
                for (pos, (ta, tb)) in a.terms.iter().zip(&b.terms).enumerate() {
                    if kc.key.contains(&pos) {
                        continue;
                    }
                    let ra = s.apply_term(ta);
                    let rb = s.apply_term(tb);
                    if ra == rb {
                        continue;
                    }
                    match (&ra, &rb) {
                        (Term::Var(v), t) | (t, Term::Var(v)) => {
                            s.bind(v.clone(), t.clone());
                            s.resolve();
                            changed = true;
                        }
                        (Term::Const(_), Term::Const(_)) => return None, // chase failure
                    }
                }
                if changed {
                    step = Some(s);
                    break 'outer;
                }
            }
        }
        match step {
            None => break,
            Some(s) => {
                current = current.apply(&s);
            }
        }
    }
    // Deduplicate atoms made identical by the equalities.
    let mut body = Vec::with_capacity(current.body.len());
    for a in current.body {
        if !body.contains(&a) {
            body.push(a);
        }
    }
    Some(ConjunctiveQuery {
        head: current.head,
        body,
        params: current.params,
    })
}

/// `q1 ⊆ q2` on every database satisfying the key dependencies.
pub fn contained_under_keys(
    q1: &ConjunctiveQuery,
    q2: &ConjunctiveQuery,
    keys: &[KeyConstraint],
) -> bool {
    match chase_keys(q1, keys) {
        None => true, // q1 unsatisfiable under the keys
        Some(chased) => homomorphism_exists(q2, &chased),
    }
}

/// `q1 ≡ q2` on every database satisfying the key dependencies.
pub fn equivalent_under_keys(
    q1: &ConjunctiveQuery,
    q2: &ConjunctiveQuery,
    keys: &[KeyConstraint],
) -> bool {
    contained_under_keys(q1, q2, keys) && contained_under_keys(q2, q1, keys)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contain::are_equivalent;
    use crate::parse::parse_query;

    fn family_key() -> Vec<KeyConstraint> {
        vec![KeyConstraint::new("Family", vec![0])]
    }

    #[test]
    fn self_join_on_key_collapses() {
        // Q(N) :- Family(F, N, D), Family(F, N2, D2): the key forces
        // N = N2 and D = D2 — one atom after the chase.
        let q = parse_query("Q(N) :- Family(F, N, D), Family(F, N2, D2)").unwrap();
        let chased = chase_keys(&q, &family_key()).unwrap();
        assert_eq!(chased.body.len(), 1);
        let single = parse_query("Q(N) :- Family(F, N, D)").unwrap();
        // Plain equivalence already holds here (homomorphism folds the
        // redundant atom), but the chased form is literally minimal.
        assert!(are_equivalent(&chased, &single));
    }

    #[test]
    fn key_equivalence_beyond_plain_equivalence() {
        // Q1 returns (N, N2) pairs from two Family atoms sharing a key;
        // plain semantics allows N ≠ N2, key semantics forces N = N2.
        let q1 = parse_query("Q(N, N2) :- Family(F, N, D), Family(F, N2, D2)").unwrap();
        let q2 = parse_query("Q(N, N) :- Family(F, N, D)").unwrap();
        assert!(!are_equivalent(&q1, &q2), "plain CQs differ");
        assert!(equivalent_under_keys(&q1, &q2, &family_key()));
    }

    #[test]
    fn chase_failure_means_unsatisfiable() {
        // Same key, conflicting constant names: no valid database.
        let q = parse_query("Q(F) :- Family(F, 'a', D), Family(F, 'b', D2)").unwrap();
        assert_eq!(chase_keys(&q, &family_key()), None);
        // Unsatisfiable ⊆ anything.
        let anything = parse_query("Q(F) :- Family(F, N, D)").unwrap();
        assert!(contained_under_keys(&q, &anything, &family_key()));
        // …but not the converse.
        assert!(!contained_under_keys(&anything, &q, &family_key()));
    }

    #[test]
    fn composite_key() {
        let keys = vec![KeyConstraint::new("Committee", vec![0, 1])];
        // Same (FID, PName) — third column unified.
        let q = parse_query("Q(A, B) :- Committee3(F, P, A), Committee3(F, P, B)").unwrap();
        // Different predicate name: constraint does not apply.
        let un = chase_keys(&q, &keys).unwrap();
        assert_eq!(un.body.len(), 2);
        let keys3 = vec![KeyConstraint::new("Committee3", vec![0, 1])];
        let chased = chase_keys(&q, &keys3).unwrap();
        assert_eq!(chased.body.len(), 1);
        assert_eq!(chased.head.terms[0], chased.head.terms[1]);
    }

    #[test]
    fn no_keys_chase_is_identity() {
        let q = parse_query("Q(N) :- Family(F, N, D), Family(F2, N, D2)").unwrap();
        let chased = chase_keys(&q, &[]).unwrap();
        assert_eq!(chased, q);
    }

    #[test]
    fn keys_on_different_key_values_do_not_fire() {
        // Different key variables: nothing to equate.
        let q = parse_query("Q(N, N2) :- Family(F, N, D), Family(G, N2, D2)").unwrap();
        let chased = chase_keys(&q, &family_key()).unwrap();
        assert_eq!(chased.body.len(), 2);
    }

    #[test]
    fn chase_cascades() {
        // Unifying D = D2 via Family's key makes the two R-atoms agree on
        // their key, cascading into a second chase step.
        let keys = vec![
            KeyConstraint::new("Family", vec![0]),
            KeyConstraint::new("R", vec![0]),
        ];
        let q = parse_query("Q(X, Y) :- Family(F, N, D), Family(F, N2, D2), R(D, X), R(D2, Y)")
            .unwrap();
        let chased = chase_keys(&q, &keys).unwrap();
        // Family atoms collapse to one, R atoms collapse to one, X = Y.
        assert_eq!(chased.body.len(), 2);
        assert_eq!(chased.head.terms[0], chased.head.terms[1]);
    }

    #[test]
    fn constant_key_values_fire() {
        let q = parse_query("Q(N, N2) :- Family(11, N, D), Family(11, N2, D2)").unwrap();
        let chased = chase_keys(&q, &family_key()).unwrap();
        assert_eq!(chased.body.len(), 1);
        assert_eq!(chased.head.terms[0], chased.head.terms[1]);
    }

    #[test]
    fn equivalence_under_keys_is_reflexive_and_respects_plain() {
        let q = parse_query("Q(N) :- Family(F, N, D), FamilyIntro(F, T)").unwrap();
        assert!(equivalent_under_keys(&q, &q, &family_key()));
        // Plain-equivalent queries stay equivalent under keys.
        let r = parse_query("Q(N) :- Family(G, N, E), FamilyIntro(G, U)").unwrap();
        assert!(equivalent_under_keys(&q, &r, &family_key()));
    }
}

//! Error types for query construction, parsing and reasoning.

use std::fmt;

/// Errors produced by the conjunctive-query layer.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CqError {
    /// A head variable does not occur in the body (violates safety).
    UnsafeHeadVar {
        /// Head predicate of the offending query.
        query: String,
        /// The unsafe variable.
        var: String,
    },
    /// A λ-parameter does not occur in the head.
    ParamNotInHead {
        /// Head predicate of the offending query.
        query: String,
        /// The missing parameter.
        param: String,
    },
    /// The same λ-parameter is declared twice.
    DuplicateParam {
        /// Head predicate of the offending query.
        query: String,
        /// The duplicated parameter.
        param: String,
    },
    /// Equality between distinct constants makes the query unsatisfiable.
    Unsatisfiable {
        /// Left constant.
        left: String,
        /// Right constant.
        right: String,
    },
    /// Wrong number of values supplied when instantiating parameters.
    ParamArity {
        /// Query being instantiated.
        query: String,
        /// Number of declared parameters.
        expected: usize,
        /// Number of values supplied.
        got: usize,
    },
    /// A syntax error at a given (line, column).
    Parse {
        /// 1-based line.
        line: usize,
        /// 1-based column.
        col: usize,
        /// Human-readable message.
        msg: String,
    },
}

impl fmt::Display for CqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CqError::UnsafeHeadVar { query, var } => {
                write!(
                    f,
                    "query {query}: head variable {var} does not occur in the body"
                )
            }
            CqError::ParamNotInHead { query, param } => {
                write!(
                    f,
                    "query {query}: λ-parameter {param} must appear in the head"
                )
            }
            CqError::DuplicateParam { query, param } => {
                write!(
                    f,
                    "query {query}: λ-parameter {param} declared more than once"
                )
            }
            CqError::Unsatisfiable { left, right } => {
                write!(f, "unsatisfiable equality: {left} = {right}")
            }
            CqError::ParamArity {
                query,
                expected,
                got,
            } => {
                write!(
                    f,
                    "query {query}: expected {expected} parameter values, got {got}"
                )
            }
            CqError::Parse { line, col, msg } => {
                write!(f, "parse error at {line}:{col}: {msg}")
            }
        }
    }
}

impl std::error::Error for CqError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = CqError::UnsafeHeadVar {
            query: "Q".into(),
            var: "X".into(),
        };
        assert!(e.to_string().contains("head variable X"));
        let e = CqError::Parse {
            line: 2,
            col: 5,
            msg: "expected ')'".into(),
        };
        assert_eq!(e.to_string(), "parse error at 2:5: expected ')'");
    }
}

//! Property-based tests for the conjunctive-query layer.

use citesys_cq::{
    are_equivalent, is_contained_in, minimize, parse_query, Atom, ConjunctiveQuery, Substitution,
    Symbol, Term, Value,
};
use proptest::prelude::*;

/// Strategy for a small pool of variable names.
fn var_name() -> impl Strategy<Value = String> {
    prop::sample::select(vec!["X", "Y", "Z", "W", "U", "V"]).prop_map(str::to_string)
}

/// Strategy for a constant value.
fn value() -> impl Strategy<Value = Value> {
    prop_oneof![
        (-20i64..20).prop_map(Value::Int),
        prop::sample::select(vec!["a", "b", "c"]).prop_map(Value::text),
        any::<bool>().prop_map(Value::Bool),
    ]
}

/// Strategy for a term: mostly variables, some constants.
fn term() -> impl Strategy<Value = Term> {
    prop_oneof![
        3 => var_name().prop_map(Term::var),
        1 => value().prop_map(Term::Const),
    ]
}

/// Strategy for a body atom over a fixed vocabulary (R/2, S/2, T/3, E/2).
fn body_atom() -> impl Strategy<Value = Atom> {
    prop_oneof![
        (term(), term()).prop_map(|(a, b)| Atom::new("R", vec![a, b])),
        (term(), term()).prop_map(|(a, b)| Atom::new("S", vec![a, b])),
        (term(), term(), term()).prop_map(|(a, b, c)| Atom::new("T", vec![a, b, c])),
        (term(), term()).prop_map(|(a, b)| Atom::new("E", vec![a, b])),
    ]
}

/// Strategy for a safe conjunctive query: the head projects a subset of the
/// body's variables.
fn cq() -> impl Strategy<Value = ConjunctiveQuery> {
    (
        prop::collection::vec(body_atom(), 1..5),
        any::<prop::sample::Index>(),
    )
        .prop_map(|(body, idx)| {
            let vars: Vec<Symbol> = {
                let mut seen = std::collections::BTreeSet::new();
                body.iter()
                    .flat_map(|a| a.vars().cloned())
                    .filter(|v| seen.insert(v.clone()))
                    .collect()
            };
            let head_terms: Vec<Term> = if vars.is_empty() {
                Vec::new()
            } else {
                // Project a prefix of the variables, at least one.
                let k = 1 + idx.index(vars.len());
                vars.iter().take(k).cloned().map(Term::Var).collect()
            };
            ConjunctiveQuery::new(Atom::new("Q", head_terms), body, vec![])
                .expect("generated query is safe by construction")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Printing a query and re-parsing it yields the same query.
    #[test]
    fn parse_display_round_trip(q in cq()) {
        let printed = q.to_string();
        let reparsed = parse_query(&printed).expect("printed query parses");
        prop_assert_eq!(q, reparsed);
    }

    /// Containment is reflexive.
    #[test]
    fn containment_reflexive(q in cq()) {
        prop_assert!(is_contained_in(&q, &q));
    }

    /// Minimization preserves equivalence.
    #[test]
    fn minimize_preserves_equivalence(q in cq()) {
        let m = minimize(&q);
        prop_assert!(are_equivalent(&q, &m));
        prop_assert!(m.body.len() <= q.body.len());
    }

    /// Minimization is idempotent.
    #[test]
    fn minimize_idempotent(q in cq()) {
        let m = minimize(&q);
        let mm = minimize(&m);
        prop_assert_eq!(m.body.len(), mm.body.len());
    }

    /// Adding a body atom that duplicates an existing one never changes the
    /// query's meaning.
    #[test]
    fn duplicate_atom_is_redundant(q in cq()) {
        let mut fat = q.clone();
        fat.body.push(q.body[0].clone());
        prop_assert!(are_equivalent(&q, &fat));
    }

    /// α-renaming all variables yields an equivalent query with an equal
    /// canonical form.
    #[test]
    fn canonical_alpha_invariant(q in cq()) {
        let s = Substitution::from_pairs(
            q.vars().into_iter().map(|v| {
                let renamed = Term::Var(Symbol::new(format!("Fresh{}", v.as_str())));
                (v, renamed)
            })
        );
        let r = q.apply(&s);
        prop_assert!(are_equivalent(&q, &r));
        prop_assert_eq!(q.canonical(), r.canonical());
    }

    /// Specializing a query by grounding one variable keeps it contained in
    /// the original.
    #[test]
    fn grounding_specializes(q in cq(), n in -20i64..20) {
        let vars = q.vars();
        prop_assume!(!vars.is_empty());
        let s = Substitution::from_pairs([(vars[0].clone(), Term::constant(n))]);
        let grounded = q.apply(&s);
        // Grounding a head variable may make the head unsafe-by-constant,
        // which is fine for containment checks.
        prop_assert!(is_contained_in(&grounded, &q));
    }

    /// Containment is transitive on sampled triples (weak spot-check: we
    /// verify the implication rather than searching for counterexamples).
    #[test]
    fn containment_transitive(q1 in cq(), q2 in cq(), q3 in cq()) {
        if is_contained_in(&q1, &q2) && is_contained_in(&q2, &q3) {
            prop_assert!(is_contained_in(&q1, &q3));
        }
    }

    /// rename_apart produces a query equivalent to the original.
    #[test]
    fn rename_apart_equivalent(q in cq(), n in 0usize..100) {
        let r = q.rename_apart(n);
        prop_assert!(are_equivalent(&q, &r));
    }

    /// α-acyclicity is invariant under variable renaming and body-atom
    /// permutation (the hypergraph ignores both).
    #[test]
    fn acyclicity_alpha_invariant(q in cq()) {
        use citesys_cq::is_acyclic;
        let a1 = is_acyclic(&q);
        let renamed = q.rename_apart(3);
        prop_assert_eq!(a1, is_acyclic(&renamed));
        let mut shuffled = q.clone();
        shuffled.body.reverse();
        prop_assert_eq!(a1, is_acyclic(&shuffled));
    }

    /// Adding an edge covering ALL variables makes any query α-acyclic
    /// (the covering edge is a valid join-tree root).
    #[test]
    fn covering_edge_makes_acyclic(q in cq()) {
        use citesys_cq::is_acyclic;
        let vars: Vec<Term> = q.vars().into_iter().map(Term::Var).collect();
        prop_assume!(!vars.is_empty());
        let mut fat = q.clone();
        fat.body.push(Atom::new("Cover", vars));
        prop_assert!(is_acyclic(&fat));
    }

    /// Chains of any length are acyclic; cycles of length ≥ 3 are not.
    #[test]
    fn chains_acyclic_cycles_not(n in 3usize..8) {
        use citesys_cq::{is_acyclic, parse_query};
        let chain_body: Vec<String> =
            (0..n).map(|i| format!("E(X{i}, X{})", i + 1)).collect();
        let chain = parse_query(
            &format!("Q(X0, X{n}) :- {}", chain_body.join(", "))).unwrap();
        prop_assert!(is_acyclic(&chain));
        let mut cycle_body: Vec<String> =
            (0..n - 1).map(|i| format!("E(X{i}, X{})", i + 1)).collect();
        cycle_body.push(format!("E(X{}, X0)", n - 1));
        let cycle = parse_query(
            &format!("Q(X0) :- {}", cycle_body.join(", "))).unwrap();
        prop_assert!(!is_acyclic(&cycle));
    }
}
